"""Program degradation: what survives when channels go silent.

This is the structural core of the resilience layer: given a broadcast
program and a set of failed channels, compute the program the surviving
transmitters keep broadcasting — failed rows disappear, surviving rows
keep their slot positions (clients already tuned to them notice nothing),
and pages whose every appearance lived on failed channels become
unreachable.

The legacy one-shot API (:func:`repro.sim.faults.fail_channels` /
:func:`repro.sim.faults.compare_failure_responses`) is a deprecated thin
wrapper over this module; recovery *policies* that act over a whole fault
timeline live in :mod:`repro.resilience.policies`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.delay import page_average_delay
from repro.core.errors import SimulationError
from repro.core.pages import ProblemInstance
from repro.core.pamad import schedule_pamad
from repro.core.program import BroadcastProgram

__all__ = [
    "DegradedProgram",
    "FailureComparison",
    "silence_channels",
    "compare_static_failure_sizes",
]


@dataclass(frozen=True)
class DegradedProgram:
    """The old schedule carried on by the surviving channels.

    Attributes:
        program: The surviving grid (failed rows removed; cycle length
            unchanged).
        failed_channels: The channels that went silent.
        surviving_channels: Original indices of the rows still on air, in
            the order they appear in ``program`` (row ``i`` of the
            degraded grid is original channel ``surviving_channels[i]``).
        lost_pages: Pages with no surviving appearance — unreachable on
            the air until a reschedule.
        average_delay: Mean excess wait over the *reachable* pages only
            (unreachable pages would make it infinite; they are reported
            separately because their clients leave the broadcast system).
    """

    program: BroadcastProgram
    failed_channels: tuple[int, ...]
    surviving_channels: tuple[int, ...]
    lost_pages: tuple[int, ...]
    average_delay: float


def silence_channels(
    program: BroadcastProgram,
    instance: ProblemInstance,
    failed: Sequence[int],
) -> DegradedProgram:
    """Silence the given channels of a program.

    Args:
        program: The schedule in operation when the failure hits.
        instance: Pages and expected times (for the delay accounting).
        failed: Channel indices that stop transmitting.

    Returns:
        A :class:`DegradedProgram` over the surviving channels.

    Raises:
        SimulationError: If all channels fail or an index is out of range.
    """
    failed_set = set(failed)
    for channel in failed_set:
        if not 0 <= channel < program.num_channels:
            raise SimulationError(
                f"channel {channel} out of range 0.."
                f"{program.num_channels - 1}"
            )
    survivors = [
        channel
        for channel in range(program.num_channels)
        if channel not in failed_set
    ]
    if not survivors:
        raise SimulationError("every channel failed; nothing left on air")

    degraded = BroadcastProgram(
        num_channels=len(survivors),
        cycle_length=program.cycle_length,
    )
    for new_row, old_row in enumerate(survivors):
        for slot in range(program.cycle_length):
            page = program.get(old_row, slot)
            if page is not None:
                degraded.assign(new_row, slot, page)

    lost = tuple(
        sorted(
            page.page_id
            for page in instance.pages()
            if degraded.broadcast_count(page.page_id) == 0
        )
    )
    reachable = [
        page
        for page in instance.pages()
        if page.page_id not in set(lost)
    ]
    if reachable:
        average = sum(
            page_average_delay(degraded, page.page_id, page.expected_time)
            for page in reachable
        ) / len(reachable)
    else:
        average = float("inf")
    return DegradedProgram(
        program=degraded,
        failed_channels=tuple(sorted(failed_set)),
        surviving_channels=tuple(survivors),
        lost_pages=lost,
        average_delay=average,
    )


@dataclass(frozen=True)
class FailureComparison:
    """Degraded-vs-rescheduled outcome for one failure size.

    Attributes:
        failed_count: Channels lost.
        surviving_channels: Channels still on air.
        degraded_delay: Mean delay over reachable pages, old schedule.
        degraded_lost_pages: Pages unreachable under the old schedule.
        rescheduled_delay: Mean delay after a PAMAD reschedule (all pages
            reachable by construction).
    """

    failed_count: int
    surviving_channels: int
    degraded_delay: float
    degraded_lost_pages: int
    rescheduled_delay: float


def compare_static_failure_sizes(
    program: BroadcastProgram,
    instance: ProblemInstance,
    failure_sizes: Sequence[int],
) -> list[FailureComparison]:
    """Sweep one-shot failure sizes, comparing carry-on vs reschedule.

    Failures take the *highest-numbered* channels first (deterministic,
    and SUSC packs urgent groups into low channels — so this is the
    optimistic case for the degraded response; random failures would only
    look worse).

    Args:
        program: The pre-failure schedule.
        instance: The workload.
        failure_sizes: Numbers of channels to fail (each < num_channels).
    """
    rows: list[FailureComparison] = []
    for count in failure_sizes:
        if not 0 < count < program.num_channels:
            raise SimulationError(
                f"cannot fail {count} of {program.num_channels} channels"
            )
        failed = list(
            range(program.num_channels - count, program.num_channels)
        )
        degraded = silence_channels(program, instance, failed)
        rescheduled = schedule_pamad(
            instance, program.num_channels - count
        )
        rows.append(
            FailureComparison(
                failed_count=count,
                surviving_channels=program.num_channels - count,
                degraded_delay=degraded.average_delay,
                degraded_lost_pages=len(degraded.lost_pages),
                rescheduled_delay=rescheduled.average_delay,
            )
        )
    return rows
