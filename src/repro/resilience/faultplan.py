"""Fault traces — seeded, replayable timelines of channel churn.

The paper's model is static: ``N`` channels exist for the lifetime of the
program.  Real broadcast infrastructure is not — transmitters fail and
come back (interference, hardware, spectrum reallocation), and individual
slot transmissions get corrupted.  A :class:`FaultPlan` captures one such
timeline as an explicit, ordered sequence of :class:`FaultEvent` items:

* ``channel_fail``    — the channel stops transmitting at ``time``;
* ``channel_recover`` — the channel comes back on air at ``time``;
* ``lossy_slot``      — the single broadcast on ``channel`` at absolute
  time ``time`` is corrupted (clients tuned to it must wait for the next
  appearance of their page).

Channel indices always refer to the *original* channel numbering of the
pre-fault program, so a plan is meaningful independently of how a
recovery policy remaps survivors.

Plans are value objects: seeded generators (:func:`poisson_churn_plan`)
produce bit-identical plans for identical arguments, and the JSON round
trip (:meth:`FaultPlan.to_json` / :meth:`FaultPlan.from_json`) is exact,
which is what makes churn experiments replayable from a saved trace.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Mapping, Sequence

from repro.core.errors import SimulationError

__all__ = [
    "EVENT_KINDS",
    "FaultEvent",
    "FaultPlan",
    "poisson_churn_plan",
    "scripted_plan",
    "static_failure_plan",
]

EVENT_KINDS = ("channel_fail", "channel_recover", "lossy_slot")


@dataclass(frozen=True, slots=True, order=True)
class FaultEvent:
    """One fault on the timeline.

    Ordering is (time, kind, channel): events are applied in this order,
    so simultaneous fail/recover batches resolve deterministically.

    Attributes:
        time: Absolute slot index at which the event takes effect.
        kind: One of :data:`EVENT_KINDS`.
        channel: Original channel index the event applies to.
    """

    time: int
    kind: str
    channel: int

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise SimulationError(
                f"unknown fault kind {self.kind!r}; choose from "
                f"{', '.join(EVENT_KINDS)}"
            )
        if self.time < 0:
            raise SimulationError(
                f"fault time must be >= 0, got {self.time}"
            )
        if self.channel < 0:
            raise SimulationError(
                f"fault channel must be >= 0, got {self.channel}"
            )

    def to_dict(self) -> dict:
        return {"time": self.time, "kind": self.kind, "channel": self.channel}

    @classmethod
    def from_dict(cls, data: Mapping) -> "FaultEvent":
        return cls(
            time=int(data["time"]),
            kind=str(data["kind"]),
            channel=int(data["channel"]),
        )


@dataclass(frozen=True)
class FaultPlan:
    """A replayable fault timeline over ``num_channels`` channels.

    Events are stored sorted by (time, kind, channel); construction
    validates channel ranges, the horizon, and that the fail/recover
    sequence per channel is consistent (no failing an already-failed
    channel, no recovering a live one).

    Attributes:
        num_channels: Channel count of the program the plan applies to.
        horizon: Length of the timeline in slots; every event happens at
            ``time < horizon``.
        events: The sorted fault events.
        meta: Free-form provenance (generator name, seed, rates) carried
            through serialisation so a saved trace is self-describing.
    """

    num_channels: int
    horizon: int
    events: tuple[FaultEvent, ...]
    meta: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.num_channels < 1:
            raise SimulationError(
                f"plan needs >= 1 channel, got {self.num_channels}"
            )
        if self.horizon < 1:
            raise SimulationError(
                f"plan horizon must be >= 1, got {self.horizon}"
            )
        ordered = tuple(sorted(self.events))
        object.__setattr__(self, "events", ordered)
        object.__setattr__(self, "meta", dict(self.meta))
        alive = set(range(self.num_channels))
        for event in ordered:
            if event.channel >= self.num_channels:
                raise SimulationError(
                    f"event channel {event.channel} out of range "
                    f"0..{self.num_channels - 1}"
                )
            if event.time >= self.horizon:
                raise SimulationError(
                    f"event at time {event.time} is beyond the horizon "
                    f"{self.horizon}"
                )
            if event.kind == "channel_fail":
                if event.channel not in alive:
                    raise SimulationError(
                        f"channel {event.channel} fails at {event.time} "
                        "but is already down"
                    )
                alive.discard(event.channel)
            elif event.kind == "channel_recover":
                if event.channel in alive:
                    raise SimulationError(
                        f"channel {event.channel} recovers at {event.time} "
                        "but never failed"
                    )
                alive.add(event.channel)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def structural_events(self) -> tuple[FaultEvent, ...]:
        """The fail/recover events (the ones that change channel topology)."""
        return tuple(
            e for e in self.events if e.kind != "lossy_slot"
        )

    def lossy_events(self) -> tuple[FaultEvent, ...]:
        """The per-slot corruption events."""
        return tuple(e for e in self.events if e.kind == "lossy_slot")

    def alive_at(self, time: int) -> tuple[int, ...]:
        """Original channel indices on air just *after* events at ``time``."""
        alive = set(range(self.num_channels))
        for event in self.events:
            if event.time > time or event.kind == "lossy_slot":
                continue
            if event.kind == "channel_fail":
                alive.discard(event.channel)
            else:
                alive.add(event.channel)
        return tuple(sorted(alive))

    def min_alive(self) -> int:
        """The smallest number of live channels at any point of the plan."""
        alive = self.num_channels
        lowest = alive
        for event in self.events:
            if event.kind == "channel_fail":
                alive -= 1
                lowest = min(lowest, alive)
            elif event.kind == "channel_recover":
                alive += 1
        return lowest

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "num_channels": self.num_channels,
            "horizon": self.horizon,
            "events": [event.to_dict() for event in self.events],
            "meta": dict(self.meta),
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "FaultPlan":
        return cls(
            num_channels=int(data["num_channels"]),
            horizon=int(data["horizon"]),
            events=tuple(
                FaultEvent.from_dict(item) for item in data.get("events", ())
            ),
            meta=dict(data.get("meta", {})),
        )

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))

    def save(self, path: str | Path) -> Path:
        """Write the plan to ``path`` as JSON; returns the path."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(self.to_json() + "\n", encoding="utf-8")
        return target

    @classmethod
    def load(cls, path: str | Path) -> "FaultPlan":
        """Read a plan previously written by :meth:`save`."""
        return cls.from_json(Path(path).read_text(encoding="utf-8"))

    def fingerprint(self) -> str:
        """Stable content digest, suitable for run manifests."""
        canonical = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def poisson_churn_plan(
    num_channels: int,
    horizon: int,
    *,
    seed: int = 0,
    fail_rate: float = 0.01,
    recover_rate: float = 0.1,
    loss_rate: float = 0.0,
    min_alive: int = 1,
) -> FaultPlan:
    """Generate a seeded random churn timeline.

    Per-slot Bernoulli trials approximate independent Poisson processes:
    each live channel fails with probability ``fail_rate`` per slot, each
    failed channel recovers with probability ``recover_rate``, and each
    live channel suffers a corrupted transmission with probability
    ``loss_rate``.  Within a slot, failure trials run before recovery
    trials (matching the sorted order events are applied in, so the
    ``min_alive`` floor holds under replay too), and channels are visited
    in index order — the plan is a pure function of the arguments.

    Args:
        num_channels: Channels of the program under test.
        horizon: Timeline length in slots.
        seed: RNG seed; identical seeds give bit-identical plans.
        fail_rate: Per-slot failure probability of a live channel.
        recover_rate: Per-slot recovery probability of a failed channel.
        loss_rate: Per-slot corruption probability of a live channel.
        min_alive: Failures that would leave fewer live channels than
            this are suppressed (a fully dark system measures nothing).

    Returns:
        The generated :class:`FaultPlan`, with provenance in ``meta``.
    """
    if not 0 < min_alive <= num_channels:
        raise SimulationError(
            f"min_alive must be in 1..{num_channels}, got {min_alive}"
        )
    for name, rate in (
        ("fail_rate", fail_rate),
        ("recover_rate", recover_rate),
        ("loss_rate", loss_rate),
    ):
        if not 0.0 <= rate <= 1.0:
            raise SimulationError(
                f"{name} must be a probability, got {rate}"
            )
    rng = random.Random(seed)
    alive = set(range(num_channels))
    events: list[FaultEvent] = []
    for time in range(horizon):
        down_before = [c for c in range(num_channels) if c not in alive]
        for channel in range(num_channels):
            if channel not in alive:
                continue
            if len(alive) > min_alive and rng.random() < fail_rate:
                alive.discard(channel)
                events.append(FaultEvent(time, "channel_fail", channel))
            elif loss_rate and rng.random() < loss_rate:
                events.append(FaultEvent(time, "lossy_slot", channel))
        for channel in down_before:
            if rng.random() < recover_rate:
                alive.add(channel)
                events.append(
                    FaultEvent(time, "channel_recover", channel)
                )
    return FaultPlan(
        num_channels=num_channels,
        horizon=horizon,
        events=tuple(events),
        meta={
            "generator": "poisson_churn",
            "seed": seed,
            "fail_rate": fail_rate,
            "recover_rate": recover_rate,
            "loss_rate": loss_rate,
            "min_alive": min_alive,
        },
    )


def scripted_plan(
    num_channels: int,
    horizon: int,
    events: Sequence[FaultEvent | tuple[int, str, int]],
    meta: Mapping[str, object] | None = None,
) -> FaultPlan:
    """Build a plan from explicit events (tuples are ``(time, kind, channel)``)."""
    normalised = tuple(
        event if isinstance(event, FaultEvent) else FaultEvent(*event)
        for event in events
    )
    return FaultPlan(
        num_channels=num_channels,
        horizon=horizon,
        events=normalised,
        meta=dict(meta or {"generator": "scripted"}),
    )


def static_failure_plan(
    num_channels: int,
    failed: Sequence[int],
    horizon: int = 1,
) -> FaultPlan:
    """The static special case: ``failed`` channels go down at time 0.

    This is exactly the one-shot failure model the legacy
    :mod:`repro.sim.faults` API exposed; the old entry points are now
    thin wrappers over this plan shape.
    """
    return scripted_plan(
        num_channels,
        horizon,
        [(0, "channel_fail", channel) for channel in sorted(set(failed))],
        meta={"generator": "static_failure", "failed": sorted(set(failed))},
    )
