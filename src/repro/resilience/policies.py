"""Recovery policies and the fault-trace replay harness.

A *recovery policy* decides what the broadcast system does when the
channel topology changes mid-flight.  Four are built in:

===================   ====================================================
``carry_on``          Keep the old program on the surviving rows; never
                      reschedule (recovered channels stay idle).
``reschedule_full``   Rebuild on every topology change: SUSC when the
                      survivors meet the Theorem-3.1 bound (valid program
                      by Theorem 3.2), PAMAD otherwise.
``reschedule_throttled``  Like ``reschedule_full`` but with a cooldown
                      and a channel-count hysteresis band, so flapping
                      transmitters don't thrash the scheduler; between
                      rebuilds it degrades like ``carry_on``.
``shed_load``         Rebuild by dropping the lowest-frequency (most
                      relaxed) pages until the remainder fits the
                      survivors, then SUSC — the on-air pages keep their
                      validity guarantee at the cost of shedding content.
===================   ====================================================

:func:`replay_plan` replays a :class:`~repro.resilience.faultplan.FaultPlan`
under a policy and measures what clients experience: structural events
partition the timeline into epochs; within each epoch seeded client
listeners sample waits against the configuration in force when they
arrive (lossy-slot corruptions push a listener to the next clean
appearance of its page).  The outcome reports reschedule count, total
page-slots of unreachable content, and the fraction of listens whose
expected-time guarantee was violated.  Everything is seeded, so a replay
is a pure function of (instance, plan JSON, policy, seed).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import random

from repro.baselines.drop import schedule_drop
from repro.core.bounds import minimum_channels
from repro.core.errors import SimulationError
from repro.core.pages import ProblemInstance
from repro.core.pamad import schedule_pamad
from repro.core.program import BroadcastProgram
from repro.core.susc import schedule_susc
from repro.resilience.faultplan import FaultEvent, FaultPlan

__all__ = [
    "POLICY_NAMES",
    "AirState",
    "RecoveryPolicy",
    "CarryOn",
    "RescheduleFull",
    "RescheduleThrottled",
    "ShedLoad",
    "ReplayOutcome",
    "make_policy",
    "default_policies",
    "replay_plan",
    "compare_policies",
]

POLICY_NAMES = (
    "carry_on",
    "reschedule_full",
    "reschedule_throttled",
    "shed_load",
)


@dataclass
class AirState:
    """What is on the air at one instant of a replay.

    Attributes:
        alive: Original indices of the channels currently able to
            transmit (plan-level topology).
        carrying: Original indices of the channels actually carrying the
            current program, in row order — row ``i`` of ``program`` is
            transmitted by channel ``carrying[i]``.  A policy that does
            not reschedule leaves recovered channels out of ``carrying``.
        program: The program on air, or ``None`` when nothing is.
        shed_page_ids: Pages deliberately removed from the broadcast by
            a load-shedding policy.
        reschedules: Rebuild count so far.
        last_reschedule: Time of the most recent rebuild.
        channels_at_last_reschedule: Channel count the current program
            was built for (hysteresis reference).
    """

    alive: set[int]
    carrying: tuple[int, ...]
    program: BroadcastProgram | None
    shed_page_ids: frozenset[int] = frozenset()
    reschedules: int = 0
    last_reschedule: float = 0.0
    channels_at_last_reschedule: int = 0


def _rebuild_program(
    instance: ProblemInstance, channels: int
) -> BroadcastProgram:
    """Best valid-or-minimum-delay program for a channel count.

    SUSC when the count meets the Theorem-3.1 bound (validity guaranteed
    by Theorem 3.2), PAMAD below it (minimum average delay).
    """
    if channels >= minimum_channels(instance):
        return schedule_susc(
            instance, num_channels=channels, optimized=True
        ).program
    return schedule_pamad(instance, channels).program


def _drop_failed_rows(
    program: BroadcastProgram,
    carrying: Sequence[int],
    failed: set[int],
) -> tuple[BroadcastProgram | None, tuple[int, ...]]:
    """Remove the rows of failed channels, keeping slot positions."""
    keep = [
        row for row, channel in enumerate(carrying) if channel not in failed
    ]
    if not keep:
        return None, ()
    if len(keep) == len(carrying):
        return program, tuple(carrying)
    degraded = BroadcastProgram(
        num_channels=len(keep), cycle_length=program.cycle_length
    )
    for new_row, old_row in enumerate(keep):
        for slot in range(program.cycle_length):
            page = program.get(old_row, slot)
            if page is not None:
                degraded.assign(new_row, slot, page)
    return degraded, tuple(carrying[row] for row in keep)


class RecoveryPolicy:
    """Base class / protocol for recovery policies.

    Subclasses override :meth:`respond`, mutating ``state`` in reaction
    to one batch of simultaneous structural events.  ``state.alive`` has
    already been updated to the post-batch topology when ``respond`` is
    called.
    """

    name = "abstract"

    def respond(
        self,
        state: AirState,
        batch: Sequence[FaultEvent],
        now: int,
        instance: ProblemInstance,
    ) -> None:
        raise NotImplementedError

    def _full_rebuild(
        self, state: AirState, now: int, instance: ProblemInstance
    ) -> None:
        if not state.alive:
            state.program = None
            state.carrying = ()
        else:
            state.program = _rebuild_program(instance, len(state.alive))
            state.carrying = tuple(sorted(state.alive))
        state.shed_page_ids = frozenset()
        state.reschedules += 1
        state.last_reschedule = now
        state.channels_at_last_reschedule = len(state.alive)


class CarryOn(RecoveryPolicy):
    """Never reschedule: failed rows vanish, recovered channels idle."""

    name = "carry_on"

    def respond(self, state, batch, now, instance) -> None:
        failed = {e.channel for e in batch if e.kind == "channel_fail"}
        if state.program is not None and failed:
            state.program, state.carrying = _drop_failed_rows(
                state.program, state.carrying, failed
            )


class RescheduleFull(RecoveryPolicy):
    """Rebuild the whole program on every topology change."""

    name = "reschedule_full"

    def respond(self, state, batch, now, instance) -> None:
        self._full_rebuild(state, now, instance)


class RescheduleThrottled(RecoveryPolicy):
    """Rebuild with hysteresis and a cooldown, degrade in between.

    Args:
        cooldown: Minimum slots between two rebuilds.
        hysteresis: Minimum |channel-count change| since the last rebuild
            before another one is allowed — a channel flapping up and
            down inside the band never triggers a reschedule.
    """

    name = "reschedule_throttled"

    def __init__(self, cooldown: int = 30, hysteresis: int = 1) -> None:
        if cooldown < 0 or hysteresis < 1:
            raise SimulationError(
                f"need cooldown >= 0 and hysteresis >= 1, got "
                f"cooldown={cooldown}, hysteresis={hysteresis}"
            )
        self.cooldown = cooldown
        self.hysteresis = hysteresis

    def respond(self, state, batch, now, instance) -> None:
        drift = abs(len(state.alive) - state.channels_at_last_reschedule)
        cooled = now - state.last_reschedule >= self.cooldown
        if drift >= self.hysteresis and cooled:
            self._full_rebuild(state, now, instance)
            return
        failed = {e.channel for e in batch if e.kind == "channel_fail"}
        if state.program is not None and failed:
            state.program, state.carrying = _drop_failed_rows(
                state.program, state.carrying, failed
            )


class ShedLoad(RecoveryPolicy):
    """Shed the lowest-frequency pages until the survivors suffice.

    Rebuilds on every topology change like ``reschedule_full``, but
    instead of accepting delay it drops pages — most relaxed (least
    frequently broadcast) group first — until the Theorem-3.1 bound fits
    the surviving channel count, then schedules the remainder with SUSC.
    The pages still on air keep their validity guarantee; the shed pages
    are counted as unreachable.
    """

    name = "shed_load"

    def respond(self, state, batch, now, instance) -> None:
        if not state.alive:
            state.program = None
            state.carrying = ()
            state.shed_page_ids = frozenset(
                page.page_id for page in instance.pages()
            )
        else:
            shed = schedule_drop(
                instance, len(state.alive), policy="keep-urgent"
            )
            state.program = shed.program
            state.carrying = tuple(sorted(state.alive))
            state.shed_page_ids = frozenset(
                page.page_id for page in shed.dropped_pages
            )
        state.reschedules += 1
        state.last_reschedule = now
        state.channels_at_last_reschedule = len(state.alive)


def make_policy(name: str, **options) -> RecoveryPolicy:
    """Instantiate a policy by registry name (CLI entry point)."""
    key = name.strip().lower().replace("-", "_")
    if key == "carry_on":
        return CarryOn()
    if key == "reschedule_full":
        return RescheduleFull()
    if key == "reschedule_throttled":
        return RescheduleThrottled(**options)
    if key == "shed_load":
        return ShedLoad()
    raise SimulationError(
        f"unknown recovery policy {name!r}; choose from "
        f"{', '.join(POLICY_NAMES)}"
    )


def default_policies(
    cooldown: int = 30, hysteresis: int = 1
) -> tuple[RecoveryPolicy, ...]:
    """One instance of each built-in policy."""
    return (
        CarryOn(),
        RescheduleFull(),
        RescheduleThrottled(cooldown=cooldown, hysteresis=hysteresis),
        ShedLoad(),
    )


# ----------------------------------------------------------------------
# Replay harness
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ReplayOutcome:
    """What clients experienced over one (plan, policy) replay.

    Attributes:
        policy: The policy's registry name.
        plan_fingerprint: Content digest of the replayed plan.
        reschedule_count: Full program rebuilds the policy performed.
        pages_lost_time: Unreachable content integrated over time, in
            page·slots (a page off the air for 10 slots contributes 10).
        violation_fraction: Fraction of sampled listens whose
            expected-time guarantee was violated (waited too long, hit a
            corrupted slot chain, or found their page off the air).
        mean_excess_delay: Mean wait beyond the expected time over the
            *reachable* listens (AvgD under churn).
        shed_pages_peak: Largest number of deliberately shed pages at any
            point (non-zero only for load-shedding policies).
        listens: Total sampled client listens.
        epochs: Number of constant-topology intervals measured.
    """

    policy: str
    plan_fingerprint: str
    reschedule_count: int
    pages_lost_time: float
    violation_fraction: float
    mean_excess_delay: float
    shed_pages_peak: int
    listens: int
    epochs: int

    def as_dict(self) -> dict:
        return {
            "policy": self.policy,
            "plan_fingerprint": self.plan_fingerprint,
            "reschedule_count": self.reschedule_count,
            "pages_lost_time": round(self.pages_lost_time, 6),
            "violation_fraction": round(self.violation_fraction, 6),
            "mean_excess_delay": round(self.mean_excess_delay, 6),
            "shed_pages_peak": self.shed_pages_peak,
            "listens": self.listens,
            "epochs": self.epochs,
        }


def _wait_with_losses(
    program: BroadcastProgram,
    carrying: Sequence[int],
    page_id: int,
    arrival: float,
    corrupted: frozenset[tuple[int, int]],
) -> float | None:
    """Wait from ``arrival`` to the next *clean* broadcast of ``page_id``.

    ``corrupted`` holds (absolute time, original channel) pairs whose
    transmission was lost; a listener skips those and keeps waiting.
    Returns ``None`` when the page is not in the program at all.
    Terminates because the corruption set is finite: once the scan passes
    the last corrupted time, the first appearance is always clean.
    """
    refs = program.appearances(page_id)
    if not refs:
        return None
    cycle = program.cycle_length
    k = int(arrival // cycle)
    while True:
        for ref in refs:
            air_time = k * cycle + ref.slot
            if air_time < arrival:
                continue
            if (air_time, carrying[ref.channel]) in corrupted:
                continue
            return air_time - arrival
        k += 1


def replay_plan(
    instance: ProblemInstance,
    plan: FaultPlan,
    policy: RecoveryPolicy,
    *,
    num_listeners: int = 400,
    seed: int = 0,
) -> ReplayOutcome:
    """Replay a fault plan under one policy and measure the client view.

    The plan's structural events split ``[0, horizon)`` into epochs of
    constant topology.  Each epoch receives a share of ``num_listeners``
    proportional to its duration; every listener picks a page uniformly
    and an arrival uniformly inside the epoch, then waits for the next
    clean appearance under the configuration in force at arrival.

    The listener stream depends only on ``(seed, epoch index)`` — not on
    the policy — so outcomes of different policies on the same plan are
    directly comparable, and replaying a plan reloaded from JSON is
    bit-identical.

    Args:
        instance: The workload being broadcast.
        plan: The fault timeline (its ``num_channels`` is the pre-fault
            channel count; the initial program is built for it).
        policy: The recovery policy under test.
        num_listeners: Total sampled client listens across the horizon.
        seed: Base RNG seed for the listener streams.

    Returns:
        A :class:`ReplayOutcome`.
    """
    if num_listeners < 1:
        raise SimulationError(
            f"num_listeners must be >= 1, got {num_listeners}"
        )
    initial = _rebuild_program(instance, plan.num_channels)
    state = AirState(
        alive=set(range(plan.num_channels)),
        carrying=tuple(range(plan.num_channels)),
        program=initial,
        channels_at_last_reschedule=plan.num_channels,
    )
    corrupted = frozenset(
        (event.time, event.channel) for event in plan.lossy_events()
    )

    batches: dict[int, list[FaultEvent]] = {}
    for event in plan.structural_events():
        batches.setdefault(event.time, []).append(event)
    boundaries = sorted(batches)

    pages = list(instance.pages())
    total_duration = float(plan.horizon)
    pages_lost_time = 0.0
    violations = 0
    listens = 0
    excess_sum = 0.0
    reachable_listens = 0
    shed_peak = 0
    epochs_measured = 0

    def measure_epoch(start: int, end: int, epoch_index: int) -> None:
        nonlocal pages_lost_time, violations, listens
        nonlocal excess_sum, reachable_listens, epochs_measured
        duration = end - start
        if duration <= 0:
            return
        epochs_measured += 1
        program = state.program
        if program is None:
            unreachable = {page.page_id for page in pages}
        else:
            unreachable = {
                page.page_id
                for page in pages
                if program.broadcast_count(page.page_id) == 0
            }
        pages_lost_time += len(unreachable) * duration
        count = max(1, round(num_listeners * duration / total_duration))
        rng = random.Random(seed * 1_000_003 + epoch_index * 7919)
        for _ in range(count):
            page = pages[rng.randrange(len(pages))]
            arrival = rng.uniform(start, end)
            listens += 1
            if page.page_id in unreachable:
                violations += 1
                continue
            wait = _wait_with_losses(
                program, state.carrying, page.page_id, arrival, corrupted
            )
            reachable_listens += 1
            excess = max(0.0, wait - page.expected_time)
            excess_sum += excess
            if wait > page.expected_time:
                violations += 1

    cursor = 0
    for epoch_index, boundary in enumerate(boundaries):
        measure_epoch(cursor, boundary, epoch_index)
        batch = sorted(batches[boundary])
        for event in batch:
            if event.kind == "channel_fail":
                state.alive.discard(event.channel)
            else:
                state.alive.add(event.channel)
        policy.respond(state, batch, boundary, instance)
        shed_peak = max(shed_peak, len(state.shed_page_ids))
        cursor = boundary
    measure_epoch(cursor, plan.horizon, len(boundaries))

    return ReplayOutcome(
        policy=policy.name,
        plan_fingerprint=plan.fingerprint(),
        reschedule_count=state.reschedules,
        pages_lost_time=pages_lost_time,
        violation_fraction=violations / listens if listens else 0.0,
        mean_excess_delay=(
            excess_sum / reachable_listens if reachable_listens else 0.0
        ),
        shed_pages_peak=shed_peak,
        listens=listens,
        epochs=epochs_measured,
    )


def compare_policies(
    instance: ProblemInstance,
    plan: FaultPlan,
    policies: Sequence[RecoveryPolicy] | None = None,
    *,
    num_listeners: int = 400,
    seed: int = 0,
) -> list[ReplayOutcome]:
    """Replay one plan under several policies (same listener streams)."""
    chosen = tuple(policies) if policies is not None else default_policies()
    return [
        replay_plan(
            instance,
            plan,
            policy,
            num_listeners=num_listeners,
            seed=seed,
        )
        for policy in chosen
    ]
