"""repro.resilience — fault injection and recovery over the engine/simulator.

The paper proves its guarantees for a static channel count; this package
models what production broadcast infrastructure actually does — lose and
regain transmitters, corrupt individual slot transmissions — and measures
how much of the guarantee each recovery strategy preserves.

* :mod:`repro.resilience.faultplan` — seeded, replayable fault timelines
  (Poisson churn or explicit scripts), JSON-serialisable.
* :mod:`repro.resilience.degrade` — the structural core: what survives
  when channels go silent (the legacy one-shot :mod:`repro.sim.faults`
  API is a deprecated wrapper over this).
* :mod:`repro.resilience.policies` — recovery policies (``carry_on``,
  ``reschedule_full``, ``reschedule_throttled``, ``shed_load``) and the
  trace-replay harness that scores them from the client's point of view.

The control plane's chaos harness (:mod:`repro.control.chaos`) extends
the same stance — every fault sequence is a pure function of its seed,
so failures are replayable — from broadcast channels to the serving
transport and process lifetime (dropped responses, kill-restarts
recovered from the write-ahead journal).

Typical use::

    from repro.resilience import poisson_churn_plan, compare_policies
    from repro.workload.generator import paper_instance

    instance = paper_instance("uniform")
    plan = poisson_churn_plan(13, horizon=300, seed=7, fail_rate=0.02)
    for outcome in compare_policies(instance, plan):
        print(outcome.policy, outcome.violation_fraction)
"""

from repro.resilience.degrade import (
    DegradedProgram,
    FailureComparison,
    compare_static_failure_sizes,
    silence_channels,
)
from repro.resilience.faultplan import (
    EVENT_KINDS,
    FaultEvent,
    FaultPlan,
    poisson_churn_plan,
    scripted_plan,
    static_failure_plan,
)
from repro.resilience.policies import (
    POLICY_NAMES,
    AirState,
    CarryOn,
    RecoveryPolicy,
    ReplayOutcome,
    RescheduleFull,
    RescheduleThrottled,
    ShedLoad,
    compare_policies,
    default_policies,
    make_policy,
    replay_plan,
)

__all__ = [
    "EVENT_KINDS",
    "POLICY_NAMES",
    "AirState",
    "CarryOn",
    "DegradedProgram",
    "FailureComparison",
    "FaultEvent",
    "FaultPlan",
    "RecoveryPolicy",
    "ReplayOutcome",
    "RescheduleFull",
    "RescheduleThrottled",
    "ShedLoad",
    "compare_policies",
    "compare_static_failure_sizes",
    "default_policies",
    "make_policy",
    "poisson_churn_plan",
    "replay_plan",
    "scripted_plan",
    "silence_channels",
    "static_failure_plan",
]
