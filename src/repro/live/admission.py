"""SLO-driven admission control for catalog mutations.

The paper's Theorem 3.1 says a catalog needs ``ceil(sum_i P_i / t_i)``
channels for a *valid* program — the structural form of the service's
SLO ("no client waits longer than its page's expected time").  A live
system with a fixed channel budget must therefore treat that bound as an
admission criterion: a ``page_insert`` (or a deadline-tightening
``page_retune``) that would push the requirement above the budget cannot
be honoured without breaking the promise already made to every tuned-in
client.

:class:`AdmissionController` owns that decision.  Inserts that would
breach the budget are *queued* (FIFO, bounded) and retried whenever the
load drops — a later removal or relaxation drains the queue — and
rejected outright only when the queue is full.  Retunes that would
breach are rejected immediately (the page stays on air at its old
deadline).  Every verdict is recorded as an :class:`AdmissionDecision`,
the unit the run manifest and the live event log are built from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.core.errors import SimulationError
from repro.live.catalog import LiveCatalog
from repro.live.mutations import MutationEvent

__all__ = ["VERDICTS", "AdmissionDecision", "AdmissionController"]

VERDICTS = ("admitted", "queued", "rejected")


@dataclass(frozen=True, slots=True)
class AdmissionDecision:
    """One admission verdict, with the load evidence behind it.

    Attributes:
        time: Slot at which the decision was taken.
        kind: The mutation kind decided on (``page_insert`` /
            ``page_retune`` / ``page_remove``), or ``queue_drain`` for a
            previously queued insert re-admitted after the load dropped.
        page_id: The page concerned.
        verdict: One of :data:`VERDICTS`.
        required_channels: Theorem-3.1 requirement of the catalog the
            verdict would produce (the *candidate* catalog for admits,
            the unchanged one for rejections).
        budget: The channel budget the requirement was judged against.
        reason: Short machine-stable explanation (``fits-budget``,
            ``exceeds-budget``, ``queue-full``, ``unknown-page``,
            ``duplicate-page``, ``admission-disabled``, ...).
    """

    time: float
    kind: str
    page_id: int
    verdict: str
    required_channels: int
    budget: int
    reason: str

    def as_dict(self) -> dict:
        return {
            "time": self.time,
            "kind": self.kind,
            "page_id": self.page_id,
            "verdict": self.verdict,
            "required_channels": self.required_channels,
            "budget": self.budget,
            "reason": self.reason,
        }


class AdmissionController:
    """Budget-guarding admission for inserts and retunes.

    Args:
        budget: Channel budget ``N_real`` the Theorem-3.1 requirement is
            judged against.
        queue_limit: Maximum inserts waiting for capacity; beyond it new
            over-budget inserts are rejected.
        enabled: When False every mutation is admitted unchanged — the
            control arm of the EXT11 experiment (the scheduler then
            falls back to PAMAD's minimum-delay compromise).
    """

    def __init__(
        self,
        budget: int,
        *,
        queue_limit: int = 16,
        enabled: bool = True,
    ) -> None:
        if budget < 1:
            raise SimulationError(f"budget must be >= 1, got {budget}")
        if queue_limit < 0:
            raise SimulationError(
                f"queue_limit must be >= 0, got {queue_limit}"
            )
        self.budget = budget
        self.queue_limit = queue_limit
        self.enabled = enabled
        self._queue: list[MutationEvent] = []
        self.counters: dict[str, int] = {
            "admitted": 0,
            "queued": 0,
            "rejected": 0,
            "drained": 0,
        }

    # ------------------------------------------------------------------
    # Queue
    # ------------------------------------------------------------------

    @property
    def queued(self) -> tuple[MutationEvent, ...]:
        """Inserts currently waiting for capacity, FIFO order."""
        return tuple(self._queue)

    def drain(
        self, catalog: LiveCatalog, now: float
    ) -> tuple[list[MutationEvent], list[AdmissionDecision]]:
        """Re-admit queued inserts that now fit the budget.

        The queue is scanned in FIFO order; entries that fit are
        admitted (and their pages assumed inserted into ``catalog`` by
        the caller, so later entries are judged against the grown load),
        entries that still do not fit stay queued.  Returns the admitted
        events and the matching decisions.
        """
        admitted: list[MutationEvent] = []
        decisions: list[AdmissionDecision] = []
        remaining: list[MutationEvent] = []
        probe = catalog.copy()
        for event in self._queue:
            candidate = probe.copy()
            candidate.insert(event.page_id, event.expected_time)
            required = candidate.required_channels()
            if required <= self.budget:
                probe = candidate
                admitted.append(event)
                self.counters["drained"] += 1
                self.counters["admitted"] += 1
                decisions.append(
                    AdmissionDecision(
                        time=now,
                        kind="queue_drain",
                        page_id=event.page_id,
                        verdict="admitted",
                        required_channels=required,
                        budget=self.budget,
                        reason="fits-budget",
                    )
                )
            else:
                remaining.append(event)
        self._queue = remaining
        return admitted, decisions

    # ------------------------------------------------------------------
    # Verdicts
    # ------------------------------------------------------------------

    def _decision(
        self,
        event: MutationEvent,
        verdict: str,
        required: int,
        reason: str,
    ) -> AdmissionDecision:
        self.counters[verdict] += 1
        return AdmissionDecision(
            time=event.time,
            kind=event.kind,
            page_id=event.page_id,
            verdict=verdict,
            required_channels=required,
            budget=self.budget,
            reason=reason,
        )

    def decide_insert(
        self, catalog: LiveCatalog, event: MutationEvent
    ) -> AdmissionDecision:
        """Judge a ``page_insert`` against the budget (queue on breach)."""
        if event.page_id in catalog:
            return self._decision(
                event, "rejected", catalog.required_channels(),
                "duplicate-page",
            )
        candidate = catalog.copy()
        candidate.insert(event.page_id, event.expected_time)
        required = candidate.required_channels()
        if not self.enabled:
            return self._decision(
                event, "admitted", required, "admission-disabled"
            )
        if required <= self.budget:
            return self._decision(event, "admitted", required, "fits-budget")
        if len(self._queue) < self.queue_limit:
            self._queue.append(event)
            return self._decision(event, "queued", required, "exceeds-budget")
        return self._decision(event, "rejected", required, "queue-full")

    def decide_retune(
        self, catalog: LiveCatalog, event: MutationEvent
    ) -> AdmissionDecision:
        """Judge a ``page_retune``; tightening past the budget is rejected."""
        if event.page_id not in catalog:
            return self._decision(
                event, "rejected", catalog.required_channels(),
                "unknown-page",
            )
        candidate = catalog.copy()
        candidate.retune(event.page_id, event.expected_time)
        required = candidate.required_channels()
        if not self.enabled:
            return self._decision(
                event, "admitted", required, "admission-disabled"
            )
        if required <= self.budget:
            return self._decision(event, "admitted", required, "fits-budget")
        return self._decision(event, "rejected", required, "exceeds-budget")

    def decide_remove(
        self, catalog: LiveCatalog, event: MutationEvent
    ) -> AdmissionDecision:
        """Judge a ``page_remove``; removals only ever shrink the load."""
        if event.page_id not in catalog:
            return self._decision(
                event, "rejected", catalog.required_channels(),
                "unknown-page",
            )
        if len(catalog) == 1:
            return self._decision(
                event, "rejected", catalog.required_channels(),
                "last-page",
            )
        candidate = catalog.copy()
        candidate.remove(event.page_id)
        return self._decision(
            event, "admitted", candidate.required_channels(), "shrinks-load"
        )

    def as_dict(self) -> dict:
        """Summary block for run manifests."""
        return {
            "enabled": self.enabled,
            "budget": self.budget,
            "queue_limit": self.queue_limit,
            "queue_depth": len(self._queue),
            **{k: int(v) for k, v in sorted(self.counters.items())},
        }
