"""Live broadcast service runtime (DESIGN §9).

The paper plans broadcast programs for a frozen page catalog; this
package turns those planners into a *runtime*.  A
:class:`~repro.live.service.LiveBroadcastService` replays a seeded
:class:`~repro.live.mutations.MutationTrace` (page inserts, removals,
expected-time retunes, listener arrivals) on the deterministic event
loop, keeping a program on air throughout via incremental slot repair
when the Theorem-3.1 bound has slack and full SUSC/PAMAD re-plans
through :class:`~repro.engine.BroadcastEngine` when it does not, with
budget-guarding admission control and a rolling deadline-miss SLO
controller deciding what gets on air at all.

Entry points:

* :func:`repro.workload.generate_mutation_trace` — seeded trace maker;
* :class:`LiveBroadcastService` / :class:`LiveReport` — the runtime;
* :meth:`repro.engine.BroadcastEngine.live` — the manifested facade op;
* :func:`replay_pull_lwf` — the Longest-Wait-First pull baseline;
* ``repro-air live`` — the CLI front end.
"""

from repro.live.admission import (
    VERDICTS,
    AdmissionController,
    AdmissionDecision,
)
from repro.live.baseline import PullOutcome, replay_pull_lwf
from repro.live.catalog import LiveCatalog
from repro.live.mutations import (
    CATALOG_KINDS,
    MUTATION_KINDS,
    MutationEvent,
    MutationTrace,
    scripted_trace,
)
from repro.live.service import LiveBroadcastService, LiveReport
from repro.live.slo import SloObservation, SloTracker

__all__ = [
    "CATALOG_KINDS",
    "MUTATION_KINDS",
    "VERDICTS",
    "AdmissionController",
    "AdmissionDecision",
    "LiveBroadcastService",
    "LiveCatalog",
    "LiveReport",
    "MutationEvent",
    "MutationTrace",
    "PullOutcome",
    "SloObservation",
    "SloTracker",
    "replay_pull_lwf",
    "scripted_trace",
]
