"""Longest Wait First — the online *pull* baseline for the live service.

The push runtime answers "how well can a pre-planned cyclic program
absorb churn?".  The natural alternative is to plan nothing: run a pull
server that hears every request and, each slot, broadcasts on each of
its channels the page whose pending requests have waited longest in
aggregate — Longest Wait First, the classic online broadcast-scheduling
heuristic analysed by Chekuri, Im & Moseley.  One broadcast satisfies
*all* pending requests for that page (the broadcast economy of scale the
paper builds on).

EXT11 replays the same mutation trace through both systems and compares
deadline-miss rates: LWF reacts instantly to demand but offers no
deadline guarantee, while the push program guarantees the Theorem-3.1
SLO for every admitted page at the price of rejecting load it cannot
promise.

The replay is exact and deterministic: slot-by-slot, FIFO within slots,
no randomness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.core.errors import SimulationError
from repro.core.pages import ProblemInstance
from repro.live.catalog import LiveCatalog
from repro.live.mutations import MutationTrace

__all__ = ["PullOutcome", "replay_pull_lwf"]


@dataclass(frozen=True, slots=True)
class PullOutcome:
    """Outcome of :func:`replay_pull_lwf` on one trace.

    Attributes:
        listeners: Requests replayed.
        served: Requests answered within the horizon.
        misses: Requests that waited past their promised deadline (or
            were never answered / targeted a page not in the catalog).
        broadcasts: Page transmissions performed.
        total_wait: Summed wait of the served requests, in slots.
    """

    listeners: int
    served: int
    misses: int
    broadcasts: int
    total_wait: float

    @property
    def miss_rate(self) -> float:
        return self.misses / self.listeners if self.listeners else 0.0

    @property
    def average_wait(self) -> float:
        return self.total_wait / self.served if self.served else 0.0

    def as_dict(self) -> dict:
        return {
            "policy": "pull-lwf",
            "listeners": self.listeners,
            "served": self.served,
            "misses": self.misses,
            "miss_rate": round(self.miss_rate, 6),
            "broadcasts": self.broadcasts,
            "average_wait": round(self.average_wait, 6),
        }


def replay_pull_lwf(
    initial: ProblemInstance | Mapping[int, int],
    trace: MutationTrace,
    *,
    budget: int = 1,
) -> PullOutcome:
    """Replay ``trace`` through a Longest-Wait-First pull server.

    Each integer slot ``s`` the server broadcasts, on each of its
    ``budget`` channels, the page maximising the aggregate waiting time
    of its pending requests (ties broken by smaller page id); the
    broadcast serves every pending request for that page with wait
    ``s - arrival``.  Catalog mutations apply unconditionally (a pull
    server has no admission story): removals drop the page's pending
    requests as misses, requests for unknown pages miss immediately, and
    requests still pending at the horizon miss.

    Args:
        initial: Catalog on air at ``t=0``.
        trace: The same mutation/listener timeline the push service
            replays.
        budget: Number of broadcast channels.

    Returns:
        A :class:`PullOutcome` with miss and wait accounting judged
        against each listener's *promised* deadline.
    """
    if budget < 1:
        raise SimulationError(f"budget must be >= 1, got {budget}")
    catalog = LiveCatalog(initial)
    pages = set(catalog.pages())

    listeners = served = misses = broadcasts = 0
    total_wait = 0.0
    # page_id -> list of (arrival, promised deadline), arrival order.
    pending: dict[int, list[tuple[float, int]]] = {}

    events = iter(trace.events)
    upcoming = next(events, None)

    for slot in range(trace.horizon + 1):
        # 1. Apply every event with time <= slot (FIFO within the slot).
        while upcoming is not None and upcoming.time <= slot:
            event = upcoming
            upcoming = next(events, None)
            if event.kind == "listener":
                listeners += 1
                if event.page_id in pages:
                    pending.setdefault(event.page_id, []).append(
                        (event.time, event.expected_time)
                    )
                else:
                    misses += 1
            elif event.kind == "page_insert":
                pages.add(event.page_id)
            elif event.kind == "page_remove":
                pages.discard(event.page_id)
                misses += len(pending.pop(event.page_id, ()))
            # page_retune: promised deadlines travel with the listeners.
        if slot == trace.horizon:
            break
        # 2. Broadcast the longest-aggregate-wait pages on each channel.
        for _ in range(budget):
            if not pending:
                break
            chosen = max(
                pending,
                key=lambda pid: (
                    sum(slot - arrival for arrival, _ in pending[pid]),
                    -pid,
                ),
            )
            broadcasts += 1
            for arrival, deadline in pending.pop(chosen):
                wait = slot - arrival
                served += 1
                total_wait += wait
                if wait > deadline:
                    misses += 1

    # 3. Whatever is still pending at the horizon never got served.
    misses += sum(len(waiting) for waiting in pending.values())

    return PullOutcome(
        listeners=listeners,
        served=served,
        misses=misses,
        broadcasts=broadcasts,
        total_wait=total_wait,
    )
