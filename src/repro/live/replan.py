"""Patch-based re-plan fast path for the live service (degraded regime).

A degraded-mode mutation (an insert or retune arriving while the
Theorem-3.1 requirement exceeds the channel budget) forces a full PAMAD
re-plan of the whole catalog, yet the typical mutation moves a single
page within one expected-time group.  When the rest of the plan provably
cannot change, re-deriving every other group's placement is pure waste:
only the changed group's copies need to move.

:class:`FastReplanner` keeps a snapshot of the last full PAMAD plan and
patches the on-air grid instead of re-planning when *all* of the
following hold against the current catalog:

* the expected-time rungs (and therefore the group structure) are the
  ones the snapshot was planned for;
* at most one rung's page set changed since the snapshot;
* the frequency vector recomputed for the current group sizes
  (Algorithm 3, via :func:`~repro.core.frequencies.pamad_frequencies_for`
  on raw sizes — no instance construction) differs from the snapshot's
  in at most that same rung;
* the Equation-8 cycle for the new ``sum S_i P_i`` equals the on-air
  cycle, so the grid shape — and with it every *unchanged* group's
  Algorithm-4 windows — is preserved.

The patch then (1) clears every cell of the changed rung's pages and
(2) re-places the rung's current page set, ``S_i`` copies each, through
the Algorithm-4 window scan.  Two implementations share that contract:

* the **packed fast path** edits a copy of the program's int64 grid
  mirror (:meth:`~repro.core.program.BroadcastProgram.packed_grid`)
  with three numpy passes — clear by ``isin`` mask, enumerate free
  cells in (column, channel) order, deal the first ``|rung|`` free
  cells of every window to the rung's pages — which is what keeps a
  taut-budget re-plan under 100µs;
* the **reference patcher** walks cells one by one with per-column
  occupancy bitmasks (clearing punches holes mid-column, so the
  prefix-occupancy shortcut of :mod:`repro.core.fastpath` does not
  apply; a bitmask keeps the probe O(1) per column regardless).  It
  remains the oracle the fast path is property-tested against, and
  handles the rare window-overflow regime where placements spill into
  the cyclic fallback and steal cells across windows.

The patched program is a legitimate Algorithm-4 placement for the
current catalog — exact per-page counts, Equation-8 cycle — and the
whole procedure is deterministic, so live replay stays byte-identical
run to run.  Capacity is guaranteed by the cycle check (``sum S_i P_i <=
N * cycle``), hence the cyclic-fallback scan can never come up empty for
an eligible patch; the ``None`` return on a full grid is kept as a
belt-and-braces downgrade to a full re-plan rather than an error.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.core.frequencies import pamad_frequencies_for
from repro.core.intmath import ceil_div
from repro.core.program import BroadcastProgram

__all__ = ["ReplanState", "FastReplanner"]


@dataclass(frozen=True)
class ReplanState:
    """Snapshot of the last full PAMAD plan the patch path can extend.

    Attributes:
        times: Ascending expected-time rungs at plan time.
        frequencies: The plan's ``(S_1..S_h)``, aligned with ``times``.
        cycle: The plan's Equation-8 major-cycle length.
        budget: ``N_real`` the plan was built for.
        catalog: The ``page_id -> expected_time`` mapping at plan time.
    """

    times: tuple[int, ...]
    frequencies: tuple[int, ...]
    cycle: int
    budget: int
    catalog: Mapping[int, int]


class FastReplanner:
    """One-group patch planner over the last full PAMAD plan."""

    def __init__(self) -> None:
        self._state: ReplanState | None = None
        # expected_time -> frozenset of page ids, aligned with
        # ``self.state.catalog``.  Built lazily on the first patch after
        # a full re-plan, then maintained incrementally (only the
        # patched rung's set is replaced), so no patch ever pays a
        # whole-catalog grouping pass twice.
        self._rungs: dict[int, frozenset[int]] | None = None

    @property
    def state(self) -> ReplanState | None:
        """The last remembered full-plan snapshot (``None`` = no fast path)."""
        return self._state

    @state.setter
    def state(self, value: ReplanState | None) -> None:
        # Any external assignment (benchmark rewinds, tests) must also
        # drop the rung cache — it describes the snapshot's catalog.
        self._state = value
        self._rungs = None

    def remember(
        self,
        *,
        catalog: Mapping[int, int],
        times: tuple[int, ...],
        frequencies: tuple[int, ...],
        cycle: int,
        budget: int,
    ) -> None:
        """Record a freshly committed full PAMAD plan."""
        self.state = ReplanState(
            times=tuple(times),
            frequencies=tuple(frequencies),
            cycle=cycle,
            budget=budget,
            catalog=dict(catalog),
        )
        self._rungs = None

    def invalidate(self) -> None:
        """Drop the snapshot (the regime changed, e.g. back to SUSC)."""
        self.state = None
        self._rungs = None

    def _rung_sets(self) -> dict[int, frozenset[int]]:
        """Per-rung page sets of the snapshot catalog, built on demand."""
        rungs = self._rungs
        if rungs is None:
            grouped: dict[int, set[int]] = {}
            for page_id, expected in self.state.catalog.items():
                grouped.setdefault(expected, set()).add(page_id)
            rungs = {
                expected: frozenset(pages)
                for expected, pages in grouped.items()
            }
            self._rungs = rungs
        return rungs

    def try_patch(
        self,
        catalog: Mapping[int, int],
        program: BroadcastProgram | None,
    ) -> BroadcastProgram | None:
        """Patch ``program`` for ``catalog``, or ``None`` if ineligible."""
        state = self.state
        if state is None or program is None:
            return None
        if (
            program.cycle_length != state.cycle
            or program.num_channels != state.budget
        ):
            return None
        # One diff pass per catalog instead of materialising every
        # rung's page set: count rung sizes and collect the rungs any
        # page entered or left, bailing the moment a second rung is
        # touched.  This is the latency-critical eligibility check — a
        # typical mutation changes one page, and grouping both catalogs
        # into per-rung sets cost more than the patch itself.
        old_catalog = state.catalog
        counts = dict.fromkeys(state.times, 0)
        changed_times: set[int] = set()
        added: list[int] = []
        removed: list[int] = []
        for page_id, time in catalog.items():
            count = counts.get(time)
            if count is None:
                return None  # a rung the snapshot was not planned for
            counts[time] = count + 1
            old_time = old_catalog.get(page_id)
            if old_time != time:
                changed_times.add(time)
                added.append(page_id)
                if old_time is not None:
                    changed_times.add(old_time)
                if len(changed_times) > 1:
                    return None
        # Pages can only have left the catalog if the arithmetic says
        # so; skip the whole-snapshot membership scan otherwise (the
        # common mutation is a pure insert).
        if len(old_catalog) > len(catalog) - len(added):
            for page_id, time in old_catalog.items():
                if page_id not in catalog:
                    changed_times.add(time)
                    removed.append(page_id)
                    if len(changed_times) > 1:
                        return None
        sizes = tuple(counts[time] for time in state.times)
        if 0 in sizes:
            return None  # a rung emptied: the group structure changed

        assignment = pamad_frequencies_for(
            sizes, state.times, state.budget
        )
        frequencies = assignment.frequencies
        for index, (new, old) in enumerate(
            zip(frequencies, state.frequencies)
        ):
            if new != old:
                changed_times.add(state.times[index])
                if len(changed_times) > 1:
                    return None
        cycle = ceil_div(
            sum(s * p for s, p in zip(frequencies, sizes)), state.budget
        )
        if cycle != state.cycle:
            return None

        if not changed_times:
            # Nothing moved since the plan (e.g. an SLO-triggered re-plan
            # on an unchanged catalog): the on-air program IS the plan.
            return program

        rung_time = changed_times.pop()
        index = state.times.index(rung_time)
        rungs = self._rung_sets()
        old_rung = rungs.get(rung_time, frozenset())
        # Reaching here means the diff touched exactly one rung, so the
        # added/removed pages collected above are all this rung's.
        new_rung = (old_rung - set(removed)) | set(added)
        patched = self._patch(
            program,
            clear_pages=old_rung | new_rung,
            place_pages=new_rung,
            copies=frequencies[index],
            num_channels=state.budget,
        )
        if patched is None:
            return None
        self.state = ReplanState(
            times=state.times,
            frequencies=frequencies,
            cycle=cycle,
            budget=state.budget,
            catalog=dict(catalog),
        )
        self._rungs = {**rungs, rung_time: frozenset(new_rung)}
        return patched

    @staticmethod
    def _patch(
        program: BroadcastProgram,
        clear_pages: set[int],
        place_pages: set[int],
        copies: int,
        num_channels: int,
    ) -> BroadcastProgram | None:
        """Clear one rung and re-place it Algorithm-4 style.

        Dispatches to the packed-array fast path; when a window is too
        tight for it (the cyclic-fallback regime), falls back to the
        reference cell-by-cell patcher, which handles overflow exactly.
        """
        patched = FastReplanner._patch_packed(
            program, clear_pages, place_pages, copies
        )
        if patched is not NotImplemented:
            return patched
        return FastReplanner._patch_reference(
            program, clear_pages, place_pages, copies, num_channels
        )

    @staticmethod
    def _patch_packed(
        program: BroadcastProgram,
        clear_pages: set[int],
        place_pages: set[int],
        copies: int,
    ):
        """One-rung patch on the packed int64 grid — the <100µs path.

        Works entirely on :meth:`~BroadcastProgram.packed_grid`: clear
        the rung with one ``np.isin`` mask, list the free cells in
        (column, channel) order with one ``nonzero``, and hand the first
        ``len(place_pages)`` free cells of every Algorithm-4 window to
        the rung's pages in id order.  That consumption order *is* the
        reference scan: the first free column in a window and the lowest
        free channel within it are exactly the next free cell in
        (column, channel) order, and each page takes one cell per window.

        Returns ``NotImplemented`` when any window holds fewer free
        cells than the rung needs — then some placement would spill into
        the cyclic fallback, whose cross-window stealing the reference
        patcher reproduces exactly.
        """
        grid = program.packed_grid().copy()
        cycle = grid.shape[1]
        if clear_pages:
            # Membership via a boolean lookup table indexed by id+1
            # (so the -1 free marker lands at 0): two vectorised
            # gathers, several times faster than np.isin on these tiny
            # grids.  Page ids are small dense ints; fall back to isin
            # if they ever are not.
            targets = np.fromiter(
                clear_pages, dtype=np.int64, count=len(clear_pages)
            )
            top = int(grid.max())
            if top <= 4 * grid.size + 1024:
                table = np.zeros(top + 2, dtype=bool)
                table[targets[targets <= top] + 1] = True
                grid[table[grid + 1]] = -1
            else:
                grid[np.isin(grid, targets)] = -1
        pages = sorted(place_pages)
        placing = len(pages)
        if placing == 0:
            return BroadcastProgram.from_array(grid)
        # Free cells in (column, channel) order — the scan order of the
        # reference's "first free column, lowest free channel" probe.
        free_cols, free_chans = np.nonzero(grid.T == -1)
        if copies == 1:
            # Single window spanning the whole cycle: the rung simply
            # takes the first |rung| free cells.
            if free_cols.size < placing:
                return NotImplemented
            grid[free_chans[:placing], free_cols[:placing]] = pages
            return BroadcastProgram.from_array(grid)
        bounds = np.fromiter(
            (ceil_div(cycle * k, copies) for k in range(copies + 1)),
            dtype=np.int64,
            count=copies + 1,
        )
        windows = np.searchsorted(bounds, free_cols, side="right") - 1
        counts = np.bincount(windows, minlength=copies)
        if counts.min() < placing:
            return NotImplemented
        starts = np.concatenate(([0], np.cumsum(counts)))[:-1]
        take = (
            starts[:, None] + np.arange(placing)[None, :]
        ).ravel()
        grid[free_chans[take], free_cols[take]] = np.tile(
            np.asarray(pages, dtype=np.int64), copies
        )
        return BroadcastProgram.from_array(grid)

    @staticmethod
    def _patch_reference(
        program: BroadcastProgram,
        clear_pages: set[int],
        place_pages: set[int],
        copies: int,
        num_channels: int,
    ) -> BroadcastProgram | None:
        """Cell-by-cell patch — the oracle the packed path must match."""
        clone = program.copy()
        for page_id in clear_pages:
            for ref in clone.appearances(page_id):
                clone.clear(ref.channel, ref.slot)
        cycle = clone.cycle_length
        full = (1 << num_channels) - 1
        masks = [0] * cycle  # bit c set <=> channel c occupied in column
        for channel, row in enumerate(clone.grid_rows()):
            bit = 1 << channel
            for slot, occupant in enumerate(row):
                if occupant is not None:
                    masks[slot] |= bit
        for page_id in sorted(place_pages):
            for k in range(copies):
                window_start = ceil_div(cycle * k, copies)
                window_end = min(ceil_div(cycle * (k + 1), copies), cycle)
                column = -1
                for col in range(window_start, window_end):
                    if masks[col] != full:
                        column = col
                        break
                else:
                    # Window packed solid: same cyclic fallback as the
                    # reference placement, starting at the window start.
                    for offset in range(cycle):
                        col = (window_start + offset) % cycle
                        if masks[col] != full:
                            column = col
                            break
                if column < 0:
                    return None
                free = ~masks[column] & full
                channel = (free & -free).bit_length() - 1
                clone.assign(channel, column, page_id)
                masks[column] |= 1 << channel
        return clone
