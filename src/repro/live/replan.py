"""Patch-based re-plan fast path for the live service (degraded regime).

A degraded-mode mutation (an insert or retune arriving while the
Theorem-3.1 requirement exceeds the channel budget) forces a full PAMAD
re-plan of the whole catalog, yet the typical mutation moves a single
page within one expected-time group.  When the rest of the plan provably
cannot change, re-deriving every other group's placement is pure waste:
only the changed group's copies need to move.

:class:`FastReplanner` keeps a snapshot of the last full PAMAD plan and
patches the on-air grid instead of re-planning when *all* of the
following hold against the current catalog:

* the expected-time rungs (and therefore the group structure) are the
  ones the snapshot was planned for;
* at most one rung's page set changed since the snapshot;
* the frequency vector recomputed for the current group sizes
  (Algorithm 3, via :func:`~repro.core.frequencies.pamad_frequencies_for`
  on raw sizes — no instance construction) differs from the snapshot's
  in at most that same rung;
* the Equation-8 cycle for the new ``sum S_i P_i`` equals the on-air
  cycle, so the grid shape — and with it every *unchanged* group's
  Algorithm-4 windows — is preserved.

The patch then (1) structurally copies the on-air program
(:meth:`~repro.core.program.BroadcastProgram.copy` — list duplication,
no re-derivation), (2) clears every cell of the changed rung's pages,
and (3) re-places the rung's current page set, ``S_i`` copies each,
through the Algorithm-4 window scan.
Free channels are found with per-column occupancy bitmasks: clearing a
page punches holes mid-column, so the prefix-occupancy shortcut the
batch kernels in :mod:`repro.core.fastpath` rely on does not apply here,
but a bitmask keeps the probe O(1) per column regardless.

The patched program is a legitimate Algorithm-4 placement for the
current catalog — exact per-page counts, Equation-8 cycle — and the
whole procedure is deterministic, so live replay stays byte-identical
run to run.  Capacity is guaranteed by the cycle check (``sum S_i P_i <=
N * cycle``), hence the cyclic-fallback scan can never come up empty for
an eligible patch; the ``None`` return on a full grid is kept as a
belt-and-braces downgrade to a full re-plan rather than an error.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.core.frequencies import pamad_frequencies_for
from repro.core.intmath import ceil_div
from repro.core.program import BroadcastProgram

__all__ = ["ReplanState", "FastReplanner"]


@dataclass(frozen=True)
class ReplanState:
    """Snapshot of the last full PAMAD plan the patch path can extend.

    Attributes:
        times: Ascending expected-time rungs at plan time.
        frequencies: The plan's ``(S_1..S_h)``, aligned with ``times``.
        cycle: The plan's Equation-8 major-cycle length.
        budget: ``N_real`` the plan was built for.
        catalog: The ``page_id -> expected_time`` mapping at plan time.
    """

    times: tuple[int, ...]
    frequencies: tuple[int, ...]
    cycle: int
    budget: int
    catalog: Mapping[int, int]


def _rung_pages(catalog: Mapping[int, int]) -> dict[int, set[int]]:
    """Group a catalog mapping into ``expected_time -> page-id set``."""
    rungs: dict[int, set[int]] = {}
    for page_id, expected in catalog.items():
        rungs.setdefault(expected, set()).add(page_id)
    return rungs


class FastReplanner:
    """One-group patch planner over the last full PAMAD plan."""

    def __init__(self) -> None:
        self.state: ReplanState | None = None

    def remember(
        self,
        *,
        catalog: Mapping[int, int],
        times: tuple[int, ...],
        frequencies: tuple[int, ...],
        cycle: int,
        budget: int,
    ) -> None:
        """Record a freshly committed full PAMAD plan."""
        self.state = ReplanState(
            times=tuple(times),
            frequencies=tuple(frequencies),
            cycle=cycle,
            budget=budget,
            catalog=dict(catalog),
        )

    def invalidate(self) -> None:
        """Drop the snapshot (the regime changed, e.g. back to SUSC)."""
        self.state = None

    def try_patch(
        self,
        catalog: Mapping[int, int],
        program: BroadcastProgram | None,
    ) -> BroadcastProgram | None:
        """Patch ``program`` for ``catalog``, or ``None`` if ineligible."""
        state = self.state
        if state is None or program is None:
            return None
        if (
            program.cycle_length != state.cycle
            or program.num_channels != state.budget
        ):
            return None
        new_rungs = _rung_pages(catalog)
        times = tuple(sorted(new_rungs))
        if times != state.times:
            return None
        old_rungs = _rung_pages(state.catalog)
        changed = [
            index
            for index, time in enumerate(times)
            if new_rungs[time] != old_rungs[time]
        ]
        if len(changed) > 1:
            return None

        sizes = tuple(len(new_rungs[time]) for time in times)
        assignment = pamad_frequencies_for(sizes, times, state.budget)
        frequencies = assignment.frequencies
        target = set(changed)
        target.update(
            index
            for index, (new, old) in enumerate(
                zip(frequencies, state.frequencies)
            )
            if new != old
        )
        if len(target) > 1:
            return None
        cycle = ceil_div(
            sum(s * p for s, p in zip(frequencies, sizes)), state.budget
        )
        if cycle != state.cycle:
            return None

        if not target:
            # Nothing moved since the plan (e.g. an SLO-triggered re-plan
            # on an unchanged catalog): the on-air program IS the plan.
            return program

        index = target.pop()
        rung_time = times[index]
        patched = self._patch(
            program,
            clear_pages=old_rungs[rung_time] | new_rungs[rung_time],
            place_pages=new_rungs[rung_time],
            copies=frequencies[index],
            num_channels=state.budget,
        )
        if patched is None:
            return None
        self.remember(
            catalog=catalog,
            times=times,
            frequencies=frequencies,
            cycle=cycle,
            budget=state.budget,
        )
        return patched

    @staticmethod
    def _patch(
        program: BroadcastProgram,
        clear_pages: set[int],
        place_pages: set[int],
        copies: int,
        num_channels: int,
    ) -> BroadcastProgram | None:
        """Clear one rung and re-place it Algorithm-4 style."""
        clone = program.copy()
        for page_id in clear_pages:
            for ref in clone.appearances(page_id):
                clone.clear(ref.channel, ref.slot)
        cycle = clone.cycle_length
        full = (1 << num_channels) - 1
        masks = [0] * cycle  # bit c set <=> channel c occupied in column
        for channel, row in enumerate(clone.grid_rows()):
            bit = 1 << channel
            for slot, occupant in enumerate(row):
                if occupant is not None:
                    masks[slot] |= bit
        for page_id in sorted(place_pages):
            for k in range(copies):
                window_start = ceil_div(cycle * k, copies)
                window_end = min(ceil_div(cycle * (k + 1), copies), cycle)
                column = -1
                for col in range(window_start, window_end):
                    if masks[col] != full:
                        column = col
                        break
                else:
                    # Window packed solid: same cyclic fallback as the
                    # reference placement, starting at the window start.
                    for offset in range(cycle):
                        col = (window_start + offset) % cycle
                        if masks[col] != full:
                            column = col
                            break
                if column < 0:
                    return None
                free = ~masks[column] & full
                channel = (free & -free).bit_length() - 1
                clone.assign(channel, column, page_id)
                masks[column] |= 1 << channel
        return clone
