"""Deadline-miss SLO tracking for the live service.

The paper's quality bar is structural: a *valid* program guarantees no
client ever waits longer than its page's expected time.  The live
runtime cannot always hold that bar — the catalog mutates, admission may
be disabled, and PAMAD programs below the Theorem-3.1 floor trade
validity for average delay — so it needs the operational version of the
same promise: observe every listener, compare waiting time against the
deadline the client was promised, and keep a rolling miss-rate that a
controller can act on.

:class:`SloTracker` does exactly that.  Misses are tracked globally and
per expected-time class (the paper's "group" notion carried over to a
mutating catalog, where group indices are unstable but deadlines are
meaningful), over both the full run and a sliding window of the last
``window`` observations.  :meth:`breached` is the trigger the service
uses to force a full re-plan when repair debt accumulates.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.core.errors import SimulationError

__all__ = ["SloObservation", "SloTracker"]


@dataclass(frozen=True, slots=True)
class SloObservation:
    """One replayed listener, judged against its promised deadline.

    Attributes:
        time: Arrival time of the listener.
        page_id: The page the client asked for.
        expected_time: The deadline the client was promised.
        wait: Observed waiting time in slots; ``None`` when the page was
            not on air at arrival (counts as a miss).
        miss: True when ``wait`` is ``None`` or exceeds the deadline.
    """

    time: float
    page_id: int
    expected_time: int
    wait: float | None
    miss: bool

    def as_dict(self) -> dict:
        return {
            "time": self.time,
            "page_id": self.page_id,
            "expected_time": self.expected_time,
            "wait": self.wait,
            "miss": self.miss,
        }


class SloTracker:
    """Rolling deadline-miss accounting, global and per deadline class.

    Args:
        window: Number of most-recent observations the rolling miss rate
            is computed over.
        target_miss_rate: The SLO threshold; :meth:`breached` fires when
            the rolling rate exceeds it (and the window has filled
            enough to be meaningful).
    """

    def __init__(
        self, window: int = 64, target_miss_rate: float = 0.05
    ) -> None:
        if window < 1:
            raise SimulationError(f"window must be >= 1, got {window}")
        if not 0.0 <= target_miss_rate <= 1.0:
            raise SimulationError(
                f"target_miss_rate must be in [0, 1], got {target_miss_rate}"
            )
        self.window = window
        self.target_miss_rate = target_miss_rate
        self._recent: deque[bool] = deque(maxlen=window)
        self.listeners = 0
        self.misses = 0
        self.total_wait = 0.0
        self.served = 0
        self._per_class: dict[int, dict[str, int]] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def observe(
        self,
        time: float,
        page_id: int,
        expected_time: int,
        wait: float | None,
    ) -> SloObservation:
        """Record one listener; returns the judged observation."""
        miss = wait is None or wait > expected_time
        self.listeners += 1
        if miss:
            self.misses += 1
        if wait is not None:
            self.total_wait += wait
            self.served += 1
        self._recent.append(miss)
        bucket = self._per_class.setdefault(
            expected_time, {"listeners": 0, "misses": 0}
        )
        bucket["listeners"] += 1
        if miss:
            bucket["misses"] += 1
        return SloObservation(
            time=time,
            page_id=page_id,
            expected_time=expected_time,
            wait=wait,
            miss=miss,
        )

    def observe_batch(
        self,
        expected_times,
        waits,
        served,
        misses,
        exact: bool = False,
    ) -> None:
        """Fold a whole batch of judged listeners into the tracker.

        Equivalent to calling :meth:`observe` once per listener in
        order, but with the per-listener bookkeeping done in bulk — the
        batched listener engine's half of the determinism contract.
        Counters, the rolling window and per-class buckets are exactly
        sequential (integer arithmetic and ordered appends); only
        ``total_wait`` depends on float summation order.  With
        ``exact=True`` it accumulates left to right, bit-identical to
        the event-by-event path; the default sums with
        :func:`math.fsum` (correctly rounded, so *more* accurate, and
        within a few ULP of the sequential sum — the tolerance the
        agreement tests pin).

        Args:
            expected_times: Promised deadline per listener (ints).
            waits: Observed wait per listener; entries where ``served``
                is False are ignored (the page was off air).
            served: Bool per listener — was the page on air?
            misses: Bool per listener — deadline missed (off air or
                ``wait > expected``)?  Judged by the caller so the wait
                comparison happens once, vectorised.
            exact: Accumulate ``total_wait`` in listener order instead
                of in one vectorised sum.
        """
        import numpy as np

        miss_arr = np.asarray(misses, dtype=bool)
        served_arr = np.asarray(served, dtype=bool)
        waits_arr = np.asarray(waits, dtype=np.float64)
        exp_arr = np.asarray(expected_times, dtype=np.int64)
        count = int(miss_arr.shape[0])
        if not (
            exp_arr.shape[0] == waits_arr.shape[0]
            == served_arr.shape[0] == count
        ):
            raise SimulationError(
                "observe_batch arrays must share one length, got "
                f"{exp_arr.shape[0]}/{waits_arr.shape[0]}/"
                f"{served_arr.shape[0]}/{count}"
            )
        self.listeners += count
        self.misses += int(miss_arr.sum())
        if exact:
            total = self.total_wait
            for wait in waits_arr[served_arr].tolist():
                total += wait
            self.total_wait = total
        else:
            self.total_wait += float(waits_arr[served_arr].sum())
        self.served += int(served_arr.sum())
        # Only the last `window` observations can survive in the deque,
        # so extending with that tail is sequentially equivalent.
        self._recent.extend(miss_arr[-self.window:].tolist())
        if not count:
            return
        top = int(exp_arr.max())
        if int(exp_arr.min()) >= 0 and top <= 4 * count + 1024:
            # Dense deadline classes (the only kind the validators
            # admit): two bincounts replace the per-class masking pass.
            per = np.bincount(exp_arr, minlength=top + 1)
            per_miss = np.bincount(exp_arr[miss_arr], minlength=top + 1)
            for expected in np.flatnonzero(per).tolist():
                bucket = self._per_class.setdefault(
                    expected, {"listeners": 0, "misses": 0}
                )
                bucket["listeners"] += int(per[expected])
                bucket["misses"] += int(per_miss[expected])
        else:
            for expected in np.unique(exp_arr).tolist():
                mask = exp_arr == expected
                bucket = self._per_class.setdefault(
                    int(expected), {"listeners": 0, "misses": 0}
                )
                bucket["listeners"] += int(mask.sum())
                bucket["misses"] += int(miss_arr[mask].sum())

    # ------------------------------------------------------------------
    # Rates
    # ------------------------------------------------------------------

    @property
    def miss_rate(self) -> float:
        """Whole-run miss rate."""
        return self.misses / self.listeners if self.listeners else 0.0

    @property
    def rolling_miss_rate(self) -> float:
        """Miss rate over the last ``window`` observations."""
        if not self._recent:
            return 0.0
        return sum(self._recent) / len(self._recent)

    @property
    def average_wait(self) -> float:
        """Mean wait over listeners that were actually served."""
        return self.total_wait / self.served if self.served else 0.0

    def breached(self) -> bool:
        """True when the rolling miss rate exceeds the SLO target.

        Requires at least half a window of observations so a single
        early miss cannot trigger a re-plan storm.
        """
        if len(self._recent) < max(1, self.window // 2):
            return False
        return self.rolling_miss_rate > self.target_miss_rate

    def reset_window(self) -> None:
        """Forget the rolling window (whole-run totals are kept).

        Called after a corrective re-plan so the new program is judged on
        its own observations instead of inheriting the breach that
        triggered it.
        """
        self._recent.clear()

    def per_class(self) -> dict[int, dict[str, float]]:
        """Miss accounting per promised deadline, sorted by deadline."""
        out: dict[int, dict[str, float]] = {}
        for expected in sorted(self._per_class):
            bucket = self._per_class[expected]
            out[expected] = {
                "listeners": bucket["listeners"],
                "misses": bucket["misses"],
                "miss_rate": (
                    bucket["misses"] / bucket["listeners"]
                    if bucket["listeners"]
                    else 0.0
                ),
            }
        return out

    def as_dict(self) -> dict:
        """Summary block for run manifests."""
        return {
            "listeners": self.listeners,
            "misses": self.misses,
            "miss_rate": round(self.miss_rate, 6),
            "rolling_miss_rate": round(self.rolling_miss_rate, 6),
            "average_wait": round(self.average_wait, 6),
            "window": self.window,
            "target_miss_rate": self.target_miss_rate,
            "per_class": {
                str(expected): {
                    "listeners": stats["listeners"],
                    "misses": stats["misses"],
                    "miss_rate": round(stats["miss_rate"], 6),
                }
                for expected, stats in self.per_class().items()
            },
        }
