"""The live broadcast service — a runtime over the paper's batch planners.

:class:`LiveBroadcastService` replays a :class:`~repro.live.mutations.
MutationTrace` against a broadcast program, epoch by epoch, on the
deterministic :class:`~repro.sim.events.EventLoop`.  Three layers react
to each event:

1. **Admission** (:mod:`repro.live.admission`) judges catalog mutations
   against the Theorem-3.1 channel budget before they touch anything.
2. **Incremental rescheduling** patches the running program in place
   when the mutation leaves the bound slack — removals clear cells,
   inserts look for a vacant periodic slot pattern — and falls back to a
   full SUSC/PAMAD re-plan through :class:`~repro.engine.facade.
   BroadcastEngine` (the PR-2 recovery decision: SUSC at or above the
   bound, PAMAD below it) when no cheap repair exists.
3. **SLO control** (:mod:`repro.live.slo`) replays listener arrivals
   against the current program and forces a corrective re-plan when the
   rolling deadline-miss rate breaches the target.

Everything the service does lands in an append-only, JSON-friendly
event log; replaying the same trace with the same seed produces a
byte-identical log, which is the determinism contract the CI smoke job
diffs against.

Incremental insert, and why it is safe
--------------------------------------
For a page with expected time ``t`` joining a program with cycle ``L``:

* ``t >= L``: one appearance anywhere suffices — every cyclic gap is
  then exactly ``L <= t`` and the first appearance lands before ``t``.
* ``t < L`` and ``t | L`` (automatic when expected times stay on one
  divisibility ladder): appearances at columns ``o, o+t, o+2t, ...``
  for any offset ``o < t`` give gaps of exactly ``t`` and a first
  appearance before ``t``.  The repair scans offsets for one whose
  columns all have a free channel; gaps depend only on columns, never on
  which channel carries the page, so channels can differ per column.

Existing pages are untouched either way, so a valid program stays valid.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
import json
from typing import TYPE_CHECKING, Mapping

from repro.core.errors import SimulationError
from repro.core.pages import ProblemInstance
from repro.core.program import BroadcastProgram
from repro.core.validate import validate_program
from repro.live.admission import AdmissionController, AdmissionDecision
from repro.live.catalog import LiveCatalog
from repro.live.mutations import MutationEvent, MutationTrace
from repro.live.replan import FastReplanner
from repro.live.slo import SloTracker
from repro.sim.events import EventLoop

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.facade import BroadcastEngine

__all__ = ["LiveBroadcastService", "LiveReport"]

# Chunk bounds for the batched listener engine: a segment's first chunk
# after a re-plan is small (breaches tend to re-trigger shortly after the
# cooldown clears, and waits computed past a trigger are thrown away),
# then doubles so long healthy runs are processed in full-width passes.
_CHUNK_MIN = 2048
_CHUNK_MAX = 65536


@dataclass(frozen=True)
class LiveReport:
    """Outcome of one :meth:`LiveBroadcastService.run`.

    Attributes:
        horizon: Slots replayed.
        budget: The channel budget the run was held to.
        trace_fingerprint: Content digest of the replayed trace.
        program: The program on air when the horizon was reached.
        catalog: Final ``page_id -> expected_time`` mapping.
        final_required: Theorem-3.1 requirement of the final catalog.
        final_valid: Whether the final program is valid for the final
            catalog (always False in degraded/PAMAD mode).
        admission: Admission-controller summary block.
        slo: SLO-tracker summary block.
        counters: Runtime counters (repairs, replans, listeners, ...).
        decisions: Every admission verdict, in event order.
        event_log: The deterministic structured log, in event order.
    """

    horizon: int
    budget: int
    trace_fingerprint: str
    program: BroadcastProgram
    catalog: Mapping[int, int]
    final_required: int
    final_valid: bool
    admission: Mapping[str, object]
    slo: Mapping[str, object]
    counters: Mapping[str, int]
    decisions: tuple[AdmissionDecision, ...]
    event_log: tuple[Mapping[str, object], ...]

    def as_dict(self) -> dict:
        """Manifest-ready summary (excludes the program grid and log)."""
        return {
            "horizon": self.horizon,
            "budget": self.budget,
            "trace_fingerprint": self.trace_fingerprint,
            "final_pages": len(self.catalog),
            "final_required": self.final_required,
            "final_valid": self.final_valid,
            "final_cycle_length": self.program.cycle_length,
            "admission": dict(self.admission),
            "slo": dict(self.slo),
            "counters": {k: int(v) for k, v in sorted(self.counters.items())},
        }

    def event_log_json(self) -> str:
        """The event log as canonical JSON (the determinism artifact)."""
        return json.dumps(
            list(self.event_log), indent=2, sort_keys=True
        )


class LiveBroadcastService:
    """Replay a mutation trace against a continuously repaired program.

    Args:
        initial: The catalog on air at ``t=0`` — a
            :class:`~repro.core.pages.ProblemInstance` or a plain
            ``page_id -> expected_time`` mapping.
        trace: The seeded mutation/listener timeline to replay.
        budget: Channel budget ``N_real``; defaults to the Theorem-3.1
            requirement of the initial catalog (a taut budget, so any
            load-increasing mutation exercises admission control).
        engine: Scheduling facade used for full re-plans; a private
            engine is created when omitted, so repeated runs start from
            identical cache and telemetry state.
        admission: When False, every mutation is applied regardless of
            the bound (the EXT11 control arm).
        queue_limit: Admission queue capacity.
        slo_window: Rolling window width for the miss-rate SLO.
        target_miss_rate: Rolling miss-rate threshold that triggers a
            corrective re-plan.
        replan_cooldown: Minimum slots between SLO-triggered re-plans.
        self_check: Validate the program against the live catalog after
            every applied mutation while the budget covers the bound
            (the property-test hook; raises on violation).
        batch_listeners: Replay consecutive listener arrivals between
            catalog changes as one vectorised pass (the million-listener
            throughput path).  SLO counters, breach triggers and re-plan
            decisions are sequentially equivalent to the event-by-event
            path; the event log aggregates each batch into one
            ``listener_batch`` entry instead of per-listener entries.
        slo_exact: In batched mode, accumulate the SLO wait total in
            strict listener order (bit-identical to event-by-event)
            instead of one vectorised sum (equal within float tolerance).
        coalesce_window: When positive, catalog mutations buffer for this
            many slots and flush as one net batch: an insert+remove of
            the same page cancels, repeated retunes collapse to the
            last, remove+insert becomes a retune.  The flushed batch is
            admitted and applied exactly as if the net operations had
            arrived event by event at the window end.  ``0`` disables
            coalescing (the default, and the event-by-event contract).
    """

    def __init__(
        self,
        initial: ProblemInstance | Mapping[int, int],
        trace: MutationTrace,
        *,
        budget: int | None = None,
        engine: "BroadcastEngine | None" = None,
        admission: bool = True,
        queue_limit: int = 16,
        slo_window: int = 64,
        target_miss_rate: float = 0.05,
        replan_cooldown: int = 8,
        self_check: bool = False,
        batch_listeners: bool = False,
        slo_exact: bool = False,
        coalesce_window: int = 0,
    ) -> None:
        self.catalog = LiveCatalog(initial)
        self.trace = trace
        self.budget = (
            self.catalog.required_channels() if budget is None else budget
        )
        if self.budget < 1:
            raise SimulationError(
                f"budget must be >= 1, got {self.budget}"
            )
        if engine is None:
            # Imported lazily: repro.live must stay importable while the
            # engine package (which reaches repro.workload -> this
            # package) is itself still initialising.
            from repro.engine.facade import BroadcastEngine

            engine = BroadcastEngine()
        self.engine = engine
        self.admission = AdmissionController(
            self.budget, queue_limit=queue_limit, enabled=admission
        )
        self.slo = SloTracker(
            window=slo_window, target_miss_rate=target_miss_rate
        )
        if replan_cooldown < 0:
            raise SimulationError(
                f"replan_cooldown must be >= 0, got {replan_cooldown}"
            )
        self.replan_cooldown = replan_cooldown
        self.self_check = self_check
        self.batch_listeners = batch_listeners
        self.slo_exact = slo_exact
        if coalesce_window < 0:
            raise SimulationError(
                f"coalesce_window must be >= 0, got {coalesce_window}"
            )
        self.coalesce_window = coalesce_window

        self.program: BroadcastProgram | None = None
        self._replanner = FastReplanner()
        self.counters: dict[str, int] = {
            "mutations": 0,
            "incremental_repairs": 0,
            "full_replans": 0,
            "fastpath_replans": 0,
            "slo_replans": 0,
            "queue_drains": 0,
            "listeners": 0,
            "misses": 0,
            "batched_listeners": 0,
            "events_coalesced": 0,
            "replans_avoided": 0,
        }
        self._decisions: list[AdmissionDecision] = []
        self._log: list[dict] = []
        self._loop: EventLoop | None = None
        self._last_slo_replan = float("-inf")
        self._now_override: float | None = None
        self._pending: list[MutationEvent] = []
        self._window_end: float | None = None
        self._finished = False

    # ------------------------------------------------------------------
    # Logging
    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        # The override carries a mid-batch listener's arrival time while
        # the batched path handles a breach, so its records match the
        # event-by-event path (where the loop clock sits on that event).
        if self._now_override is not None:
            return self._now_override
        return self._loop.now if self._loop is not None else 0.0

    def _record(self, entry_type: str, **details: object) -> None:
        entry = {"t": self.now, "type": entry_type}
        entry.update(details)
        self._log.append(entry)

    def _count(self, name: str, amount: int = 1) -> None:
        self.counters[name] += amount
        self.engine.telemetry.incr(f"live.{name}", amount)

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------

    def _full_replan(self, reason: str) -> None:
        """Re-plan the catalog: SUSC at/above the bound, else PAMAD.

        In the PAMAD regime a patch of the running program is tried
        first (see :mod:`repro.live.replan`); it applies when at most
        one expected-time group moved since the last full plan and the
        recomputed frequencies and cycle prove the rest of the plan
        unchanged.  Ineligible mutations fall through to the engine.
        """
        required = self.catalog.required_channels()
        algorithm = "susc" if required <= self.budget else "pamad"
        if algorithm == "pamad":
            patched = self._replanner.try_patch(
                self.catalog.pages(), self.program
            )
            if patched is not None:
                self.program = patched
                self._count("fastpath_replans")
                self._record(
                    "replan",
                    reason=reason,
                    algorithm="pamad-patch",
                    channels=self.budget,
                    required=required,
                    cycle_length=patched.cycle_length,
                    pages=len(self.catalog),
                )
                return
        instance = self.catalog.to_instance()
        schedule = self.engine.schedule(
            instance, algorithm, channels=self.budget
        )
        # The engine's program cache returns the *identical* schedule
        # object on a hit, and the incremental repairs below mutate the
        # program in place (assign/clear) — so the service must work on
        # a copy or it would poison the cache for every later hit (its
        # own re-plans of the same catalog, and any other service
        # sharing the engine, e.g. warm federation shard engines).
        self.program = schedule.program.copy()
        if algorithm == "pamad":
            self._replanner.remember(
                catalog=self.catalog.pages(),
                times=instance.expected_times,
                frequencies=tuple(schedule.meta["frequencies"]),
                cycle=schedule.program.cycle_length,
                budget=self.budget,
            )
        else:
            self._replanner.invalidate()
        self._count("full_replans")
        self._record(
            "replan",
            reason=reason,
            algorithm=algorithm,
            channels=self.budget,
            required=required,
            cycle_length=schedule.program.cycle_length,
            pages=len(self.catalog),
        )

    def _try_place(self, page_id: int, expected_time: int) -> bool:
        """Incremental insert: place ``page_id`` without moving any page."""
        program = self.program
        if program is None:
            return False
        cycle = program.cycle_length
        if expected_time >= cycle:
            for ref in program.free_cells():
                program.assign(ref.channel, ref.slot, page_id)
                return True
            return False
        if cycle % expected_time != 0:
            # Off-ladder deadline: no periodic column pattern exists.
            return False
        period = expected_time
        for offset in range(period):
            columns = range(offset, cycle, period)
            channels = []
            for slot in columns:
                channel = program.free_channel_in_column(slot)
                if channel is None:
                    break
                channels.append((channel, slot))
            else:
                for channel, slot in channels:
                    program.assign(channel, slot, page_id)
                return True
        return False

    def _unplace(self, page_id: int) -> int:
        """Clear every appearance of ``page_id``; returns cells freed."""
        program = self.program
        if program is None:
            return 0
        refs = program.appearances(page_id)
        for ref in refs:
            program.clear(ref.channel, ref.slot)
        return len(refs)

    def _self_check(self, context: str) -> None:
        if not self.self_check or self.program is None:
            return
        if self.catalog.required_channels() > self.budget:
            return  # degraded mode: validity is not promised
        report = validate_program(self.program, self.catalog.to_instance())
        if not report.ok:
            raise SimulationError(
                f"live program invalid after {context} at t={self.now}: "
                f"{report.errors[:3]}"
            )

    # ------------------------------------------------------------------
    # Mutation application
    # ------------------------------------------------------------------

    def _apply_insert(self, page_id: int, expected_time: int) -> None:
        if self.catalog.required_channels() > self.budget:
            # Degraded (admission off): PAMAD must re-weigh every page.
            self._full_replan(f"insert-degraded:{page_id}")
            return
        if self._try_place(page_id, expected_time):
            self._count("incremental_repairs")
            self._record(
                "repair", action="insert", page_id=page_id,
                expected_time=expected_time,
                appearances=self.program.broadcast_count(page_id),
            )
        else:
            self._full_replan(f"insert-no-slack:{page_id}")

    def _apply_remove(self, page_id: int) -> None:
        freed = self._unplace(page_id)
        self._count("incremental_repairs")
        self._record(
            "repair", action="remove", page_id=page_id, cells_freed=freed
        )

    def _apply_retune(self, page_id: int, expected_time: int) -> None:
        program = self.program
        if self.catalog.required_channels() > self.budget:
            self._full_replan(f"retune-degraded:{page_id}")
            return
        if program is not None and program.broadcast_count(page_id) > 0:
            slots = program.appearance_slots(page_id)
            gaps = program.cyclic_gaps(page_id)
            if max(gaps) <= expected_time and slots[0] < expected_time:
                self._count("incremental_repairs")
                self._record(
                    "repair", action="retune-keep", page_id=page_id,
                    expected_time=expected_time,
                )
                return
            self._unplace(page_id)
        if self._try_place(page_id, expected_time):
            self._count("incremental_repairs")
            self._record(
                "repair", action="retune-replace", page_id=page_id,
                expected_time=expected_time,
                appearances=program.broadcast_count(page_id),
            )
        else:
            self._full_replan(f"retune-no-slack:{page_id}")

    def _drain_queue(self) -> None:
        """Admit queued inserts that fit after a removal/relaxation."""
        admitted, decisions = self.admission.drain(self.catalog, self.now)
        for event, decision in zip(admitted, decisions):
            self._decisions.append(decision)
            self._record("admission", **decision.as_dict())
            self.catalog.insert(event.page_id, event.expected_time)
            self._count("queue_drains")
            self._apply_insert(event.page_id, event.expected_time)
            self._self_check(f"queue-drain:{event.page_id}")

    # ------------------------------------------------------------------
    # Event handlers
    # ------------------------------------------------------------------

    def _on_mutation(self, event: MutationEvent) -> None:
        self._count("mutations")
        if self.coalesce_window > 0:
            self._buffer_mutation(event)
        else:
            self._admit_and_apply(event)

    def _admit_and_apply(self, event: MutationEvent) -> None:
        if event.kind == "page_insert":
            decision = self.admission.decide_insert(self.catalog, event)
        elif event.kind == "page_remove":
            decision = self.admission.decide_remove(self.catalog, event)
        else:
            decision = self.admission.decide_retune(self.catalog, event)
        self._decisions.append(decision)
        self._record("admission", **decision.as_dict())
        if decision.verdict != "admitted":
            return
        if event.kind == "page_insert":
            self.catalog.insert(event.page_id, event.expected_time)
            self._apply_insert(event.page_id, event.expected_time)
        elif event.kind == "page_remove":
            self.catalog.remove(event.page_id)
            self._apply_remove(event.page_id)
        else:
            self.catalog.retune(event.page_id, event.expected_time)
            self._apply_retune(event.page_id, event.expected_time)
        self._self_check(f"{event.kind}:{event.page_id}")
        if event.kind in ("page_remove", "page_retune"):
            self._drain_queue()

    # ------------------------------------------------------------------
    # Mutation coalescing
    # ------------------------------------------------------------------

    def _buffer_mutation(self, event: MutationEvent) -> None:
        """Hold a catalog mutation until the coalescing window closes."""
        if self._window_end is None:
            self._window_end = event.time + self.coalesce_window
            self._loop.schedule_at(self._window_end, self._flush_mutations)
        self._pending.append(event)
        self._count("events_coalesced")
        self._record(
            "coalesce",
            kind=event.kind,
            page_id=event.page_id,
            window_end=self._window_end,
        )

    def _net_operations(
        self, pending: list[MutationEvent], flush_time: float
    ) -> list[MutationEvent]:
        """Fold a buffered burst into its net catalog operations.

        Per page, the buffered sequence is replayed against the page's
        pre-window membership (ops that would be invalid mid-sequence —
        duplicate insert, remove of an absent page — are dropped, the
        same way event-by-event admission would reject them) and only
        the initial-state -> final-state difference is emitted:
        insert+remove cancels, retunes collapse to the last,
        remove+insert of the same page becomes one retune.  Net events
        are stamped at ``flush_time`` and ordered by ``(kind, page_id)``,
        matching the trace tie-order at a shared timestamp.
        """
        initial: dict[int, int | None] = {}
        final: dict[int, int | None] = {}
        order: list[int] = []
        for event in pending:
            page_id = event.page_id
            if page_id not in initial:
                before = (
                    self.catalog.expected_time(page_id)
                    if page_id in self.catalog
                    else None
                )
                initial[page_id] = before
                final[page_id] = before
                order.append(page_id)
            state = final[page_id]
            if event.kind == "page_insert":
                if state is None:
                    final[page_id] = event.expected_time
            elif event.kind == "page_remove":
                if state is not None:
                    final[page_id] = None
            else:  # page_retune
                if state is not None:
                    final[page_id] = event.expected_time
        net: list[MutationEvent] = []
        for page_id in order:
            before, after = initial[page_id], final[page_id]
            if before == after:
                continue
            if before is None:
                net.append(MutationEvent(
                    time=flush_time, kind="page_insert",
                    page_id=page_id, expected_time=after,
                ))
            elif after is None:
                net.append(MutationEvent(
                    time=flush_time, kind="page_remove", page_id=page_id,
                ))
            else:
                net.append(MutationEvent(
                    time=flush_time, kind="page_retune",
                    page_id=page_id, expected_time=after,
                ))
        net.sort(key=lambda e: (e.kind, e.page_id))
        return net

    def _flush_mutations(self) -> None:
        """Close the window: admit and apply the net operations."""
        pending, self._pending = self._pending, []
        window_end, self._window_end = self._window_end, None
        if not pending:
            return
        net = self._net_operations(pending, window_end)
        self._count("replans_avoided", len(pending) - len(net))
        self._record(
            "coalesce_flush",
            buffered=len(pending),
            net=len(net),
            avoided=len(pending) - len(net),
        )
        for event in net:
            self._admit_and_apply(event)

    def _planned_flush_times(self) -> list[float]:
        """The flush times coalescing will use, computed from the trace.

        Mirrors :meth:`_buffer_mutation`'s runtime behaviour (a window
        opens at the first buffered mutation; mutations up to and
        including the window end join it) so the batched listener path
        can split listener runs at program-change boundaries up front.
        """
        if self.coalesce_window <= 0:
            return []
        times: list[float] = []
        window_end: float | None = None
        for event in self.trace:
            if event.kind == "listener":
                continue
            if window_end is None or event.time > window_end:
                window_end = event.time + self.coalesce_window
                times.append(window_end)
        return times

    def _on_listener(self, event: MutationEvent) -> None:
        self._count("listeners")
        program = self.program
        if program is None or program.broadcast_count(event.page_id) == 0:
            wait: float | None = None
        else:
            wait = program.wait_time(
                event.page_id, event.time % program.cycle_length
            )
        observation = self.slo.observe(
            event.time, event.page_id, event.expected_time, wait
        )
        if observation.miss:
            self._count("misses")
        self._record(
            "listener",
            page_id=event.page_id,
            expected_time=event.expected_time,
            wait=wait,
            miss=observation.miss,
        )
        if (
            self.slo.breached()
            and self.now - self._last_slo_replan >= self.replan_cooldown
        ):
            self._last_slo_replan = self.now
            self._count("slo_replans")
            self._record(
                "slo_breach",
                rolling_miss_rate=round(self.slo.rolling_miss_rate, 6),
                target=self.slo.target_miss_rate,
            )
            self._full_replan("slo-breach")
            self.slo.reset_window()

    def _replay_listeners(self, all_times, all_expected, all_pages) -> None:
        """Replay a run of listener arrivals as vectorised passes.

        Sequentially equivalent to calling :meth:`_on_listener` per
        event: waits come from the same ``searchsorted`` kernel the
        sweep analysis uses (bit-identical to
        :meth:`~repro.core.program.BroadcastProgram.wait_time`), the SLO
        breach trigger is located by replaying the rolling window as a
        cumulative sum, and a mid-batch breach re-plans at the
        triggering listener's timestamp before the remainder of the
        batch is re-vectorised against the new program.

        Listeners between two re-plans form one *segment* (one
        ``listener_batch`` log entry).  Internally a segment is scanned
        in chunks that double from ``_CHUNK_MIN`` to ``_CHUNK_MAX``:
        waits computed past a breach trigger are priced against the
        wrong program and must be discarded, so the waste per re-plan is
        bounded by one chunk instead of the whole remaining run —
        re-plan-heavy traces stay linear while healthy traces quickly
        reach full-width vectorised passes.  Chunking is invisible in
        the output: the log, counters and SLO window are per segment,
        and ``slo_exact`` accumulation stays left-to-right.

        Args:
            all_times: float64 arrival times, in trace order.
            all_expected: int64 promised deadlines per listener.
            all_pages: int64 requested page per listener.
        """
        import numpy as np

        from repro.analysis.vectorized import AppearanceIndex, batch_waits

        total = int(all_times.shape[0])
        start = 0
        while start < total:
            program = self.program
            index = None
            if program is not None and program.page_ids():
                index = AppearanceIndex.from_program(program)
            seg_start = start
            seg_served = 0
            seg_misses = 0
            seg_wait = 0.0
            trigger: int | None = None
            chunk = _CHUNK_MIN
            while start < total and trigger is None:
                stop = min(start + chunk, total)
                chunk = min(chunk * 2, _CHUNK_MAX)
                m = stop - start
                times = all_times[start:stop]
                expected = all_expected[start:stop]
                if index is None:
                    waits = np.zeros(m, dtype=np.float64)
                    served = np.zeros(m, dtype=bool)
                    all_served = False
                    miss = np.ones(m, dtype=bool)
                else:
                    rows = index.rows_for(all_pages[start:stop])
                    served = rows >= 0
                    all_served = bool(served.all())
                    if all_served:
                        waits = batch_waits(index, rows, times)
                        miss = waits > expected
                    else:
                        waits = np.zeros(m, dtype=np.float64)
                        if served.any():
                            waits[served] = batch_waits(
                                index, rows[served], times[served]
                            )
                        miss = ~served | (waits > expected)
                chunk_misses = int(miss.sum())

                # Replay the rolling SLO window: seed with the tracker's
                # current deque, then find the first arrival whose post-
                # observation window both breaches and clears the cooldown
                # (the same predicate _on_listener evaluates per event).
                # Any window count is bounded by the misses available
                # (deque + chunk) and any eligible window is at least
                # half wide, so when the bound cannot clear the target
                # the replay is skipped outright (float division keeps
                # the bound comparison aligned with the trigger test).
                w = self.slo.window
                half = max(1, w // 2)
                target = self.slo.target_miss_rate
                p = len(self.slo._recent)
                local = None
                if (sum(self.slo._recent) + chunk_misses) / half > target:
                    prior = np.asarray(
                        list(self.slo._recent), dtype=np.int64
                    )
                    seq = np.concatenate(
                        [prior, miss.astype(np.int64)]
                    )
                    csum = np.concatenate([[0], np.cumsum(seq)])
                    # Window counts as slice differences: after the i-th
                    # listener the window spans min(w, p + i) entries,
                    # so the first k = max(0, min(m, w - p)) positions
                    # subtract the empty prefix and the rest subtract
                    # the cumulative sum w entries back.
                    k = max(0, min(m, w - p))
                    counts = csum[p + 1:p + m + 1].copy()
                    if k < m:
                        counts[k:] -= csum[p + k + 1 - w:p + m + 1 - w]
                    eligible = np.empty(m, dtype=bool)
                    if k:
                        win_head = p + 1 + np.arange(k, dtype=np.int64)
                        eligible[:k] = (win_head >= half) & (
                            (counts[:k] / win_head) > target
                        )
                    eligible[k:] = (counts[k:] / w) > target
                    hits = np.flatnonzero(eligible)
                    if hits.size:
                        cool = (
                            times[hits] - self._last_slo_replan
                        ) >= self.replan_cooldown
                        hits = hits[cool]
                    if hits.size:
                        local = int(hits[0])
                upto = m if local is None else local + 1

                self.slo.observe_batch(
                    expected[:upto],
                    waits[:upto],
                    served[:upto],
                    miss[:upto],
                    exact=self.slo_exact,
                )
                if all_served and upto == m:
                    seg_served += m
                    seg_misses += chunk_misses
                    seg_wait += float(waits.sum())
                else:
                    seg_served += int(served[:upto].sum())
                    seg_misses += int(miss[:upto].sum())
                    seg_wait += float(waits[:upto][served[:upto]].sum())
                start += upto
                if local is not None:
                    trigger = start - 1

            count = start - seg_start
            self._count("listeners", count)
            self._count("batched_listeners", count)
            if seg_misses:
                self._count("misses", seg_misses)
            self._record(
                "listener_batch",
                count=count,
                first_time=float(all_times[seg_start]),
                last_time=float(all_times[start - 1]),
                served=seg_served,
                misses=seg_misses,
                wait_total=round(seg_wait, 6),
            )
            if trigger is not None:
                self._now_override = float(all_times[trigger])
                try:
                    self._last_slo_replan = self.now
                    self._count("slo_replans")
                    self._record(
                        "slo_breach",
                        rolling_miss_rate=round(
                            self.slo.rolling_miss_rate, 6
                        ),
                        target=self.slo.target_miss_rate,
                    )
                    self._full_replan("slo-breach")
                    self.slo.reset_window()
                finally:
                    self._now_override = None

    # ------------------------------------------------------------------
    # Run
    # ------------------------------------------------------------------

    def run(self) -> LiveReport:
        """Replay the whole trace; returns the structured report.

        In batched mode the trace's memoised columnar arrays (see
        :meth:`~repro.live.mutations.MutationTrace.columns`) drive the
        schedule: listener runs between catalog mutations are located by
        a mask diff, split at coalescing flush boundaries with one
        ``searchsorted`` per run, and dispatched to the vectorised
        engine as array slices — no per-event Python work.  A listener
        at exactly a flush time still precedes the flush (trace events
        are scheduled before the dynamically-scheduled flush callback,
        and the loop breaks ties FIFO), so runs are cut only after
        listeners strictly past a flush, matching the event-by-event
        path.
        """
        if self._loop is not None:
            raise SimulationError(
                "LiveBroadcastService.run() can only be called once; "
                "build a new service to replay again"
            )
        self._loop = EventLoop()
        self._full_replan("initial")
        self._self_check("initial")
        events = self.trace.events
        flush_times = self._planned_flush_times()
        if not self.batch_listeners:
            for event in events:
                handler = (
                    self._on_listener
                    if event.kind == "listener"
                    else self._on_mutation
                )
                self._loop.schedule_at(event.time, partial(handler, event))
            self._loop.run(until=float(self.trace.horizon))
            return self._build_report()

        import numpy as np

        all_times, is_listener, all_pages, all_expected = (
            self.trace.columns()
        )
        edges = np.flatnonzero(
            np.diff(np.concatenate(([False], is_listener, [False])))
        )
        runs = edges.reshape(-1, 2)  # [start, stop) listener runs
        flushes = np.asarray(flush_times, dtype=np.float64)
        cursor = 0
        for lo, hi in runs.tolist():
            for k in range(cursor, lo):
                self._loop.schedule_at(
                    events[k].time, partial(self._on_mutation, events[k])
                )
            cuts = np.unique(
                np.searchsorted(all_times[lo:hi], flushes, side="right")
            )
            cuts = cuts[(cuts > 0) & (cuts < hi - lo)]
            bounds = [lo, *(lo + cuts).tolist(), hi]
            for a, b in zip(bounds, bounds[1:]):
                self._loop.schedule_at(
                    float(all_times[a]),
                    partial(
                        self._replay_listeners,
                        all_times[a:b],
                        all_expected[a:b],
                        all_pages[a:b],
                    ),
                )
            cursor = hi
        for k in range(cursor, len(events)):
            self._loop.schedule_at(
                events[k].time, partial(self._on_mutation, events[k])
            )
        self._loop.run(until=float(self.trace.horizon))
        return self._build_report()

    def _build_report(self) -> LiveReport:
        """Flush the coalescing tail and summarise the session."""
        if self._pending:
            # The horizon closed before the last coalescing window did;
            # flush the tail so buffered mutations are not lost.
            self._now_override = float(self._window_end)
            try:
                self._flush_mutations()
            finally:
                self._now_override = None
        assert self.program is not None
        final_required = self.catalog.required_channels()
        final_valid = False
        if final_required <= self.budget:
            final_valid = validate_program(
                self.program, self.catalog.to_instance()
            ).ok
        return LiveReport(
            horizon=self.trace.horizon,
            budget=self.budget,
            trace_fingerprint=self.trace.fingerprint(),
            program=self.program,
            catalog=self.catalog.pages(),
            final_required=final_required,
            final_valid=final_valid,
            admission=self.admission.as_dict(),
            slo=self.slo.as_dict(),
            counters=dict(self.counters),
            decisions=tuple(self._decisions),
            event_log=tuple(self._log),
        )

    # ------------------------------------------------------------------
    # Online stepping (the control-plane driver surface)
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Begin an online session: plan the initial catalog at ``t=0``.

        The online surface (:meth:`start` / :meth:`offer` /
        :meth:`finish`) drives the same per-event machinery as
        :meth:`run`, but accepts events one at a time as they arrive
        over the control plane instead of replaying a pre-built trace.
        The two paths are behaviourally identical for the same event
        sequence; online mode simply never uses the batched listener
        kernel (events arrive singly, so there is nothing to batch).
        """
        if self._loop is not None:
            raise SimulationError(
                "service already started; build a new service to restart"
            )
        self._loop = EventLoop()
        self._full_replan("initial")
        self._self_check("initial")

    def offer(self, event: MutationEvent) -> None:
        """Feed one event into a started session and process it.

        Events must arrive in non-decreasing time order (the loop
        refuses to schedule into the past).  Advancing the clock to the
        event's time first fires any coalescing-window flush that falls
        due before it, exactly as in trace replay.
        """
        if self._loop is None:
            raise SimulationError(
                "service not started; call start() before offer()"
            )
        if self._finished:
            raise SimulationError("service already finished")
        handler = (
            self._on_listener
            if event.kind == "listener"
            else self._on_mutation
        )
        self._loop.schedule_at(event.time, partial(handler, event))
        self._loop.run(until=event.time)

    def finish(self) -> LiveReport:
        """End an online session: drain to the horizon and report."""
        if self._loop is None:
            raise SimulationError(
                "service not started; call start() before finish()"
            )
        if self._finished:
            raise SimulationError("service already finished")
        self._finished = True
        self._loop.run(until=float(self.trace.horizon))
        return self._build_report()
