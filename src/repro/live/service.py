"""The live broadcast service — a runtime over the paper's batch planners.

:class:`LiveBroadcastService` replays a :class:`~repro.live.mutations.
MutationTrace` against a broadcast program, epoch by epoch, on the
deterministic :class:`~repro.sim.events.EventLoop`.  Three layers react
to each event:

1. **Admission** (:mod:`repro.live.admission`) judges catalog mutations
   against the Theorem-3.1 channel budget before they touch anything.
2. **Incremental rescheduling** patches the running program in place
   when the mutation leaves the bound slack — removals clear cells,
   inserts look for a vacant periodic slot pattern — and falls back to a
   full SUSC/PAMAD re-plan through :class:`~repro.engine.facade.
   BroadcastEngine` (the PR-2 recovery decision: SUSC at or above the
   bound, PAMAD below it) when no cheap repair exists.
3. **SLO control** (:mod:`repro.live.slo`) replays listener arrivals
   against the current program and forces a corrective re-plan when the
   rolling deadline-miss rate breaches the target.

Everything the service does lands in an append-only, JSON-friendly
event log; replaying the same trace with the same seed produces a
byte-identical log, which is the determinism contract the CI smoke job
diffs against.

Incremental insert, and why it is safe
--------------------------------------
For a page with expected time ``t`` joining a program with cycle ``L``:

* ``t >= L``: one appearance anywhere suffices — every cyclic gap is
  then exactly ``L <= t`` and the first appearance lands before ``t``.
* ``t < L`` and ``t | L`` (automatic when expected times stay on one
  divisibility ladder): appearances at columns ``o, o+t, o+2t, ...``
  for any offset ``o < t`` give gaps of exactly ``t`` and a first
  appearance before ``t``.  The repair scans offsets for one whose
  columns all have a free channel; gaps depend only on columns, never on
  which channel carries the page, so channels can differ per column.

Existing pages are untouched either way, so a valid program stays valid.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
import json
from typing import TYPE_CHECKING, Mapping

from repro.core.errors import SimulationError
from repro.core.pages import ProblemInstance
from repro.core.program import BroadcastProgram
from repro.core.validate import validate_program
from repro.live.admission import AdmissionController, AdmissionDecision
from repro.live.catalog import LiveCatalog
from repro.live.mutations import MutationEvent, MutationTrace
from repro.live.replan import FastReplanner
from repro.live.slo import SloTracker
from repro.sim.events import EventLoop

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.facade import BroadcastEngine

__all__ = ["LiveBroadcastService", "LiveReport"]


@dataclass(frozen=True)
class LiveReport:
    """Outcome of one :meth:`LiveBroadcastService.run`.

    Attributes:
        horizon: Slots replayed.
        budget: The channel budget the run was held to.
        trace_fingerprint: Content digest of the replayed trace.
        program: The program on air when the horizon was reached.
        catalog: Final ``page_id -> expected_time`` mapping.
        final_required: Theorem-3.1 requirement of the final catalog.
        final_valid: Whether the final program is valid for the final
            catalog (always False in degraded/PAMAD mode).
        admission: Admission-controller summary block.
        slo: SLO-tracker summary block.
        counters: Runtime counters (repairs, replans, listeners, ...).
        decisions: Every admission verdict, in event order.
        event_log: The deterministic structured log, in event order.
    """

    horizon: int
    budget: int
    trace_fingerprint: str
    program: BroadcastProgram
    catalog: Mapping[int, int]
    final_required: int
    final_valid: bool
    admission: Mapping[str, object]
    slo: Mapping[str, object]
    counters: Mapping[str, int]
    decisions: tuple[AdmissionDecision, ...]
    event_log: tuple[Mapping[str, object], ...]

    def as_dict(self) -> dict:
        """Manifest-ready summary (excludes the program grid and log)."""
        return {
            "horizon": self.horizon,
            "budget": self.budget,
            "trace_fingerprint": self.trace_fingerprint,
            "final_pages": len(self.catalog),
            "final_required": self.final_required,
            "final_valid": self.final_valid,
            "final_cycle_length": self.program.cycle_length,
            "admission": dict(self.admission),
            "slo": dict(self.slo),
            "counters": {k: int(v) for k, v in sorted(self.counters.items())},
        }

    def event_log_json(self) -> str:
        """The event log as canonical JSON (the determinism artifact)."""
        return json.dumps(
            list(self.event_log), indent=2, sort_keys=True
        )


class LiveBroadcastService:
    """Replay a mutation trace against a continuously repaired program.

    Args:
        initial: The catalog on air at ``t=0`` — a
            :class:`~repro.core.pages.ProblemInstance` or a plain
            ``page_id -> expected_time`` mapping.
        trace: The seeded mutation/listener timeline to replay.
        budget: Channel budget ``N_real``; defaults to the Theorem-3.1
            requirement of the initial catalog (a taut budget, so any
            load-increasing mutation exercises admission control).
        engine: Scheduling facade used for full re-plans; a private
            engine is created when omitted, so repeated runs start from
            identical cache and telemetry state.
        admission: When False, every mutation is applied regardless of
            the bound (the EXT11 control arm).
        queue_limit: Admission queue capacity.
        slo_window: Rolling window width for the miss-rate SLO.
        target_miss_rate: Rolling miss-rate threshold that triggers a
            corrective re-plan.
        replan_cooldown: Minimum slots between SLO-triggered re-plans.
        self_check: Validate the program against the live catalog after
            every applied mutation while the budget covers the bound
            (the property-test hook; raises on violation).
    """

    def __init__(
        self,
        initial: ProblemInstance | Mapping[int, int],
        trace: MutationTrace,
        *,
        budget: int | None = None,
        engine: "BroadcastEngine | None" = None,
        admission: bool = True,
        queue_limit: int = 16,
        slo_window: int = 64,
        target_miss_rate: float = 0.05,
        replan_cooldown: int = 8,
        self_check: bool = False,
    ) -> None:
        self.catalog = LiveCatalog(initial)
        self.trace = trace
        self.budget = (
            self.catalog.required_channels() if budget is None else budget
        )
        if self.budget < 1:
            raise SimulationError(
                f"budget must be >= 1, got {self.budget}"
            )
        if engine is None:
            # Imported lazily: repro.live must stay importable while the
            # engine package (which reaches repro.workload -> this
            # package) is itself still initialising.
            from repro.engine.facade import BroadcastEngine

            engine = BroadcastEngine()
        self.engine = engine
        self.admission = AdmissionController(
            self.budget, queue_limit=queue_limit, enabled=admission
        )
        self.slo = SloTracker(
            window=slo_window, target_miss_rate=target_miss_rate
        )
        if replan_cooldown < 0:
            raise SimulationError(
                f"replan_cooldown must be >= 0, got {replan_cooldown}"
            )
        self.replan_cooldown = replan_cooldown
        self.self_check = self_check

        self.program: BroadcastProgram | None = None
        self._replanner = FastReplanner()
        self.counters: dict[str, int] = {
            "mutations": 0,
            "incremental_repairs": 0,
            "full_replans": 0,
            "fastpath_replans": 0,
            "slo_replans": 0,
            "queue_drains": 0,
            "listeners": 0,
            "misses": 0,
        }
        self._decisions: list[AdmissionDecision] = []
        self._log: list[dict] = []
        self._loop: EventLoop | None = None
        self._last_slo_replan = float("-inf")

    # ------------------------------------------------------------------
    # Logging
    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        return self._loop.now if self._loop is not None else 0.0

    def _record(self, entry_type: str, **details: object) -> None:
        entry = {"t": self.now, "type": entry_type}
        entry.update(details)
        self._log.append(entry)

    def _count(self, name: str, amount: int = 1) -> None:
        self.counters[name] += amount
        self.engine.telemetry.incr(f"live.{name}", amount)

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------

    def _full_replan(self, reason: str) -> None:
        """Re-plan the catalog: SUSC at/above the bound, else PAMAD.

        In the PAMAD regime a patch of the running program is tried
        first (see :mod:`repro.live.replan`); it applies when at most
        one expected-time group moved since the last full plan and the
        recomputed frequencies and cycle prove the rest of the plan
        unchanged.  Ineligible mutations fall through to the engine.
        """
        required = self.catalog.required_channels()
        algorithm = "susc" if required <= self.budget else "pamad"
        if algorithm == "pamad":
            patched = self._replanner.try_patch(
                self.catalog.pages(), self.program
            )
            if patched is not None:
                self.program = patched
                self._count("fastpath_replans")
                self._record(
                    "replan",
                    reason=reason,
                    algorithm="pamad-patch",
                    channels=self.budget,
                    required=required,
                    cycle_length=patched.cycle_length,
                    pages=len(self.catalog),
                )
                return
        instance = self.catalog.to_instance()
        schedule = self.engine.schedule(
            instance, algorithm, channels=self.budget
        )
        self.program = schedule.program
        if algorithm == "pamad":
            self._replanner.remember(
                catalog=self.catalog.pages(),
                times=instance.expected_times,
                frequencies=tuple(schedule.meta["frequencies"]),
                cycle=schedule.program.cycle_length,
                budget=self.budget,
            )
        else:
            self._replanner.invalidate()
        self._count("full_replans")
        self._record(
            "replan",
            reason=reason,
            algorithm=algorithm,
            channels=self.budget,
            required=required,
            cycle_length=schedule.program.cycle_length,
            pages=len(self.catalog),
        )

    def _try_place(self, page_id: int, expected_time: int) -> bool:
        """Incremental insert: place ``page_id`` without moving any page."""
        program = self.program
        if program is None:
            return False
        cycle = program.cycle_length
        if expected_time >= cycle:
            for ref in program.free_cells():
                program.assign(ref.channel, ref.slot, page_id)
                return True
            return False
        if cycle % expected_time != 0:
            # Off-ladder deadline: no periodic column pattern exists.
            return False
        period = expected_time
        for offset in range(period):
            columns = range(offset, cycle, period)
            channels = []
            for slot in columns:
                channel = program.free_channel_in_column(slot)
                if channel is None:
                    break
                channels.append((channel, slot))
            else:
                for channel, slot in channels:
                    program.assign(channel, slot, page_id)
                return True
        return False

    def _unplace(self, page_id: int) -> int:
        """Clear every appearance of ``page_id``; returns cells freed."""
        program = self.program
        if program is None:
            return 0
        refs = program.appearances(page_id)
        for ref in refs:
            program.clear(ref.channel, ref.slot)
        return len(refs)

    def _self_check(self, context: str) -> None:
        if not self.self_check or self.program is None:
            return
        if self.catalog.required_channels() > self.budget:
            return  # degraded mode: validity is not promised
        report = validate_program(self.program, self.catalog.to_instance())
        if not report.ok:
            raise SimulationError(
                f"live program invalid after {context} at t={self.now}: "
                f"{report.errors[:3]}"
            )

    # ------------------------------------------------------------------
    # Mutation application
    # ------------------------------------------------------------------

    def _apply_insert(self, page_id: int, expected_time: int) -> None:
        if self.catalog.required_channels() > self.budget:
            # Degraded (admission off): PAMAD must re-weigh every page.
            self._full_replan(f"insert-degraded:{page_id}")
            return
        if self._try_place(page_id, expected_time):
            self._count("incremental_repairs")
            self._record(
                "repair", action="insert", page_id=page_id,
                expected_time=expected_time,
                appearances=self.program.broadcast_count(page_id),
            )
        else:
            self._full_replan(f"insert-no-slack:{page_id}")

    def _apply_remove(self, page_id: int) -> None:
        freed = self._unplace(page_id)
        self._count("incremental_repairs")
        self._record(
            "repair", action="remove", page_id=page_id, cells_freed=freed
        )

    def _apply_retune(self, page_id: int, expected_time: int) -> None:
        program = self.program
        if self.catalog.required_channels() > self.budget:
            self._full_replan(f"retune-degraded:{page_id}")
            return
        if program is not None and program.broadcast_count(page_id) > 0:
            slots = program.appearance_slots(page_id)
            gaps = program.cyclic_gaps(page_id)
            if max(gaps) <= expected_time and slots[0] < expected_time:
                self._count("incremental_repairs")
                self._record(
                    "repair", action="retune-keep", page_id=page_id,
                    expected_time=expected_time,
                )
                return
            self._unplace(page_id)
        if self._try_place(page_id, expected_time):
            self._count("incremental_repairs")
            self._record(
                "repair", action="retune-replace", page_id=page_id,
                expected_time=expected_time,
                appearances=program.broadcast_count(page_id),
            )
        else:
            self._full_replan(f"retune-no-slack:{page_id}")

    def _drain_queue(self) -> None:
        """Admit queued inserts that fit after a removal/relaxation."""
        admitted, decisions = self.admission.drain(self.catalog, self.now)
        for event, decision in zip(admitted, decisions):
            self._decisions.append(decision)
            self._record("admission", **decision.as_dict())
            self.catalog.insert(event.page_id, event.expected_time)
            self._count("queue_drains")
            self._apply_insert(event.page_id, event.expected_time)
            self._self_check(f"queue-drain:{event.page_id}")

    # ------------------------------------------------------------------
    # Event handlers
    # ------------------------------------------------------------------

    def _on_mutation(self, event: MutationEvent) -> None:
        self._count("mutations")
        if event.kind == "page_insert":
            decision = self.admission.decide_insert(self.catalog, event)
        elif event.kind == "page_remove":
            decision = self.admission.decide_remove(self.catalog, event)
        else:
            decision = self.admission.decide_retune(self.catalog, event)
        self._decisions.append(decision)
        self._record("admission", **decision.as_dict())
        if decision.verdict != "admitted":
            return
        if event.kind == "page_insert":
            self.catalog.insert(event.page_id, event.expected_time)
            self._apply_insert(event.page_id, event.expected_time)
        elif event.kind == "page_remove":
            self.catalog.remove(event.page_id)
            self._apply_remove(event.page_id)
        else:
            self.catalog.retune(event.page_id, event.expected_time)
            self._apply_retune(event.page_id, event.expected_time)
        self._self_check(f"{event.kind}:{event.page_id}")
        if event.kind in ("page_remove", "page_retune"):
            self._drain_queue()

    def _on_listener(self, event: MutationEvent) -> None:
        self._count("listeners")
        program = self.program
        if program is None or program.broadcast_count(event.page_id) == 0:
            wait: float | None = None
        else:
            wait = program.wait_time(
                event.page_id, event.time % program.cycle_length
            )
        observation = self.slo.observe(
            event.time, event.page_id, event.expected_time, wait
        )
        if observation.miss:
            self._count("misses")
        self._record(
            "listener",
            page_id=event.page_id,
            expected_time=event.expected_time,
            wait=wait,
            miss=observation.miss,
        )
        if (
            self.slo.breached()
            and self.now - self._last_slo_replan >= self.replan_cooldown
        ):
            self._last_slo_replan = self.now
            self._count("slo_replans")
            self._record(
                "slo_breach",
                rolling_miss_rate=round(self.slo.rolling_miss_rate, 6),
                target=self.slo.target_miss_rate,
            )
            self._full_replan("slo-breach")
            self.slo.reset_window()

    # ------------------------------------------------------------------
    # Run
    # ------------------------------------------------------------------

    def run(self) -> LiveReport:
        """Replay the whole trace; returns the structured report."""
        if self._loop is not None:
            raise SimulationError(
                "LiveBroadcastService.run() can only be called once; "
                "build a new service to replay again"
            )
        self._loop = EventLoop()
        self._full_replan("initial")
        self._self_check("initial")
        for event in self.trace:
            handler = (
                self._on_listener
                if event.kind == "listener"
                else self._on_mutation
            )
            self._loop.schedule_at(event.time, partial(handler, event))
        self._loop.run(until=float(self.trace.horizon))
        assert self.program is not None
        final_required = self.catalog.required_channels()
        final_valid = False
        if final_required <= self.budget:
            final_valid = validate_program(
                self.program, self.catalog.to_instance()
            ).ok
        return LiveReport(
            horizon=self.trace.horizon,
            budget=self.budget,
            trace_fingerprint=self.trace.fingerprint(),
            program=self.program,
            catalog=self.catalog.pages(),
            final_required=final_required,
            final_valid=final_valid,
            admission=self.admission.as_dict(),
            slo=self.slo.as_dict(),
            counters=dict(self.counters),
            decisions=tuple(self._decisions),
            event_log=tuple(self._log),
        )
