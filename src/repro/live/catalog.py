"""The live page catalog — a mutable view over the paper's frozen input.

Every scheduler in the library consumes an immutable
:class:`~repro.core.pages.ProblemInstance`.  The live runtime needs the
same structural guarantees (groups on a divisibility ladder, unique page
ids) over a catalog that changes while the system runs.
:class:`LiveCatalog` is that bridge: a ``page_id -> expected_time``
mapping with mutation primitives, an exact Theorem-3.1 load computation
(so admission control can judge a mutation *before* applying it), and
:meth:`to_instance` snapshots that feed the unchanged schedulers.

The catalog deliberately does not enforce the ladder on every mutation —
it enforces it when a snapshot is taken, which is the moment a scheduler
would actually rely on it.  Mutation generators draw expected times from
one ladder, so any subset of the live times keeps consecutive
divisibility automatically.
"""

from __future__ import annotations

import math
from typing import Mapping

from repro.core.errors import InvalidInstanceError
from repro.core.intmath import ceil_div
from repro.core.pages import Group, Page, ProblemInstance

__all__ = ["LiveCatalog"]


class LiveCatalog:
    """A mutable ``page_id -> expected_time`` catalog with exact load math."""

    def __init__(self, pages: ProblemInstance | Mapping[int, int]) -> None:
        if isinstance(pages, ProblemInstance):
            self._times: dict[int, int] = {
                page.page_id: page.expected_time for page in pages.pages()
            }
        else:
            self._times = {int(k): int(v) for k, v in pages.items()}
        if not self._times:
            raise InvalidInstanceError("catalog needs at least one page")
        for page_id, expected in self._times.items():
            if expected <= 0:
                raise InvalidInstanceError(
                    f"page {page_id}: expected_time must be positive, "
                    f"got {expected}"
                )

    # ------------------------------------------------------------------
    # Read access
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._times)

    def __contains__(self, page_id: object) -> bool:
        return page_id in self._times

    def expected_time(self, page_id: int) -> int:
        """The current deadline of ``page_id``."""
        try:
            return self._times[page_id]
        except KeyError:
            raise InvalidInstanceError(
                f"unknown page id {page_id}"
            ) from None

    def pages(self) -> dict[int, int]:
        """A snapshot copy of the ``page_id -> expected_time`` mapping."""
        return dict(self._times)

    def copy(self) -> "LiveCatalog":
        """An independent copy (admission control probes candidates on it)."""
        return LiveCatalog(self._times)

    # ------------------------------------------------------------------
    # Mutation primitives
    # ------------------------------------------------------------------

    def insert(self, page_id: int, expected_time: int) -> None:
        """Add a new page; rejects duplicates and non-positive deadlines."""
        if page_id in self._times:
            raise InvalidInstanceError(
                f"page {page_id} is already in the catalog"
            )
        if expected_time <= 0:
            raise InvalidInstanceError(
                f"expected_time must be positive, got {expected_time}"
            )
        self._times[page_id] = expected_time

    def remove(self, page_id: int) -> None:
        """Drop a page; the catalog must never become empty."""
        if page_id not in self._times:
            raise InvalidInstanceError(f"unknown page id {page_id}")
        if len(self._times) == 1:
            raise InvalidInstanceError(
                "cannot remove the last page of the catalog"
            )
        del self._times[page_id]

    def retune(self, page_id: int, expected_time: int) -> None:
        """Change a page's deadline in place."""
        if page_id not in self._times:
            raise InvalidInstanceError(f"unknown page id {page_id}")
        if expected_time <= 0:
            raise InvalidInstanceError(
                f"expected_time must be positive, got {expected_time}"
            )
        self._times[page_id] = expected_time

    # ------------------------------------------------------------------
    # Theorem-3.1 load
    # ------------------------------------------------------------------

    def required_channels(self) -> int:
        """Theorem 3.1's ``ceil(sum_i P_i / t_i)`` in exact arithmetic.

        Computed directly on the mapping (no instance construction), so
        admission control can probe candidate catalogs cheaply; matches
        :func:`repro.core.bounds.minimum_channels` on every snapshot.
        """
        common = math.lcm(*set(self._times.values()))
        numerator = sum(
            common // expected for expected in self._times.values()
        )
        return ceil_div(numerator, common)

    def channel_load(self) -> float:
        """The fractional demand ``sum_i P_i / t_i`` in channel units."""
        return sum(1.0 / expected for expected in self._times.values())

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------

    def to_instance(self) -> ProblemInstance:
        """An immutable snapshot for the schedulers.

        Pages sharing an expected time become one group; groups are
        numbered 1..h in ascending-deadline order with pages in page-id
        order, so equal catalogs produce fingerprint-equal instances
        (the engine's program cache keys on that).

        Raises:
            InvalidInstanceError: If the live expected times no longer
                form a divisibility ladder.
        """
        by_time: dict[int, list[int]] = {}
        for page_id, expected in self._times.items():
            by_time.setdefault(expected, []).append(page_id)
        groups = []
        for index, expected in enumerate(sorted(by_time), start=1):
            pages = tuple(
                Page(
                    page_id=page_id,
                    group_index=index,
                    expected_time=expected,
                )
                for page_id in sorted(by_time[expected])
            )
            groups.append(
                Group(index=index, expected_time=expected, pages=pages)
            )
        return ProblemInstance(groups=tuple(groups))

    def __repr__(self) -> str:
        times = sorted(set(self._times.values()))
        return (
            f"LiveCatalog(pages={len(self._times)}, times={times}, "
            f"load={self.channel_load():.3f})"
        )
