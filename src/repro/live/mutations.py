"""Mutation traces — seeded, replayable timelines of catalog churn.

The paper schedules a *frozen* page catalog.  A live dissemination
service does not get that luxury: pages are published and withdrawn
while clients are tuned in, and operators retune expected times (they
are client-facing deadlines — a service-level objective, not a constant).
A :class:`MutationTrace` captures one such timeline as an explicit,
ordered sequence of :class:`MutationEvent` items:

* ``page_insert`` — a new page joins the catalog at ``time`` with the
  given ``expected_time``;
* ``page_remove`` — the page leaves the catalog at ``time``;
* ``page_retune`` — the page's expected time changes to
  ``expected_time`` at ``time`` (tightening or relaxing its deadline);
* ``listener``    — a client tunes in at (fractional) ``time`` wanting
  ``page_id``; ``expected_time`` records the deadline the client was
  promised when the trace was generated, so deadline misses stay
  attributable even when the service later rejects or retunes the page.

Traces are value objects: the JSON round trip is exact, generators are
pure functions of their seed (see
:func:`repro.workload.mutations.generate_mutation_trace`), and the
content fingerprint names a trace in run manifests — the same contract
:class:`~repro.resilience.faultplan.FaultPlan` established for channel
churn, applied to the catalog dimension.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Mapping, Sequence

from repro.core.errors import SimulationError

__all__ = [
    "MUTATION_KINDS",
    "CATALOG_KINDS",
    "MutationEvent",
    "MutationTrace",
    "fingerprint_columns",
    "scripted_trace",
]

#: Kinds that alter the page catalog (processed at integer slot times).
CATALOG_KINDS = ("page_insert", "page_remove", "page_retune")

MUTATION_KINDS = CATALOG_KINDS + ("listener",)


def _event_sort_key(event: "MutationEvent") -> tuple:
    return (event.time, event.kind, event.page_id)


@dataclass(frozen=True, slots=True)
class MutationEvent:
    """One catalog mutation or listener arrival on the timeline.

    Attributes:
        time: When the event takes effect.  Catalog mutations happen at
            integer slot boundaries; listener arrivals may be fractional
            (clients do not arrive aligned to slots).
        kind: One of :data:`MUTATION_KINDS`.
        page_id: The page the event concerns.
        expected_time: The deadline ``t_i`` carried by the event —
            required for ``page_insert``/``page_retune`` (the new
            deadline) and ``listener`` (the deadline promised at
            generation time); must be omitted for ``page_remove``.
    """

    time: float
    kind: str
    page_id: int
    expected_time: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in MUTATION_KINDS:
            raise SimulationError(
                f"unknown mutation kind {self.kind!r}; choose from "
                f"{', '.join(MUTATION_KINDS)}"
            )
        if self.time < 0:
            raise SimulationError(
                f"mutation time must be >= 0, got {self.time}"
            )
        if self.page_id < 0:
            raise SimulationError(
                f"page_id must be >= 0, got {self.page_id}"
            )
        if self.kind in ("page_insert", "page_retune", "listener"):
            if self.expected_time is None or self.expected_time <= 0:
                raise SimulationError(
                    f"{self.kind} at t={self.time} needs a positive "
                    f"expected_time, got {self.expected_time}"
                )
        elif self.expected_time is not None:
            raise SimulationError(
                f"page_remove at t={self.time} must not carry an "
                "expected_time"
            )
        if self.kind in CATALOG_KINDS and self.time != int(self.time):
            raise SimulationError(
                f"catalog mutation {self.kind} must land on an integer "
                f"slot boundary, got t={self.time}"
            )

    def to_dict(self) -> dict:
        payload = {
            "time": self.time,
            "kind": self.kind,
            "page_id": self.page_id,
        }
        if self.expected_time is not None:
            payload["expected_time"] = self.expected_time
        return payload

    @classmethod
    def from_dict(cls, data: Mapping) -> "MutationEvent":
        expected = data.get("expected_time")
        return cls(
            time=float(data["time"]),
            kind=str(data["kind"]),
            page_id=int(data["page_id"]),
            expected_time=None if expected is None else int(expected),
        )


@dataclass(frozen=True)
class MutationTrace:
    """A replayable catalog-churn timeline.

    Events are stored sorted by ``(time, kind, page_id)``; construction
    validates kinds, the horizon, and uniqueness — the *semantic*
    consistency of the stream (inserting an existing page, removing an
    unknown one) is judged by the service replaying it, which records
    such events as rejected rather than crashing.

    Attributes:
        horizon: Timeline length in slots; every event happens at
            ``time < horizon``.
        events: The sorted events.
        meta: Free-form provenance (generator name, seed, rates) carried
            through serialisation so a saved trace is self-describing.
    """

    horizon: int
    events: tuple[MutationEvent, ...]
    meta: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.horizon < 1:
            raise SimulationError(
                f"trace horizon must be >= 1, got {self.horizon}"
            )
        ordered = tuple(sorted(self.events, key=_event_sort_key))
        object.__setattr__(self, "events", ordered)
        # Key-sorted so a generated trace and its JSON round trip embed
        # identically in downstream manifests.
        object.__setattr__(
            self, "meta", dict(sorted(dict(self.meta).items()))
        )
        seen: set[tuple] = set()
        for event in ordered:
            if event.time >= self.horizon:
                raise SimulationError(
                    f"event at time {event.time} is beyond the horizon "
                    f"{self.horizon}"
                )
            key = _event_sort_key(event)
            if key in seen:
                raise SimulationError(
                    f"duplicate event {event.kind} for page "
                    f"{event.page_id} at t={event.time}"
                )
            seen.add(key)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def __iter__(self) -> Iterator[MutationEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def mutations(self) -> tuple[MutationEvent, ...]:
        """The catalog-changing events (inserts, removes, retunes)."""
        return tuple(e for e in self.events if e.kind in CATALOG_KINDS)

    def listeners(self) -> tuple[MutationEvent, ...]:
        """The client-arrival events."""
        return tuple(e for e in self.events if e.kind == "listener")

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "horizon": self.horizon,
            "events": [event.to_dict() for event in self.events],
            "meta": dict(self.meta),
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "MutationTrace":
        return cls(
            horizon=int(data["horizon"]),
            events=tuple(
                MutationEvent.from_dict(item)
                for item in data.get("events", ())
            ),
            meta=dict(data.get("meta", {})),
        )

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "MutationTrace":
        return cls.from_dict(json.loads(text))

    def save(self, path: str | Path) -> Path:
        """Write the trace to ``path`` as JSON; returns the path."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(self.to_json() + "\n", encoding="utf-8")
        return target

    @classmethod
    def load(cls, path: str | Path) -> "MutationTrace":
        """Read a trace previously written by :meth:`save`."""
        return cls.from_json(Path(path).read_text(encoding="utf-8"))

    def columns(self) -> "tuple":
        """Columnar numpy view of the events, memoised on the trace.

        Returns ``(times, is_listener, page_ids, expected)`` — float64
        arrival/effect times, a listener-kind mask, int64 page ids and
        int64 promised deadlines (``-1`` where the event carries none).
        The batched replay engine slices these instead of re-reading
        half a million event objects per run; like :meth:`fingerprint`,
        the trace is frozen so one conversion pass serves every replay.
        """
        cached = getattr(self, "_columns", None)
        if cached is None:
            import numpy as np

            count = len(self.events)
            times = np.fromiter(
                (event.time for event in self.events), np.float64, count
            )
            is_listener = np.fromiter(
                (event.kind == "listener" for event in self.events),
                np.bool_,
                count,
            )
            page_ids = np.fromiter(
                (event.page_id for event in self.events), np.int64, count
            )
            expected = np.fromiter(
                (
                    -1 if event.expected_time is None else event.expected_time
                    for event in self.events
                ),
                np.int64,
                count,
            )
            cached = (times, is_listener, page_ids, expected)
            object.__setattr__(self, "_columns", cached)
        return cached

    def fingerprint(self) -> str:
        """Stable content digest, suitable for run manifests.

        Memoised: the trace is frozen, and serialising a million-event
        timeline per :meth:`LiveBroadcastService.run` would otherwise
        rival the replay itself.
        """
        cached = getattr(self, "_fingerprint", None)
        if cached is None:
            canonical = json.dumps(self.to_dict(), sort_keys=True)
            cached = hashlib.sha256(
                canonical.encode("utf-8")
            ).hexdigest()[:16]
            object.__setattr__(self, "_fingerprint", cached)
        return cached

    @classmethod
    def presorted(
        cls,
        horizon: int,
        events: Sequence["MutationEvent"],
        meta: Mapping[str, object] | None = None,
        *,
        columns: tuple | None = None,
        fingerprint: str | None = None,
    ) -> "MutationTrace":
        """Trusted constructor for events already sorted and validated.

        The federation router derives per-shard sub-traces from a parent
        trace that has already paid :meth:`__post_init__`'s sort and
        duplicate scan; re-validating a million routed listeners per
        shard would dominate the replay.  The caller *guarantees* the
        events are in ``(time, kind, page_id)`` order, unique, and
        inside the horizon — subsets and stable merges of a validated
        trace preserve all three.  ``columns`` pre-seeds the
        :meth:`columns` cache (same ``(times, is_listener, page_ids,
        expected)`` layout) and ``fingerprint`` pre-seeds
        :meth:`fingerprint`; both must describe exactly ``events``.
        """
        if horizon < 1:
            raise SimulationError(
                f"trace horizon must be >= 1, got {horizon}"
            )
        trace = object.__new__(cls)
        object.__setattr__(trace, "horizon", int(horizon))
        object.__setattr__(trace, "events", tuple(events))
        object.__setattr__(
            trace, "meta", dict(sorted(dict(meta or {}).items()))
        )
        if columns is not None:
            object.__setattr__(trace, "_columns", columns)
        if fingerprint is not None:
            object.__setattr__(trace, "_fingerprint", fingerprint)
        return trace


def fingerprint_columns(
    horizon: int,
    meta: Mapping[str, object],
    times,
    is_listener,
    page_ids,
    expected,
    catalog_events: Sequence[MutationEvent],
) -> str:
    """Content digest of a trace described by its columnar arrays.

    The arrays are the trace's :meth:`MutationTrace.columns` layout (in
    sorted event order); ``catalog_events`` are the non-listener events
    in the same sorted order, carrying the per-event kind the listener
    mask cannot (the mask only separates listeners from catalog
    mutations).  Together with the horizon and meta these determine the
    full event content, so the digest is a faithful fingerprint — but a
    *differently computed* one than :meth:`MutationTrace.fingerprint`
    (which canonicalises through JSON): the two must not be mixed for
    the same trace.  The federation router stamps every sub-trace with
    this digest via :meth:`MutationTrace.presorted`, on both the
    columnar and the sequential reference paths, so reports stay
    byte-identical across routers while skipping a JSON serialisation
    that would rival the shard replay itself.
    """
    digest = hashlib.sha256()
    digest.update(b"columns:v1\n")
    digest.update(str(int(horizon)).encode("utf-8"))
    digest.update(b"\n")
    digest.update(
        json.dumps(dict(meta), sort_keys=True).encode("utf-8")
    )
    digest.update(b"\n")
    import numpy as np

    digest.update(np.ascontiguousarray(times, dtype=np.float64).tobytes())
    digest.update(
        np.ascontiguousarray(is_listener, dtype=np.bool_).tobytes()
    )
    digest.update(np.ascontiguousarray(page_ids, dtype=np.int64).tobytes())
    digest.update(np.ascontiguousarray(expected, dtype=np.int64).tobytes())
    digest.update(
        json.dumps(
            [event.to_dict() for event in catalog_events], sort_keys=True
        ).encode("utf-8")
    )
    return digest.hexdigest()[:16]


def scripted_trace(
    horizon: int,
    events: Sequence[MutationEvent | tuple],
    meta: Mapping[str, object] | None = None,
) -> MutationTrace:
    """Build a trace from explicit events.

    Tuples are ``(time, kind, page_id)`` or
    ``(time, kind, page_id, expected_time)``.
    """
    normalised = tuple(
        event if isinstance(event, MutationEvent) else MutationEvent(*event)
        for event in events
    )
    return MutationTrace(
        horizon=horizon,
        events=normalised,
        meta=dict(meta or {"generator": "scripted"}),
    )
