"""Client energy model for selective tuning.

Converts the :class:`~repro.indexing.index.AccessResult` time split into
energy, using the standard two-state receiver model of the air-indexing
literature: an *active* (listening) power draw and a much smaller *doze*
draw.  The interesting engineering question the model answers: given a
receiver's active/doze ratio, which index replication factor ``m``
minimises energy per access — and what does it cost in latency?
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import InvalidInstanceError
from repro.indexing.index import AccessResult, IndexedProgram

__all__ = ["EnergyModel", "EnergyCost", "sweep_index_factor"]


@dataclass(frozen=True)
class EnergyModel:
    """Receiver power parameters (arbitrary energy units per slot).

    Attributes:
        active_power: Draw while listening/downloading (per slot).
        doze_power: Draw while dozing with a scheduled wake-up (per slot).
    """

    active_power: float = 1.0
    doze_power: float = 0.05

    def __post_init__(self) -> None:
        if self.active_power <= 0:
            raise InvalidInstanceError(
                f"active_power must be positive, got {self.active_power}"
            )
        if not 0 <= self.doze_power <= self.active_power:
            raise InvalidInstanceError(
                "doze_power must lie in [0, active_power], got "
                f"{self.doze_power}"
            )

    def energy(self, access: AccessResult) -> float:
        """Energy of one access under this model."""
        return (
            self.active_power * access.tuning_time
            + self.doze_power * access.doze_time
        )


@dataclass(frozen=True)
class EnergyCost:
    """One row of an index-factor sweep.

    Attributes:
        m: Index replication factor.
        access_time: Mean access latency (slots).
        tuning_time: Mean active-listening time (slots).
        energy: Mean energy per access under the supplied model.
        overhead: Fraction of airtime spent on index segments.
    """

    m: int
    access_time: float
    tuning_time: float
    energy: float
    overhead: float


def sweep_index_factor(
    program,
    page_ids,
    factors,
    model: EnergyModel = EnergyModel(),
    index_slots: int = 1,
    samples_per_slot: int = 2,
) -> list[EnergyCost]:
    """Measure the latency/energy trade-off across index factors.

    Args:
        program: The data :class:`~repro.core.program.BroadcastProgram`.
        page_ids: Pages to average the access cost over.
        factors: The ``m`` values to evaluate.
        model: Receiver power parameters.
        index_slots: Size of one index segment.
        samples_per_slot: Quadrature density for arrival averaging.

    Returns:
        One :class:`EnergyCost` per factor, in input order.
    """
    page_ids = list(page_ids)
    if not page_ids:
        raise InvalidInstanceError("no pages to average over")
    rows: list[EnergyCost] = []
    for m in factors:
        indexed = IndexedProgram(program, m=m, index_slots=index_slots)
        access = tuning = energy = 0.0
        for page_id in page_ids:
            costs = indexed.average_costs(
                page_id, samples_per_slot=samples_per_slot
            )
            access += costs.access_time
            tuning += costs.tuning_time
            energy += model.energy(costs)
        count = len(page_ids)
        rows.append(
            EnergyCost(
                m=m,
                access_time=access / count,
                tuning_time=tuning / count,
                energy=energy / count,
                overhead=indexed.overhead_fraction,
            )
        )
    return rows
