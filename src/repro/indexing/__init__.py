"""Air indexing: (1, m) selective tuning over broadcast programs."""

from repro.indexing.index import (
    INDEX_SLOT,
    AccessResult,
    IndexedProgram,
    build_indexed_program,
)
from repro.indexing.tuning import EnergyCost, EnergyModel, sweep_index_factor

__all__ = [
    "INDEX_SLOT",
    "AccessResult",
    "EnergyCost",
    "EnergyModel",
    "IndexedProgram",
    "build_indexed_program",
    "sweep_index_factor",
]
