"""(1, m) air indexing over broadcast programs.

Battery-powered clients cannot afford to listen continuously while
waiting for their page: the classic remedy (Imielinski & Viswanathan,
cited as [13] by the paper, and the hybrid-index work [10]) interleaves
**index segments** with the data so a client can read one index, learn
when its page will air, and *doze* until then.

This module implements the canonical **(1, m) scheme** on top of any
:class:`~repro.core.program.BroadcastProgram`:

* the data cycle is cut into ``m`` equal buckets per channel;
* an index segment (occupying ``index_slots`` slots) is prepended to each
  bucket; the index describes the *entire* cycle, so one read suffices;
* a client tunes in, listens until the next index segment starts, reads
  it, sleeps, and wakes exactly for its page's next data slot.

Two costs move in opposite directions as ``m`` grows — the classic
trade-off this substrate lets the benchmarks reproduce:

* **access time** (arrival -> data received) grows, because every index
  copy dilutes the cycle;
* **tuning time** (slots spent actively listening) shrinks, because the
  next index is at most ``cycle/m`` away.

Index slots are materialised in the expanded program with reserved
negative ids (:data:`INDEX_SLOT`), so the expanded grid remains an
ordinary :class:`BroadcastProgram` and all existing tooling (rendering,
serialisation, occupancy) keeps working.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import InvalidInstanceError
from repro.core.intmath import ceil_div
from repro.core.program import BroadcastProgram

__all__ = ["INDEX_SLOT", "AccessResult", "IndexedProgram", "build_indexed_program"]

INDEX_SLOT = -1
"""Reserved page id marking an index segment slot in the expanded grid."""


@dataclass(frozen=True)
class AccessResult:
    """The cost of one indexed access.

    Attributes:
        access_time: Slots from arrival until the page download completes
            (the latency a user perceives).
        tuning_time: Slots the receiver was actively listening — the
            energy cost: initial probe + index segment + the data slot.
        doze_time: Slots spent in doze mode (access - tuning).
    """

    access_time: float
    tuning_time: float
    doze_time: float


def _slot_of_next(slots: list[int], arrival: float, cycle: int) -> int:
    """First slot in ``slots`` (sorted) at or after ``arrival``, cyclically.

    Returns an *absolute* slot offset measured from cycle start, possibly
    beyond ``cycle`` when the next occurrence wraps.
    """
    for slot in slots:
        if slot >= arrival:
            return slot
    return slots[0] + cycle


class IndexedProgram:
    """A (1, m)-indexed view of a broadcast program.

    Args:
        program: The underlying data program (any scheduler's output).
        m: Index replication factor — index segments per channel per cycle.
        index_slots: Slots one index segment occupies (directory size in
            slot units; 1 models a compact index, larger values a page
            directory that spans several packets).
        pointer_packets: The literature's standard refinement — every data
            packet carries the offset of the next index segment, so the
            client's initial probe costs one active slot and it dozes
            until the index.  With ``False`` the client must listen
            continuously until the index arrives (no pointers on air).
    """

    def __init__(
        self,
        program: BroadcastProgram,
        m: int = 1,
        index_slots: int = 1,
        pointer_packets: bool = True,
    ) -> None:
        if m < 1:
            raise InvalidInstanceError(f"m must be >= 1, got {m}")
        if index_slots < 1:
            raise InvalidInstanceError(
                f"index_slots must be >= 1, got {index_slots}"
            )
        if m * index_slots > 4 * program.cycle_length:
            raise InvalidInstanceError(
                f"index overhead (m={m} x {index_slots} slots) dwarfs the "
                f"data cycle of {program.cycle_length}"
            )
        self._data = program
        self._m = m
        self._index_slots = index_slots
        self._pointer_packets = pointer_packets
        # Bucket boundaries in *data* slots: bucket k covers data slots
        # [ceil(k*D/m), ceil((k+1)*D/m)).  With m > D the starts collide;
        # more than one index per data slot is meaningless, so the
        # effective m is clamped to the distinct starts.
        data_cycle = program.cycle_length
        self._bucket_starts = sorted(
            {ceil_div(data_cycle * k, m) for k in range(m)}
        )
        self._m = len(self._bucket_starts)
        self._expanded = self._build_expanded()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _expanded_slot(self, data_slot: int) -> int:
        """Map a data-slot index to its slot in the expanded cycle."""
        # Index segments inserted before each bucket start at/below slot.
        inserted = sum(
            1 for start in self._bucket_starts if start <= data_slot
        )
        return data_slot + inserted * self._index_slots

    def _build_expanded(self) -> BroadcastProgram:
        data = self._data
        expanded_cycle = (
            data.cycle_length + self._m * self._index_slots
        )
        expanded = BroadcastProgram(
            num_channels=data.num_channels, cycle_length=expanded_cycle
        )
        # Index segments (on every channel, aligned across channels so a
        # client can read the index wherever it tunes).
        for start in self._bucket_starts:
            base = self._expanded_slot(start) - self._index_slots
            for offset in range(self._index_slots):
                for channel in range(data.num_channels):
                    expanded.assign(channel, base + offset, INDEX_SLOT)
        # Data slots, shifted by the indexes inserted before them.
        for channel in range(data.num_channels):
            for slot in range(data.cycle_length):
                page = data.get(channel, slot)
                if page is not None:
                    expanded.assign(
                        channel, self._expanded_slot(slot), page
                    )
        return expanded

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def data_program(self) -> BroadcastProgram:
        """The underlying (index-free) data program."""
        return self._data

    @property
    def expanded_program(self) -> BroadcastProgram:
        """The materialised grid including index segments."""
        return self._expanded

    @property
    def m(self) -> int:
        """Index replication factor."""
        return self._m

    @property
    def cycle_length(self) -> int:
        """Expanded cycle length (data + index overhead)."""
        return self._expanded.cycle_length

    @property
    def overhead_fraction(self) -> float:
        """Share of airtime spent on index segments."""
        return (self._m * self._index_slots) / self.cycle_length

    def index_starts(self) -> list[int]:
        """Expanded-slot offsets where each index segment begins."""
        return [
            self._expanded_slot(start) - self._index_slots
            for start in self._bucket_starts
        ]

    # ------------------------------------------------------------------
    # Client access model
    # ------------------------------------------------------------------

    def access(self, page_id: int, arrival: float) -> AccessResult:
        """Cost of one selective-tuning access.

        Protocol: listen from ``arrival`` until the next index segment
        begins (active), read the whole segment (active), doze, wake for
        the page's next data slot after the index read completes, download
        it (active).

        Args:
            page_id: The requested page (must appear in the data program).
            arrival: Arrival time in expanded-cycle units.

        Returns:
            An :class:`AccessResult`; ``tuning_time <= access_time`` and
            ``tuning + doze == access`` always hold.
        """
        cycle = self.cycle_length
        arrival %= cycle
        index_starts = sorted(self.index_starts())
        next_index = _slot_of_next(index_starts, arrival, cycle)
        index_done = next_index + self._index_slots

        data_slots = self._expanded.appearance_slots(page_id)
        if not data_slots:
            raise InvalidInstanceError(
                f"page {page_id} does not appear in the program"
            )
        page_slot = _slot_of_next(data_slots, index_done % cycle, cycle)
        # Re-express relative to arrival (may wrap one extra cycle).
        absolute_page_slot = (
            page_slot
            if page_slot >= index_done % cycle
            else page_slot + cycle
        )
        wait_after_index = absolute_page_slot - (index_done % cycle)
        access_time = (index_done - arrival) + wait_after_index + 1
        pre_index_wait = next_index - arrival
        if self._pointer_packets:
            # One probe slot to read a pointer packet, then doze until
            # the index (the probe cannot exceed the actual wait).
            probe = min(1.0, pre_index_wait)
        else:
            probe = pre_index_wait
        tuning_time = (
            probe
            + self._index_slots  # reading the index
            + 1  # downloading the page
        )
        doze_time = access_time - tuning_time
        return AccessResult(
            access_time=access_time,
            tuning_time=tuning_time,
            doze_time=doze_time,
        )

    def average_costs(
        self, page_id: int, samples_per_slot: int = 4
    ) -> AccessResult:
        """Average access/tuning/doze over arrivals across one cycle.

        Deterministic quadrature (``samples_per_slot`` evenly spaced
        arrivals per slot) rather than Monte Carlo, so tests get exact
        reproducibility.
        """
        cycle = self.cycle_length
        total_access = total_tuning = total_doze = 0.0
        count = cycle * samples_per_slot
        for k in range(count):
            arrival = k / samples_per_slot
            result = self.access(page_id, arrival)
            total_access += result.access_time
            total_tuning += result.tuning_time
            total_doze += result.doze_time
        return AccessResult(
            access_time=total_access / count,
            tuning_time=total_tuning / count,
            doze_time=total_doze / count,
        )


def build_indexed_program(
    program: BroadcastProgram, m: int = 1, index_slots: int = 1
) -> IndexedProgram:
    """Convenience constructor for :class:`IndexedProgram`."""
    return IndexedProgram(program, m=m, index_slots=index_slots)
