"""Expected-time rearrangement (Section 2).

Clients attach arbitrary expected times to pages; scheduling against
arbitrary deadlines is intractable, so the paper rounds every expected time
*down* onto a geometric ladder ``base * ratio^k``.  The paper's example:
expected times ``(2, 3, 4, 6, 9)`` become ``(2, 2, 4, 4, 8)`` with
``base = 2`` and ``ratio = 2`` — each new time is the largest ladder value
not exceeding the original, so the client's requirement still holds while
the scheduling problem collapses to ``h`` groups.

Two costs matter when choosing the ladder:

* **waste** — ``sum(t - t')``: how much earlier than necessary pages are
  promised (slots spent broadcasting sooner than clients need);
* **load** — ``sum(1/t' - 1/t)``: the extra *channel bandwidth* the rounding
  demands, which via Theorem 3.1 is what actually inflates the minimum
  channel count.

:func:`rearrange` applies a fixed ladder; :func:`best_base` searches all
feasible bases for the one minimising either cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Mapping, Sequence

from repro.core.errors import InvalidInstanceError
from repro.core.pages import ProblemInstance, instance_from_counts

__all__ = [
    "ladder_value",
    "Rearrangement",
    "rearrange",
    "best_base",
    "instance_from_expected_times",
]


def ladder_value(time: float, base: int, ratio: int) -> int:
    """Largest ladder value ``base * ratio^k`` (k >= 0) not exceeding ``time``.

    Args:
        time: The original expected time; must be >= ``base``.
        base: The smallest ladder rung ``t_1``.
        ratio: The ladder ratio ``c`` (positive integer; 1 collapses the
            ladder to the single value ``base``).

    Raises:
        InvalidInstanceError: If ``time < base`` (the ladder has no rung at
            or below the requirement) or parameters are non-positive.
    """
    if base <= 0 or ratio <= 0:
        raise InvalidInstanceError(
            f"ladder base and ratio must be positive, got base={base}, "
            f"ratio={ratio}"
        )
    if time < base:
        raise InvalidInstanceError(
            f"expected time {time} is below the ladder base {base}; "
            "no rearranged deadline can satisfy it"
        )
    if ratio == 1:
        return base
    rung = base
    while rung * ratio <= time:
        rung *= ratio
    return rung


@dataclass(frozen=True)
class Rearrangement:
    """The result of rounding expected times onto a geometric ladder.

    Attributes:
        base: Ladder base ``t_1``.
        ratio: Ladder ratio ``c``.
        assigned: Per input key, the rearranged (rounded-down) expected time.
        original: Per input key, the original expected time.
    """

    base: int
    ratio: int
    assigned: Mapping[Hashable, int]
    original: Mapping[Hashable, float]

    @property
    def group_times(self) -> tuple[int, ...]:
        """The occupied ladder rungs ``t_1 < t_2 < ... < t_h``.

        Only rungs actually used by some page are groups; the ladder ratio
        between *consecutive occupied* rungs may therefore be a power of
        ``ratio``.  :func:`instance_from_expected_times` densifies this back
        to a strict ``c``-ladder when building a
        :class:`~repro.core.pages.ProblemInstance`.
        """
        return tuple(sorted(set(self.assigned.values())))

    @property
    def waste(self) -> float:
        """Total slack introduced by rounding: ``sum(t - t')``."""
        return sum(
            self.original[key] - value for key, value in self.assigned.items()
        )

    @property
    def load_increase(self) -> float:
        """Extra per-slot bandwidth demanded by rounding: ``sum(1/t' - 1/t)``.

        By Theorem 3.1 the minimum channel count is
        ``ceil(sum 1/t')`` summed over pages, so this is the rounding's true
        channel cost.
        """
        return sum(
            1.0 / value - 1.0 / self.original[key]
            for key, value in self.assigned.items()
        )

    def satisfies_requirements(self) -> bool:
        """True iff every assigned time is <= its original expected time."""
        return all(
            value <= self.original[key]
            for key, value in self.assigned.items()
        )


def rearrange(
    expected_times: Mapping[Hashable, float] | Sequence[float],
    ratio: int = 2,
    base: int | None = None,
) -> Rearrangement:
    """Round expected times down onto a ``base * ratio^k`` ladder.

    Args:
        expected_times: Either a mapping ``key -> expected time`` or a plain
            sequence (keys then default to positional indices).
        ratio: Ladder ratio ``c`` (default 2, the paper's running choice).
        base: Ladder base; defaults to ``floor(min(expected_times))`` — the
            largest base guaranteed to sit at or below every requirement.

    Returns:
        A :class:`Rearrangement`; ``assigned[k] <= original[k]`` always
        holds (clients never wait longer than they asked).
    """
    if not isinstance(expected_times, Mapping):
        expected_times = {i: t for i, t in enumerate(expected_times)}
    if not expected_times:
        raise InvalidInstanceError("no expected times to rearrange")
    for key, time in expected_times.items():
        if time <= 0:
            raise InvalidInstanceError(
                f"expected time for {key!r} must be positive, got {time}"
            )
    if base is None:
        base = int(min(expected_times.values()))
    assigned = {
        key: ladder_value(time, base=base, ratio=ratio)
        for key, time in expected_times.items()
    }
    return Rearrangement(
        base=base,
        ratio=ratio,
        assigned=assigned,
        original=dict(expected_times),
    )


def best_base(
    expected_times: Mapping[Hashable, float] | Sequence[float],
    ratio: int = 2,
    objective: str = "load",
) -> Rearrangement:
    """Search every feasible ladder base for the cheapest rearrangement.

    Feasible bases are ``1 .. floor(min(expected_times))``; with integer
    slot-granularity times that search is exact and small.

    Args:
        expected_times: As for :func:`rearrange`.
        ratio: Ladder ratio ``c``.
        objective: ``"load"`` minimises the channel-bandwidth increase
            (the cost Theorem 3.1 cares about); ``"waste"`` minimises total
            deadline slack.

    Returns:
        The :class:`Rearrangement` with the minimum objective; ties break
        toward the larger base (coarser ladder, fewer groups).
    """
    if objective not in ("load", "waste"):
        raise InvalidInstanceError(
            f"objective must be 'load' or 'waste', got {objective!r}"
        )
    if not isinstance(expected_times, Mapping):
        expected_times = {i: t for i, t in enumerate(expected_times)}
    if not expected_times:
        raise InvalidInstanceError("no expected times to rearrange")
    max_base = int(min(expected_times.values()))
    if max_base < 1:
        raise InvalidInstanceError(
            "expected times below one slot cannot be scheduled"
        )
    best: Rearrangement | None = None
    best_cost = float("inf")
    for base in range(1, max_base + 1):
        candidate = rearrange(expected_times, ratio=ratio, base=base)
        cost = (
            candidate.load_increase
            if objective == "load"
            else candidate.waste
        )
        if cost <= best_cost:
            best, best_cost = candidate, cost
    assert best is not None  # the loop ran at least once
    return best


def instance_from_expected_times(
    expected_times: Mapping[Hashable, float] | Sequence[float],
    ratio: int = 2,
    base: int | None = None,
) -> tuple[ProblemInstance, dict[Hashable, int]]:
    """Build a schedulable :class:`ProblemInstance` from raw expected times.

    Applies :func:`rearrange` and groups pages by their (occupied) ladder
    rung.  Rungs are powers of ``ratio`` times the base, so consecutive
    occupied rungs always divide evenly — exactly what
    :class:`ProblemInstance` requires — even when intermediate rungs happen
    to be empty.

    Returns:
        ``(instance, page_id_map)`` where ``page_id_map`` maps each input
        key to the page id used inside the instance.
    """
    result = rearrange(expected_times, ratio=ratio, base=base)
    rungs = list(result.group_times)
    ordered_keys = sorted(
        result.assigned, key=lambda key: (result.assigned[key], str(key))
    )
    sizes = [
        sum(1 for key in ordered_keys if result.assigned[key] == rung)
        for rung in rungs
    ]
    instance = instance_from_counts(sizes, rungs)
    page_id_map = {
        key: page_id for page_id, key in enumerate(ordered_keys, start=1)
    }
    return instance, page_id_map
