"""SUSC — Scheduling Under Sufficient Channels (Section 3.2).

When the system provides at least the Theorem-3.1 minimum number of
channels, SUSC greedily builds a *valid* broadcast program on a major cycle
of ``t_h`` slots:

1. take pages in ascending expected-time order (Algorithm 1, step 1);
2. for each page ``p_{i,j}``, scan channel by channel for a free slot in
   the first ``t_i`` slots of that channel (GetAvailableSlot, Algorithm 2);
3. place the page there and at every ``t_i``-th slot after it in the same
   channel, ``ceil(t_h / t_i)`` times in total (Algorithm 1, step 4).

Theorem 3.2 guarantees step 2 always succeeds given sufficient channels,
and Theorem 3.3 that the periodic slots of step 3 are free.  Both theorems
are enforced as runtime invariants here: a violation raises
:class:`~repro.core.errors.SchedulingError`, so a bound bug could never
silently produce an invalid schedule.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.bounds import minimum_channels
from repro.core.errors import InsufficientChannelsError, SchedulingError
from repro.core.intmath import ceil_div
from repro.core.pages import Page, ProblemInstance
from repro.core.program import BroadcastProgram, SlotRef
from repro.core.validate import assert_valid_program

__all__ = ["SuscSchedule", "schedule_susc"]


@dataclass(frozen=True)
class SuscSchedule:
    """The output of SUSC: a valid program plus placement metadata.

    Attributes:
        program: The generated valid broadcast program (cycle ``t_h``).
        instance: The scheduled problem instance.
        num_channels: Channels used (the Theorem-3.1 minimum by default).
        first_slots: For each page id, the slot of its first appearance —
            the ``(x, y)`` returned by GetAvailableSlot, kept for the
            Theorem 3.2/3.3 property tests.
    """

    program: BroadcastProgram
    instance: ProblemInstance
    num_channels: int
    first_slots: dict[int, SlotRef]

    @property
    def average_delay(self) -> float:
        """Analytic AvgD of the program — zero for any valid SUSC output.

        Computed (not assumed) so SUSC satisfies the same
        :class:`~repro.engine.registry.ScheduleResult` protocol as every
        other scheduler.
        """
        from repro.core.delay import program_average_delay

        return program_average_delay(self.program, self.instance)

    @property
    def meta(self) -> dict:
        """Scheduler diagnostics (the ScheduleResult protocol's ``meta``)."""
        return {
            "scheduler": "susc",
            "num_channels": self.num_channels,
            "cycle_length": self.program.cycle_length,
            "occupancy": self.program.occupancy(),
        }


def _get_available_slot(
    program: BroadcastProgram, page: Page
) -> SlotRef:
    """GetAvailableSlot (Algorithm 2): first free slot within the window.

    Scans channels in order; within each channel scans slots
    ``0 .. t_i - 1``.  Theorem 3.2 says this always succeeds when the
    channel count meets the Theorem 3.1 bound, so failure is reported as a
    hard error rather than a soft "not found".
    """
    for channel in range(program.num_channels):
        slot = program.free_slot_in_channel_window(
            channel, page.expected_time
        )
        if slot is not None:
            return SlotRef(slot=slot, channel=channel)
    raise SchedulingError(
        f"GetAvailableSlot found no free slot for {page} in the first "
        f"{page.expected_time} slots of any of {program.num_channels} "
        "channels — Theorem 3.2 violated (channel count below the bound, "
        "or a placement bug)"
    )


def _get_available_slot_cursored(
    program: BroadcastProgram, page: Page, cursors: list[int]
) -> SlotRef:
    """Cursor-accelerated GetAvailableSlot (the paper's §3.2 optimisation).

    The paper notes the slot search "need not be always starting from the
    first slot of every channel".  Because SUSC fills each channel's
    prefix monotonically (pages are placed at the first free slot and
    their periodic copies only land at or after it), the first free slot
    of a channel never moves backwards — so a per-channel cursor finds it
    in amortised O(1) instead of rescanning the prefix for every page.
    Returns exactly what the naive scan would.
    """
    for channel in range(program.num_channels):
        # Advance the cursor over cells filled since the last visit.
        while (
            cursors[channel] < program.cycle_length
            and not program.is_free(channel, cursors[channel])
        ):
            cursors[channel] += 1
        if cursors[channel] < page.expected_time:
            return SlotRef(slot=cursors[channel], channel=channel)
    raise SchedulingError(
        f"GetAvailableSlot found no free slot for {page} in the first "
        f"{page.expected_time} slots of any of {program.num_channels} "
        "channels — Theorem 3.2 violated (channel count below the bound, "
        "or a placement bug)"
    )


def schedule_susc(
    instance: ProblemInstance,
    num_channels: int | None = None,
    validate: bool = True,
    optimized: bool = False,
    fast: bool = True,
) -> SuscSchedule:
    """Run SUSC and return a valid broadcast program.

    Args:
        instance: The groups to schedule (geometric expected-time ladder).
        num_channels: Channels to use.  Defaults to the Theorem-3.1 minimum;
            passing fewer raises :class:`InsufficientChannelsError` (use
            PAMAD for that regime), passing more simply leaves extra slack.
        validate: Re-check the two Section-3.1 conditions on the finished
            program (cheap; on by default as a safety net).
        optimized: Use the paper's §3.2 cursor optimisation for
            GetAvailableSlot.  Produces the *identical* program (property
            tests pin this); only the search cost changes.
        fast: Run the whole fill on the raw-array kernel of
            :mod:`repro.core.fastpath` (default) — again identical output,
            again pinned by property tests.  ``fast=False`` selects
            between the two literal reference probes via ``optimized``.

    Returns:
        A :class:`SuscSchedule` whose program satisfies every expected time.

    Raises:
        InsufficientChannelsError: If ``num_channels`` is below the bound.
        SchedulingError: If a placement invariant fails (indicates a bug —
            Theorems 3.2/3.3 exclude this under sufficient channels).
    """
    required = minimum_channels(instance)
    if num_channels is None:
        num_channels = required
    if num_channels < required:
        raise InsufficientChannelsError(
            provided=num_channels, required=required
        )

    if fast:
        from repro.core.fastpath import susc_fill_fast

        fast_program, fast_first = susc_fill_fast(instance, num_channels)
        if validate:
            assert_valid_program(fast_program, instance)
        return SuscSchedule(
            program=fast_program,
            instance=instance,
            num_channels=num_channels,
            first_slots=fast_first,
        )

    cycle = instance.max_expected_time
    program = BroadcastProgram(
        num_channels=num_channels, cycle_length=cycle
    )
    first_slots: dict[int, SlotRef] = {}
    cursors = [0] * num_channels

    for page in instance.pages_sorted_for_susc():
        if optimized:
            start = _get_available_slot_cursored(program, page, cursors)
        else:
            start = _get_available_slot(program, page)
        first_slots[page.page_id] = start
        repetitions = ceil_div(cycle, page.expected_time)  # ceil(t_h / t_i)
        for k in range(repetitions):
            slot = start.slot + k * page.expected_time
            if slot >= cycle:
                break
            if not program.is_free(start.channel, slot):
                raise SchedulingError(
                    f"Theorem 3.3 violated: periodic slot "
                    f"(ch={start.channel}, slot={slot}) for {page} is "
                    "already occupied"
                )
            program.assign(start.channel, slot, page.page_id)

    if validate:
        assert_valid_program(program, instance)

    return SuscSchedule(
        program=program,
        instance=instance,
        num_channels=num_channels,
        first_slots=first_slots,
    )
