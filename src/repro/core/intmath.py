"""Exact integer arithmetic helpers shared across the core.

The paper's formulas are full of ceilings over integer ratios — cycle
lengths (Equation 8), the Theorem-3.1 channel bound, Algorithm 3's loop
bound, SUSC's repetition counts.  Computing them as ``math.ceil(a / b)``
round-trips through a float, which silently loses precision once the
numerator passes 2**53: ``math.ceil((2**53 + 1) / 2)`` returns
``2**52`` instead of ``2**52 + 1``.  Every integer ceiling in the
codebase goes through :func:`ceil_div` instead, which stays in exact
integer arithmetic at any magnitude.
"""

from __future__ import annotations

__all__ = ["ceil_div"]


def ceil_div(numerator: int, denominator: int) -> int:
    """Exact ``ceil(numerator / denominator)`` for integers.

    Uses the floor-division identity ``ceil(a/b) == -((-a) // b)``, so the
    result is exact for arbitrarily large operands (no float round-trip).

    Args:
        numerator: Any integer.
        denominator: A non-zero integer (callers in this codebase always
            pass positive denominators).

    Raises:
        ZeroDivisionError: If ``denominator`` is zero.
    """
    return -(-numerator // denominator)
