"""Data model for broadcast pages, groups and problem instances.

The paper (Section 2) works with ``n`` data pages partitioned into ``h``
groups ``G_1 .. G_h``.  Every page of group ``G_i`` carries the same
*expected time* ``t_i`` — the longest a client is willing to wait for that
page — and the expected times form a geometric ladder ``t_{i+1} = c * t_i``
for a positive integer ratio ``c``.  ``P_i`` denotes the number of pages in
group ``G_i``.

This module provides:

* :class:`Page` — one broadcast page ``p_{i,j}`` with its expected time.
* :class:`Group` — one group ``G_i`` (pages sharing an expected time).
* :class:`ProblemInstance` — the full scheduling input, with validation of
  the paper's structural assumptions and convenience accessors used by
  every scheduler in the library.

All three types are immutable value objects: schedulers never mutate their
input, which keeps experiment sweeps trivially re-runnable.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterator, Mapping, Sequence

from repro.core.errors import InvalidInstanceError

__all__ = ["Page", "Group", "ProblemInstance", "instance_from_counts"]


@dataclass(frozen=True, slots=True)
class Page:
    """A single broadcast data page ``p_{i,j}``.

    Attributes:
        page_id: Globally unique identifier of the page (the paper numbers
            pages 1..n; any hashable integer id works here).
        group_index: 1-based index ``i`` of the group the page belongs to.
        expected_time: The group's expected time ``t_i`` in slot units.
    """

    page_id: int
    group_index: int
    expected_time: int

    def __post_init__(self) -> None:
        if self.expected_time <= 0:
            raise InvalidInstanceError(
                f"page {self.page_id}: expected_time must be positive, "
                f"got {self.expected_time}"
            )
        if self.group_index <= 0:
            raise InvalidInstanceError(
                f"page {self.page_id}: group_index must be 1-based positive, "
                f"got {self.group_index}"
            )

    def __str__(self) -> str:
        return f"p[{self.group_index},{self.page_id}](t={self.expected_time})"


@dataclass(frozen=True, slots=True)
class Group:
    """A group ``G_i`` of pages sharing the expected time ``t_i``.

    Attributes:
        index: 1-based group index ``i``.
        expected_time: The shared expected time ``t_i``.
        pages: The pages of the group, in stable order.  The paper notes the
            intra-group order is unimportant (Algorithm 1, step 1).
    """

    index: int
    expected_time: int
    pages: tuple[Page, ...]

    def __post_init__(self) -> None:
        if not self.pages:
            raise InvalidInstanceError(f"group {self.index} has no pages")
        for page in self.pages:
            if page.expected_time != self.expected_time:
                raise InvalidInstanceError(
                    f"group {self.index}: page {page.page_id} has expected "
                    f"time {page.expected_time}, group has {self.expected_time}"
                )
            if page.group_index != self.index:
                raise InvalidInstanceError(
                    f"group {self.index}: page {page.page_id} claims group "
                    f"{page.group_index}"
                )

    @property
    def size(self) -> int:
        """``P_i`` — the number of pages in this group."""
        return len(self.pages)

    def __len__(self) -> int:
        return len(self.pages)

    def __iter__(self) -> Iterator[Page]:
        return iter(self.pages)


def _check_divisibility_ladder(times: Sequence[int]) -> None:
    """Every consecutive expected-time pair must divide evenly.

    The paper assumes the stricter uniform ladder ``t_{i+1} = c * t_i``;
    every algorithm in this library only needs ``t_i | t_{i+1}`` (which the
    uniform ladder implies), and the weaker requirement keeps instances
    derived by dropping whole groups (see :mod:`repro.baselines.drop`)
    schedulable.  SUSC's Theorems 3.2/3.3 rely on this divisibility.
    """
    for a, b in zip(times, times[1:]):
        if b % a != 0:
            raise InvalidInstanceError(
                f"expected times {list(times)} are not a divisibility "
                f"ladder: {b} is not an integer multiple of {a}"
            )


@dataclass(frozen=True)
class ProblemInstance:
    """A complete scheduling input: groups on a geometric expected-time ladder.

    This is the object every scheduler in the library consumes.  It enforces
    the assumptions of Section 2:

    * group expected times are strictly increasing,
    * ``t_{i+1} = c * t_i`` for one positive integer ``c`` shared by all
      consecutive pairs,
    * page identifiers are unique across the instance.

    Attributes:
        groups: The groups ``G_1 .. G_h`` ordered by ascending expected time.
    """

    groups: tuple[Group, ...]
    _pages_by_id: Mapping[int, Page] = field(
        init=False, repr=False, compare=False, default_factory=dict
    )

    def __post_init__(self) -> None:
        if not self.groups:
            raise InvalidInstanceError("instance has no groups")
        times = [group.expected_time for group in self.groups]
        if any(b <= a for a, b in zip(times, times[1:])):
            raise InvalidInstanceError(
                f"group expected times must be strictly increasing, got {times}"
            )
        _check_divisibility_ladder(times)
        for position, group in enumerate(self.groups, start=1):
            if group.index != position:
                raise InvalidInstanceError(
                    f"group at position {position} has index {group.index}; "
                    "groups must be numbered 1..h in ladder order"
                )
        by_id: dict[int, Page] = {}
        for page in self.pages():
            if page.page_id in by_id:
                raise InvalidInstanceError(
                    f"duplicate page id {page.page_id}"
                )
            by_id[page.page_id] = page
        object.__setattr__(self, "_pages_by_id", by_id)

    # ------------------------------------------------------------------
    # Paper-notation accessors
    # ------------------------------------------------------------------

    @property
    def h(self) -> int:
        """Number of groups ``h``."""
        return len(self.groups)

    @property
    def n(self) -> int:
        """Total number of pages ``n``."""
        return sum(group.size for group in self.groups)

    @property
    def is_uniform_ladder(self) -> bool:
        """True iff ``t_{i+1} = c * t_i`` for one shared ratio ``c``.

        The paper's Section-2 assumption.  Instances produced by dropping
        whole groups may be non-uniform (ratios that are powers of ``c``);
        every scheduler here still handles them.
        """
        times = [g.expected_time for g in self.groups]
        if len(times) < 2:
            return True
        ratio = times[1] // times[0]
        return all(b == ratio * a for a, b in zip(times, times[1:]))

    @property
    def ratio(self) -> int:
        """The uniform ladder ratio ``c`` with ``t_{i+1} = c * t_i``.

        Raises:
            InvalidInstanceError: If the instance is a divisibility ladder
                but not a uniform one (check :attr:`is_uniform_ladder`).
        """
        if not self.is_uniform_ladder:
            raise InvalidInstanceError(
                "instance has no uniform ladder ratio; expected times are "
                f"{[g.expected_time for g in self.groups]}"
            )
        times = [g.expected_time for g in self.groups]
        return times[1] // times[0] if len(times) > 1 else 1

    @property
    def expected_times(self) -> tuple[int, ...]:
        """``(t_1, .., t_h)``."""
        return tuple(group.expected_time for group in self.groups)

    @property
    def group_sizes(self) -> tuple[int, ...]:
        """``(P_1, .., P_h)``."""
        return tuple(group.size for group in self.groups)

    @property
    def max_expected_time(self) -> int:
        """``t_h`` — the largest expected time, SUSC's major-cycle length."""
        return self.groups[-1].expected_time

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------

    def group(self, index: int) -> Group:
        """Return group ``G_index`` (1-based, following the paper)."""
        if not 1 <= index <= self.h:
            raise InvalidInstanceError(
                f"group index {index} out of range 1..{self.h}"
            )
        return self.groups[index - 1]

    def page(self, page_id: int) -> Page:
        """Return the page with the given id."""
        try:
            return self._pages_by_id[page_id]
        except KeyError:
            raise InvalidInstanceError(f"unknown page id {page_id}") from None

    def pages(self) -> Iterator[Page]:
        """Iterate over all pages in ascending-expected-time group order."""
        return itertools.chain.from_iterable(self.groups)

    def pages_sorted_for_susc(self) -> list[Page]:
        """All pages in the order Algorithm 1 consumes them.

        Ascending expected time; intra-group order as given (the paper notes
        it is unimportant).
        """
        return list(self.pages())

    def __str__(self) -> str:
        parts = ", ".join(
            f"G{g.index}(P={g.size}, t={g.expected_time})" for g in self.groups
        )
        return f"ProblemInstance(h={self.h}, n={self.n}: {parts})"


def instance_from_counts(
    sizes: Sequence[int],
    expected_times: Sequence[int],
    first_page_id: int = 1,
) -> ProblemInstance:
    """Build a :class:`ProblemInstance` from ``P_i`` counts and ``t_i`` times.

    This is the most common construction path: the paper's experiments are
    all specified as ``(P_1..P_h, t_1..t_h)`` pairs (e.g. Figure 2's
    ``P = (3, 5, 3)``, ``t = (2, 4, 8)``).  Page ids are assigned
    sequentially starting at ``first_page_id``, mirroring the paper's
    page-1..page-11 numbering.

    Args:
        sizes: Number of pages per group, ``P_1 .. P_h``.
        expected_times: Expected time per group, ``t_1 .. t_h``; must form a
            geometric ladder with integer ratio.
        first_page_id: Id of the first generated page.

    Returns:
        The validated problem instance.

    Raises:
        InvalidInstanceError: If the inputs are inconsistent.
    """
    if len(sizes) != len(expected_times):
        raise InvalidInstanceError(
            f"got {len(sizes)} group sizes but {len(expected_times)} "
            "expected times"
        )
    if not sizes:
        raise InvalidInstanceError("at least one group is required")
    groups: list[Group] = []
    next_id = first_page_id
    for index, (size, time) in enumerate(
        zip(sizes, expected_times), start=1
    ):
        if size <= 0:
            raise InvalidInstanceError(
                f"group {index}: size must be positive, got {size}"
            )
        pages = tuple(
            Page(page_id=next_id + j, group_index=index, expected_time=time)
            for j in range(size)
        )
        next_id += size
        groups.append(Group(index=index, expected_time=time, pages=pages))
    return ProblemInstance(groups=tuple(groups))
