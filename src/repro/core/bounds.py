"""Theorem 3.1 — the minimum number of channels for a valid program.

A *valid broadcast program* (Section 3.1) must broadcast every page of
group ``G_i`` at least once in any window of ``t_i`` consecutive slots.
Each page of ``G_i`` therefore consumes at least ``1/t_i`` of one channel's
bandwidth, and the whole instance needs

    N  =  ceil( sum_i  P_i / t_i )

channels.  (The paper's Equation (1) typesets per-group ceilings, but its
own worked example computes ``ceil(2/2 + 3/4) = 2`` — the ceiling of the
*sum* — and SUSC demonstrably succeeds with that count, so this module
implements the example's reading.  ``per_group_ceiling_bound`` exposes the
coarser per-group-ceiling value for comparison.)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.intmath import ceil_div
from repro.core.pages import ProblemInstance

__all__ = [
    "channel_load",
    "minimum_channels",
    "per_group_ceiling_bound",
    "ChannelPlan",
    "plan_channels",
]


def channel_load(instance: ProblemInstance) -> float:
    """The exact bandwidth demand ``sum_i P_i / t_i`` in channel units.

    This is the quantity whose ceiling is Theorem 3.1's bound; it is also
    the natural x-axis normaliser for the insufficient-channel experiments
    (the paper's "1/5 of the minimally sufficient channels" observation).
    """
    return sum(
        group.size / group.expected_time for group in instance.groups
    )


def minimum_channels(instance: ProblemInstance) -> int:
    """Theorem 3.1: minimum channels for a valid program.

    ``N = ceil(sum_i P_i / t_i)``, computed in exact rational arithmetic so
    float rounding can never return ``N ± 1`` (the group times are powers of
    a common ratio, so a single common denominator of ``t_h`` suffices).
    """
    t_h = instance.max_expected_time
    numerator = sum(
        group.size * (t_h // group.expected_time)
        for group in instance.groups
    )
    return ceil_div(numerator, t_h)


def per_group_ceiling_bound(instance: ProblemInstance) -> int:
    """The coarser ``sum_i ceil(P_i / t_i)`` reading of Equation (1).

    Always >= :func:`minimum_channels`; exposed so the two readings can be
    compared empirically (see ``benchmarks/bench_susc_scaling.py``).
    """
    return sum(
        ceil_div(group.size, group.expected_time)
        for group in instance.groups
    )


@dataclass(frozen=True)
class ChannelPlan:
    """Capacity analysis of an instance against an available channel count.

    Attributes:
        required: Theorem 3.1 minimum channel count ``N``.
        available: Channels the system actually provides (``N_real``).
        load: Exact fractional demand ``sum P_i / t_i``.
        sufficient: Whether SUSC applies (``available >= required``).
        utilisation: ``load / available`` — above 1.0 means delay is
            unavoidable and PAMAD's frequency reduction kicks in.
        slack_slots: Free slots per ``t_h`` window when sufficient
            (``available * t_h - sum P_i * t_h / t_i``), else 0.
    """

    required: int
    available: int
    load: float
    sufficient: bool
    utilisation: float
    slack_slots: int


def plan_channels(instance: ProblemInstance, available: int) -> ChannelPlan:
    """Compare an instance's demand to an available channel budget.

    This is the decision point of the whole system: ``sufficient`` routes
    to SUSC (zero delay), otherwise to PAMAD (minimum average delay).
    """
    required = minimum_channels(instance)
    load = channel_load(instance)
    t_h = instance.max_expected_time
    demand_slots = sum(
        group.size * (t_h // group.expected_time)
        for group in instance.groups
    )
    sufficient = available >= required
    slack = available * t_h - demand_slots if sufficient else 0
    return ChannelPlan(
        required=required,
        available=available,
        load=load,
        sufficient=sufficient,
        utilisation=load / available if available > 0 else float("inf"),
        slack_slots=slack,
    )
