"""Compute-backend selection for the placement and delay kernels.

The array kernels in :mod:`repro.core.fastpath` and
:mod:`repro.core.delay` have an optional numba-compiled variant
(:mod:`repro.core._numba_kernels`).  This module owns the switch:

* ``"python"`` — the numpy reference kernels (always available);
* ``"numba"`` — the ``@njit``-compiled kernels (requires numba);
* ``"auto"`` — numba when importable, numpy otherwise.

The active backend is resolved once per process from the
``REPRO_AIR_BACKEND`` environment variable (overridable at runtime with
:func:`set_backend`, which sweeps/policies use via
:attr:`~repro.engine.executor.ExecutionPolicy.compute_backend`).  numba
is an *optional* dependency: every code path falls back to the numpy
kernels cleanly when it is absent, and the equality tests in
:mod:`tests.test_fastpath` pin both backends to byte-identical outputs.
"""

from __future__ import annotations

import os

from repro.core.errors import ReproError

__all__ = [
    "COMPILED_BACKENDS",
    "COMPUTE_BACKENDS",
    "numba_available",
    "resolve_backend",
    "active_backend",
    "set_backend",
]

#: Backends a kernel call can actually run on.
COMPILED_BACKENDS = ("python", "numba")

#: Values accepted by policies / the environment switch.
COMPUTE_BACKENDS = ("auto",) + COMPILED_BACKENDS

_NUMBA_AVAILABLE: bool | None = None
_ACTIVE: str | None = None


def numba_available() -> bool:
    """True when numba imports (probed once, cached for the process)."""
    global _NUMBA_AVAILABLE
    if _NUMBA_AVAILABLE is None:
        try:
            import numba  # noqa: F401
        except Exception:  # pragma: no cover - import guard
            _NUMBA_AVAILABLE = False
        else:
            _NUMBA_AVAILABLE = True
    return _NUMBA_AVAILABLE


def resolve_backend(requested: str = "auto") -> str:
    """Map a requested backend to the one that will actually run.

    ``"auto"`` resolves to ``"numba"`` when numba is importable and
    ``"python"`` otherwise; explicit requests are validated.  Asking for
    ``"numba"`` without numba installed raises — silent degradation on
    an explicit request would make benchmark numbers lie.
    """
    if requested not in COMPUTE_BACKENDS:
        raise ReproError(
            f"unknown compute backend {requested!r}; choose from "
            f"{', '.join(COMPUTE_BACKENDS)}"
        )
    if requested == "auto":
        return "numba" if numba_available() else "python"
    if requested == "numba" and not numba_available():
        raise ReproError(
            "compute backend 'numba' requested but numba is not "
            "installed; install numba or use 'auto'/'python'"
        )
    return requested


def active_backend() -> str:
    """The backend kernels dispatch on (``"python"`` or ``"numba"``).

    Resolved once per process from ``REPRO_AIR_BACKEND`` (default
    ``"auto"``); :func:`set_backend` overrides it afterwards.
    """
    global _ACTIVE
    if _ACTIVE is None:
        _ACTIVE = resolve_backend(
            os.environ.get("REPRO_AIR_BACKEND", "auto")
        )
    return _ACTIVE


def set_backend(backend: str) -> str:
    """Switch the process-wide active backend; returns the resolved name."""
    global _ACTIVE
    _ACTIVE = resolve_backend(backend)
    return _ACTIVE
