"""numba ``@njit`` kernels for the placement and delay hot paths.

Importing this module requires numba; callers go through
:mod:`repro.core.backend` (``active_backend()``) and only land here when
numba resolved as the active backend.  Each kernel is a *direct loop
transcription of the reference algorithm* — not of the vectorised numpy
kernel — so byte-identity with the reference scans holds by
construction; :mod:`tests.test_fastpath` and :mod:`tests.test_delay`
parametrise their equality harnesses over both backends to pin it.

Kernels return status codes instead of raising (numba exceptions cannot
carry the repo's formatted messages); the Python wrappers in
:mod:`repro.core.fastpath` and :mod:`repro.core.delay` map the codes
back to the reference error messages.
"""

from __future__ import annotations

import numpy as np
from numba import njit

__all__ = [
    "place_by_frequency_kernel",
    "place_sequential_kernel",
    "susc_fill_kernel",
    "group_delay_rows_kernel",
    "normalized_group_delay_rows_kernel",
]


@njit(cache=True)
def place_by_frequency_kernel(
    grid, fill, page_ids, page_freqs, cycle, num_channels
):  # pragma: no cover - exercised only on the numba CI leg
    """Algorithm 4 placement; returns ``(misses, failed_page_pos, k)``.

    ``failed_page_pos`` is ``-1`` on success, else the position (into
    ``page_ids``) of the copy that found no free slot anywhere.
    """
    misses = 0
    for p in range(page_ids.shape[0]):
        s_i = page_freqs[p]
        for k in range(s_i):
            window_start = -(-cycle * k // s_i)
            window_end = -(-cycle * (k + 1) // s_i)
            if window_end > cycle:
                window_end = cycle
            column = -1
            for c in range(window_start, window_end):
                if fill[c] < num_channels:
                    column = c
                    break
            if column < 0:
                # Window full: cyclic fallback scan from window_start.
                misses += 1
                for c in range(window_start, cycle):
                    if fill[c] < num_channels:
                        column = c
                        break
                if column < 0:
                    for c in range(0, window_start):
                        if fill[c] < num_channels:
                            column = c
                            break
                if column < 0:
                    return misses, p, k
            grid[fill[column], column] = page_ids[p]
            fill[column] += 1
    return misses, -1, -1


@njit(cache=True)
def place_sequential_kernel(
    grid, fill, page_ids, page_freqs, cycle, num_channels
):  # pragma: no cover - exercised only on the numba CI leg
    """Sequential (ABL3) placement; returns the failed page pos or -1."""
    cursor = 0
    for p in range(page_ids.shape[0]):
        for _ in range(page_freqs[p]):
            column = -1
            for c in range(cursor, cycle):
                if fill[c] < num_channels:
                    column = c
                    break
            if column < 0:
                cursor = 0
                for c in range(cycle):
                    if fill[c] < num_channels:
                        column = c
                        break
                if column < 0:
                    return p
            else:
                cursor = column
            grid[fill[column], column] = page_ids[p]
            fill[column] += 1
    return -1


@njit(cache=True)
def susc_fill_kernel(
    grid, page_ids, windows, first_slots, cycle, num_channels
):  # pragma: no cover - exercised only on the numba CI leg
    """Algorithm 1/2 fill; returns ``(status, page_pos, channel, slot)``.

    Status 0 = placed everything; 1 = no free slot in any channel's
    window (Theorem 3.2); 2 = a periodic copy landed on an occupied
    slot (Theorem 3.3, with the offending channel/slot).
    ``first_slots[p] = (slot, channel)`` records each page's anchor.
    """
    for p in range(page_ids.shape[0]):
        window = windows[p]
        placed = False
        for channel in range(num_channels):
            start = -1
            for s in range(window):
                if grid[channel, s] == -1:
                    start = s
                    break
            if start < 0:
                continue
            s = start + window
            while s < cycle:
                if grid[channel, s] != -1:
                    return 2, p, channel, s
                s += window
            s = start
            while s < cycle:
                grid[channel, s] = page_ids[p]
                s += window
            first_slots[p, 0] = start
            first_slots[p, 1] = channel
            placed = True
            break
        if not placed:
            return 1, p, -1, -1
    return 0, -1, -1, -1


@njit(cache=True)
def group_delay_rows_kernel(
    rows, sizes, times, num_channels
):  # pragma: no cover - exercised only on the numba CI leg
    """Equation (2) objective per frequency row, scalar-exact.

    Operation-for-operation :func:`repro.core.delay.paper_group_delay`:
    int64 slot totals, exact ceil via ``-(-slots // N)``, every division
    an int64/int64 true division (correctly rounded, as the scalar's
    ``int / int``), and the per-group terms summed in group order.
    """
    out = np.empty(rows.shape[0], dtype=np.float64)
    for r in range(rows.shape[0]):
        slots = np.int64(0)
        for i in range(rows.shape[1]):
            slots += rows[r, i] * sizes[i]
        cycle = -(-slots // num_channels)
        total = 0.0
        for i in range(rows.shape[1]):
            s_i = rows[r, i]
            weight = (s_i * sizes[i]) / slots
            spacing_real = slots / (num_channels * s_i)
            spacing_cycle = cycle / s_i
            a = spacing_real - times[i]
            if a < 0.0:
                a = 0.0
            b = (spacing_cycle - times[i]) / 2.0
            if b < 0.0:
                b = 0.0
            total = total + weight * (a * b)
        out[r] = total
    return out


@njit(cache=True)
def normalized_group_delay_rows_kernel(
    rows, sizes, times, num_channels
):  # pragma: no cover - exercised only on the numba CI leg
    """Normalized (Section 4.1) objective per row, scalar-exact."""
    out = np.empty(rows.shape[0], dtype=np.float64)
    for r in range(rows.shape[0]):
        slots = np.int64(0)
        for i in range(rows.shape[1]):
            slots += rows[r, i] * sizes[i]
        cycle = -(-slots // num_channels)
        total = 0.0
        for i in range(rows.shape[1]):
            s_i = rows[r, i]
            weight = (s_i * sizes[i]) / slots
            gap = cycle / s_i
            excess = gap - times[i]
            if excess > 0.0:
                total = total + weight * (excess * excess) / (2.0 * gap)
        out[r] = total
    return out
