"""PAMAD broadcast-frequency derivation (Section 4.3, Algorithm 3).

With insufficient channels a valid program is impossible, so PAMAD reduces
how often pages are broadcast and spreads the resulting delay evenly.  The
search space of per-group frequencies is ``r^n``-large, so the paper
derives frequencies *stage by stage*:

* Stage 1 is trivial — within a ``t_1`` horizon, broadcasting ``G_1`` once
  suffices (``S_1 = 1`` so far).
* Stage ``i`` (horizon ``t_i``) broadcasts the whole stage-``(i-1)`` content
  ``r_{i-1}`` times plus ``G_i`` once, and picks the ``r_{i-1}`` minimising
  the stage's average group delay ``D'_i`` (the literal Equation-2 form —
  see :mod:`repro.core.delay`).
* After stage ``h``: ``S_i = prod(r_i .. r_{h-1})`` and ``S_h = 1``.

Every group is broadcast at least once per major cycle (the paper's lower
bound restriction), so no page ever starves.

The same staged family (frequency vectors expressible as suffix products of
an ``r`` vector) is what the OPT baseline searches jointly; the helpers for
stage evaluation and the ``r`` upper bound live here so both share one
implementation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache
from typing import Sequence

import numpy as np

from repro.core.delay import (
    normalized_group_delay,
    normalized_group_delay_batch,
    paper_group_delay,
    paper_group_delay_batch,
)
from repro.core.errors import SearchSpaceError
from repro.core.intmath import ceil_div
from repro.core.pages import ProblemInstance

__all__ = [
    "FrequencyAssignment",
    "stage_frequencies",
    "stage_delay",
    "r_upper_bound",
    "frequencies_from_r",
    "pamad_frequencies",
    "pamad_frequencies_for",
    "sufficient_channel_frequencies",
]


@dataclass(frozen=True)
class FrequencyAssignment:
    """Per-group broadcast frequencies plus the derivation trace.

    Attributes:
        frequencies: Final ``(S_1, ..., S_h)``.
        r_values: The staged multipliers ``(r_1, ..., r_{h-1})`` (empty for
            ``h = 1``); ``S_i = prod(r_i..r_{h-1})``.
        num_channels: ``N_real`` the derivation targeted.
        stage_delays: ``D'_i`` achieved at each stage ``i = 2..h`` (empty
            for ``h = 1``); useful for tracing the progressive search.
        predicted_delay: The final-stage paper-model delay ``D'_h`` of the
            chosen frequencies (0 when the frequencies fully satisfy all
            expected times).
    """

    frequencies: tuple[int, ...]
    r_values: tuple[int, ...]
    num_channels: int
    stage_delays: tuple[float, ...]
    predicted_delay: float

    def slots_for(self, sizes: Sequence[int]) -> int:
        """``F = sum S_i P_i`` — content slots of one major cycle."""
        return sum(s * p for s, p in zip(self.frequencies, sizes))

    def cycle_length(self, sizes: Sequence[int]) -> int:
        """Equation (8): ``t_major = ceil(F / N_real)``."""
        return ceil_div(self.slots_for(sizes), self.num_channels)


def frequencies_from_r(r_values: Sequence[int], h: int) -> tuple[int, ...]:
    """Expand staged multipliers into final frequencies.

    ``S_i = prod_{j=i}^{h-1} r_j`` for ``i < h`` and ``S_h = 1``.
    """
    if len(r_values) != h - 1:
        raise SearchSpaceError(
            f"need {h - 1} r-values for h={h} groups, got {len(r_values)}"
        )
    frequencies = [1] * h
    product = 1
    for i in range(h - 2, -1, -1):
        product *= r_values[i]
        frequencies[i] = product
    return tuple(frequencies)


def stage_frequencies(
    r_values: Sequence[int], stage: int
) -> tuple[int, ...]:
    """Frequencies *within* stage ``i`` (groups ``1..stage``).

    At stage ``i`` the content of stage ``i-1`` repeats ``r_{i-1}`` times
    and ``G_i`` appears once, so group ``j``'s stage frequency is
    ``prod_{k=j}^{i-1} r_k`` (and 1 for ``j = i``).
    """
    if len(r_values) < stage - 1:
        raise SearchSpaceError(
            f"stage {stage} needs {stage - 1} r-values, got {len(r_values)}"
        )
    return frequencies_from_r(list(r_values[: stage - 1]), stage)


def stage_delay(
    r_values: Sequence[int],
    stage: int,
    sizes: Sequence[int],
    times: Sequence[int],
    num_channels: int,
    objective=paper_group_delay,
) -> float:
    """``D'_stage`` — the paper's staged average group delay.

    Evaluates the objective (Equation (2) literal form by default) over
    groups ``1..stage`` with the stage's own cycle length
    ``ceil(F_stage / N_real)`` (Equations 4/6).  The ABL2 ablation passes
    :func:`repro.core.delay.normalized_group_delay` instead.
    """
    frequencies = stage_frequencies(r_values, stage)
    return objective(
        frequencies,
        sizes[:stage],
        times[:stage],
        num_channels,
    )


def r_upper_bound(
    r_values: Sequence[int],
    stage: int,
    sizes: Sequence[int],
    times: Sequence[int],
    num_channels: int,
) -> int:
    """Algorithm 3's loop bound for ``r_{stage-1}``.

    ``ceil((N_real * t_i - P_i) / F_{i-1})`` where ``F_{i-1}`` is the slot
    count of one repetition of the stage-``(i-1)`` content: repeating the
    previous content more often than fills the ``t_i`` horizon cannot
    reduce anyone's delay, it only inflates the cycle.  Clamped to at least
    1 so the search space is never empty.
    """
    previous = stage_frequencies(r_values, stage - 1)
    f_prev = sum(s * p for s, p in zip(previous, sizes[: stage - 1]))
    capacity = num_channels * times[stage - 1] - sizes[stage - 1]
    if capacity <= 0:
        return 1
    return max(1, ceil_div(capacity, f_prev))


def pamad_frequencies(
    instance: ProblemInstance,
    num_channels: int,
    objective=paper_group_delay,
) -> FrequencyAssignment:
    """Algorithm 3: derive ``(S_1..S_h)`` by progressive stage search.

    At each stage the candidate ``r`` minimising the stage delay is
    committed (ties break toward the *smallest* ``r`` — same delay for less
    bandwidth, which also matches the worked example's choice of stopping
    at the first zero-delay multiplier).

    Args:
        instance: The problem instance (any channel count is accepted; with
            sufficient channels the search naturally returns frequencies
            with zero predicted delay).
        num_channels: ``N_real`` — channels actually available.
        objective: Stage objective; defaults to the paper-literal
            Equation (2) (the ABL2 ablation passes the normalised variant).

    Returns:
        The chosen :class:`FrequencyAssignment`.
    """
    return pamad_frequencies_for(
        instance.group_sizes,
        instance.expected_times,
        num_channels,
        objective=objective,
    )


#: Scalar stage objectives with a bit-identical batch kernel.  The
#: staged search evaluates candidate blocks through these instead of
#: looping the scalar objective (see :mod:`repro.core.delay`).
_BATCH_OBJECTIVES = {
    paper_group_delay: paper_group_delay_batch,
    normalized_group_delay: normalized_group_delay_batch,
}


def _scan_stage_candidates(
    r_values: list[int],
    stage: int,
    sizes: Sequence[int],
    times: Sequence[int],
    num_channels: int,
    bound: int,
    objective,
) -> tuple[int, float]:
    """Algorithm 3's candidate scan for one stage, batched when possible.

    Reproduces the reference scan exactly: candidates ``1..bound`` in
    order, accept on ``delay < best - 1e-12``, stop at the first
    zero-delay incumbent ("larger multipliers need not be considered").
    Known objectives evaluate through their bit-identical batch kernel
    in geometrically growing blocks, so the zero-delay early exit keeps
    its economics while large stages stop paying a per-candidate Python
    objective call; unknown objectives use the scalar loop.
    """
    best_r = 1
    best_delay = math.inf
    batch = _BATCH_OBJECTIVES.get(objective)
    if batch is None or bound < 16:
        for candidate in range(1, bound + 1):
            delay = stage_delay(
                [*r_values, candidate],
                stage,
                sizes,
                times,
                num_channels,
                objective=objective,
            )
            if delay < best_delay - 1e-12:
                best_r, best_delay = candidate, delay
            if best_delay == 0.0:
                break
        return best_r, best_delay

    # Candidate c's stage frequencies are the stage-(i-1) frequencies
    # scaled by c, with the new group at 1 — so the whole block is one
    # outer product.
    base = np.asarray(
        stage_frequencies(r_values, stage - 1), dtype=np.int64
    )
    stage_sizes = sizes[:stage]
    stage_times = times[:stage]
    lo = 1
    block = 32
    while lo <= bound:
        hi = min(bound, lo + block - 1)
        cands = np.arange(lo, hi + 1, dtype=np.int64)
        rows = np.empty((cands.size, stage), dtype=np.int64)
        rows[:, : stage - 1] = cands[:, None] * base
        rows[:, stage - 1] = 1
        delays = batch(rows, stage_sizes, stage_times, num_channels)
        for candidate, delay in zip(range(lo, hi + 1), delays.tolist()):
            if delay < best_delay - 1e-12:
                best_r, best_delay = candidate, delay
            if best_delay == 0.0:
                return best_r, best_delay
        lo = hi + 1
        block *= 4
    return best_r, best_delay


def pamad_frequencies_for(
    sizes: Sequence[int],
    times: Sequence[int],
    num_channels: int,
    objective=paper_group_delay,
) -> FrequencyAssignment:
    """Algorithm 3 on raw ``(P_i, t_i)`` vectors, no instance required.

    The staged search only reads group sizes and expected times, so
    callers that already hold those (the live re-plan fast path probes
    candidate catalogs without building a
    :class:`~repro.core.pages.ProblemInstance`) can skip the instance
    construction.  :func:`pamad_frequencies` delegates here.

    Derivations under the default objective are memoised on
    ``(sizes, times, num_channels)`` — the result is a frozen
    dataclass, so sharing one instance across callers is safe.  The
    live re-plan fast path leans on this: a catalog shape seen before
    re-plans without re-running the staged search.
    """
    if num_channels <= 0:
        raise SearchSpaceError(
            f"num_channels must be positive, got {num_channels}"
        )
    if len(sizes) != len(times):
        raise SearchSpaceError(
            f"got {len(sizes)} sizes for {len(times)} expected times"
        )
    if objective is paper_group_delay:
        return _pamad_frequencies_cached(
            tuple(sizes), tuple(times), num_channels
        )
    return _pamad_frequencies_impl(
        tuple(sizes), tuple(times), num_channels, objective
    )


@lru_cache(maxsize=4096)
def _pamad_frequencies_cached(
    sizes: tuple[int, ...],
    times: tuple[int, ...],
    num_channels: int,
) -> FrequencyAssignment:
    return _pamad_frequencies_impl(
        sizes, times, num_channels, paper_group_delay
    )


def _pamad_frequencies_impl(
    sizes: tuple[int, ...],
    times: tuple[int, ...],
    num_channels: int,
    objective,
) -> FrequencyAssignment:
    h = len(sizes)

    r_values: list[int] = []
    stage_delays: list[float] = []
    for stage in range(2, h + 1):
        bound = r_upper_bound(
            r_values, stage, sizes, times, num_channels
        )
        best_r, best_delay = _scan_stage_candidates(
            r_values, stage, sizes, times, num_channels, bound, objective
        )
        r_values.append(best_r)
        stage_delays.append(best_delay)

    frequencies = frequencies_from_r(r_values, h)
    predicted = objective(
        frequencies, sizes, times, num_channels
    )
    return FrequencyAssignment(
        frequencies=frequencies,
        r_values=tuple(r_values),
        num_channels=num_channels,
        stage_delays=tuple(stage_delays),
        predicted_delay=predicted,
    )


def sufficient_channel_frequencies(
    instance: ProblemInstance, num_channels: int
) -> FrequencyAssignment:
    """The frequencies a *valid* program uses: ``S_i = t_h / t_i``.

    This is what SUSC implicitly broadcasts per ``t_h`` cycle, and what the
    m-PB baseline keeps even when channels are insufficient (stretching the
    cycle instead of thinning the frequencies).
    """
    t_h = instance.max_expected_time
    frequencies = tuple(
        ceil_div(t_h, group.expected_time) for group in instance.groups
    )
    predicted = paper_group_delay(
        frequencies,
        instance.group_sizes,
        instance.expected_times,
        num_channels,
    )
    return FrequencyAssignment(
        frequencies=frequencies,
        r_values=tuple(
            frequencies[i] // frequencies[i + 1]
            for i in range(instance.h - 1)
        ),
        num_channels=num_channels,
        stage_delays=(),
        predicted_delay=predicted,
    )
