"""Exception hierarchy for the broadcast-scheduling library.

Every error raised by :mod:`repro` derives from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the individual failure modes the paper's
algorithms can hit (invalid problem instances, insufficient channels for
SUSC, placement overflows, ...).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "InvalidInstanceError",
    "InsufficientChannelsError",
    "SchedulingError",
    "SlotConflictError",
    "ProgramValidationError",
    "SearchSpaceError",
    "WorkloadError",
    "SimulationError",
    "ControlPlaneDisconnected",
    "JournalError",
]


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class InvalidInstanceError(ReproError, ValueError):
    """A problem instance violates the paper's structural assumptions.

    Raised for empty groups, non-positive expected times, expected times
    that do not sit on a geometric ladder ``t_{i+1} = c * t_i``, duplicate
    page identifiers, and similar malformed inputs.
    """


class InsufficientChannelsError(ReproError):
    """SUSC was asked to schedule with fewer channels than Theorem 3.1 allows.

    The exception carries both the requested and the required channel count
    so callers can fall back to PAMAD with a meaningful message.
    """

    def __init__(self, provided: int, required: int) -> None:
        self.provided = provided
        self.required = required
        super().__init__(
            f"{provided} channel(s) provided but Theorem 3.1 requires at "
            f"least {required}; use PAMAD for the insufficient-channel case"
        )


class SchedulingError(ReproError):
    """A scheduling algorithm failed to place a page.

    For SUSC under sufficient channels this indicates a bug (Theorem 3.2
    guarantees a free slot); the message carries the page and search window
    involved so the violation is debuggable.
    """


class SlotConflictError(SchedulingError):
    """An assignment tried to overwrite an occupied broadcast slot."""


class ProgramValidationError(ReproError):
    """A broadcast program failed the validity conditions of Section 3.1."""


class SearchSpaceError(ReproError):
    """A frequency search was given an empty or unbounded search space."""


class WorkloadError(ReproError, ValueError):
    """A workload generator received inconsistent parameters."""


class SimulationError(ReproError):
    """The discrete-event simulator reached an inconsistent state."""


class ControlPlaneDisconnected(ReproError, ConnectionError):
    """The control-plane connection dropped before a response arrived.

    Raised by :meth:`repro.control.ControlPlaneClient.request` when the
    server closes (or the transport fails) mid-request.  The outcome is
    *ambiguous* — the request may or may not have been applied — which
    is exactly the case the retry layer's idempotent request ids exist
    for.  Distinguishing this from structural failures lets callers
    retry transport errors without retrying their own bad requests.
    """


class JournalError(ReproError):
    """A control-plane write-ahead journal is unusable or corrupt.

    Raised for unreadable journal files, unsupported journal versions
    and mid-file corruption.  A *torn tail* (an interrupted final
    write) is not an error — it is truncated away on open.
    """
