"""PAMAD — Progressively Approaching Minimum Average Delay (Section 4).

The full PAMAD pipeline:

1. derive per-group broadcast frequencies ``S_i`` with the staged search of
   Algorithm 3 (:mod:`repro.core.frequencies`);
2. compute the major-cycle length ``t_major = ceil(sum S_i P_i / N_real)``
   (Equation 8);
3. place every page of group ``G_i`` exactly ``S_i`` times, evenly spread:
   the ``k``-th copy goes into the column window
   ``[ceil(t_major (k-1) / S_i), ceil(t_major k / S_i))`` (0-based), taking
   the first free channel in the earliest free column (Algorithm 4).

The even-spread placement (step 3) is shared verbatim by the m-PB and OPT
baselines — the paper fixes the placement and varies only the frequencies,
which keeps the comparison about frequency selection.

Algorithm 4's window search can exhaust its window when earlier groups
packed those columns solid; the paper argues a free slot always exists
because the cycle was sized to hold everything, which is true *globally*
but not per window.  :func:`place_by_frequency` therefore falls back to a
cyclic scan from the window start and counts how often that happened
(``window_misses``) so the effect is observable instead of silent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.delay import program_average_delay
from repro.core.errors import SchedulingError, SearchSpaceError
from repro.core.frequencies import FrequencyAssignment, pamad_frequencies
from repro.core.intmath import ceil_div
from repro.core.pages import ProblemInstance
from repro.core.program import BroadcastProgram

__all__ = [
    "PlacementResult",
    "place_by_frequency",
    "place_sequential",
    "PamadSchedule",
    "schedule_pamad",
]


@dataclass(frozen=True)
class PlacementResult:
    """A placed program plus placement diagnostics.

    Attributes:
        program: The generated broadcast program.
        window_misses: Number of copies whose Algorithm-4 window was full
            and that were placed by the cyclic fallback scan instead.
    """

    program: BroadcastProgram
    window_misses: int


def place_by_frequency(
    instance: ProblemInstance,
    frequencies: Sequence[int],
    num_channels: int,
    fast: bool = True,
) -> PlacementResult:
    """Algorithm 4: evenly spread every page per its group frequency.

    Args:
        instance: Pages and groups to place.
        frequencies: ``(S_1..S_h)`` copies per cycle for each group's pages.
        num_channels: ``N_real`` rows of the program grid.
        fast: Use the grid-identical array kernel of
            :mod:`repro.core.fastpath` (default).  ``False`` runs the
            literal cell-by-cell reference scan; property tests pin the
            two paths to byte-identical programs and miss counts.

    Returns:
        A :class:`PlacementResult`; the program's cycle length follows
        Equation (8).

    Raises:
        SearchSpaceError: If the frequency vector is malformed.
        SchedulingError: If the grid genuinely cannot hold all copies
            (impossible when the cycle length follows Equation 8, kept as a
            hard invariant).
    """
    if fast:
        from repro.core.fastpath import place_by_frequency_fast

        program, window_misses = place_by_frequency_fast(
            instance, frequencies, num_channels
        )
        return PlacementResult(
            program=program, window_misses=window_misses
        )
    if len(frequencies) != instance.h:
        raise SearchSpaceError(
            f"got {len(frequencies)} frequencies for h={instance.h} groups"
        )
    if any(s < 1 for s in frequencies):
        raise SearchSpaceError(
            f"frequencies must be >= 1, got {list(frequencies)}"
        )
    total_slots = sum(
        s * group.size for s, group in zip(frequencies, instance.groups)
    )
    cycle = ceil_div(total_slots, num_channels)
    program = BroadcastProgram(
        num_channels=num_channels, cycle_length=cycle
    )

    # Paper: "sort all data pages in descending order according to their
    # broadcast frequency" — most-frequent pages claim their evenly spaced
    # columns first.
    order = sorted(
        range(instance.h), key=lambda i: frequencies[i], reverse=True
    )
    window_misses = 0
    fallback = _CyclicFallbackCursor(program)
    for group_position in order:
        group = instance.groups[group_position]
        s_i = frequencies[group_position]
        for page in group.pages:
            for k in range(s_i):
                window_start = ceil_div(cycle * k, s_i)
                window_end = ceil_div(cycle * (k + 1), s_i)  # exclusive
                placed = False
                for column in range(window_start, min(window_end, cycle)):
                    channel = program.free_channel_in_column(column)
                    if channel is not None:
                        program.assign(channel, column, page.page_id)
                        placed = True
                        break
                if not placed:
                    window_misses += 1
                    placed = fallback.place(page.page_id, window_start)
                if not placed:
                    raise SchedulingError(
                        f"no free slot anywhere in the cycle for page "
                        f"{page.page_id} copy {k + 1}/{s_i}; cycle length "
                        f"{cycle} cannot hold {total_slots} slots"
                    )
    return PlacementResult(program=program, window_misses=window_misses)


def place_sequential(
    instance: ProblemInstance,
    frequencies: Sequence[int],
    num_channels: int,
    fast: bool = True,
) -> PlacementResult:
    """Naive placement: fill the grid left to right, no even spreading.

    Same frequencies and cycle length as Algorithm 4 but copies of a page
    are packed into the earliest free cells instead of being spread over
    the cycle.  This is the ABL3 ablation's strawman — it isolates how much
    of PAMAD's AvgD comes from *where* copies land rather than *how many*
    there are.  ``fast`` selects the grid-identical array kernel
    (default) versus the literal reference scan.
    """
    if fast:
        from repro.core.fastpath import place_sequential_fast

        program, _ = place_sequential_fast(
            instance, frequencies, num_channels
        )
        return PlacementResult(program=program, window_misses=0)
    if len(frequencies) != instance.h:
        raise SearchSpaceError(
            f"got {len(frequencies)} frequencies for h={instance.h} groups"
        )
    if any(s < 1 for s in frequencies):
        raise SearchSpaceError(
            f"frequencies must be >= 1, got {list(frequencies)}"
        )
    total_slots = sum(
        s * group.size for s, group in zip(frequencies, instance.groups)
    )
    cycle = ceil_div(total_slots, num_channels)
    program = BroadcastProgram(
        num_channels=num_channels, cycle_length=cycle
    )
    cursor = 0  # column of the last successful placement; never decreases
    fallback = _CyclicFallbackCursor(program)
    order = sorted(
        range(instance.h), key=lambda i: frequencies[i], reverse=True
    )
    for group_position in order:
        group = instance.groups[group_position]
        s_i = frequencies[group_position]
        for page in group.pages:
            for _ in range(s_i):
                placed = False
                for column in range(cursor, cycle):
                    channel = program.free_channel_in_column(column)
                    if channel is not None:
                        program.assign(channel, column, page.page_id)
                        cursor = column
                        placed = True
                        break
                if not placed:
                    # Earlier columns may still have holes (cursor only
                    # tracks the frontier); rescan from the start once.
                    cursor = 0
                    placed = fallback.place(page.page_id, 0)
                if not placed:
                    raise SchedulingError(
                        f"grid full before placing page {page.page_id}"
                    )
    return PlacementResult(program=program, window_misses=0)


class _CyclicFallbackCursor:
    """Amortised-linear cyclic fallback placement for one program build.

    The naive fallback rescanned every column from the requested offset,
    making repeated fallbacks O(cycle^2).  Columns only ever fill up
    during a placement run, so full columns can be remembered: a
    pointer-jumping array (path-compressed) links each known-full column
    to the next candidate, and every probe either places a page or
    permanently marks one more column full.  Each column is marked at
    most once per run, so all fallbacks together cost one scan of the
    grid — and the column chosen is exactly the one the naive cyclic
    scan would have found (the first non-full column cyclically from
    the start offset).
    """

    def __init__(self, program: BroadcastProgram) -> None:
        self._program = program
        self._next_free = list(range(program.cycle_length + 1))

    def _find(self, column: int) -> int:
        """First non-full column at or after ``column`` (cycle = none)."""
        program = self._program
        next_free = self._next_free
        cycle = program.cycle_length
        root = column
        while True:
            while next_free[root] != root:
                root = next_free[root]
            if root >= cycle:
                break
            if program.free_channel_in_column(root) is not None:
                break
            # Learned this column is full (placements outside the
            # fallback filled it); link it forward for good.
            next_free[root] = root + 1
        while next_free[column] != root:
            column, next_free[column] = next_free[column], root
        return root

    def place(self, page_id: int, start_column: int) -> bool:
        """Place in the first free cell scanning cyclically from a column."""
        program = self._program
        cycle = program.cycle_length
        column = self._find(start_column)
        if column >= cycle:
            column = self._find(0)
            if column >= start_column:
                return False
        channel = program.free_channel_in_column(column)
        program.assign(channel, column, page_id)
        return True


def _place_cyclic_fallback(
    program: BroadcastProgram, page_id: int, start_column: int
) -> bool:
    """One-shot cyclic fallback (kept for callers without a cursor)."""
    return _CyclicFallbackCursor(program).place(page_id, start_column)


@dataclass(frozen=True)
class PamadSchedule:
    """The complete output of the PAMAD pipeline.

    Attributes:
        program: The generated broadcast program.
        instance: The scheduled instance.
        num_channels: ``N_real`` used.
        assignment: The frequency derivation (Algorithm 3 trace included).
        window_misses: Algorithm-4 fallback count (see module docstring).
        average_delay: Analytic AvgD of the *generated* program (exact
            per-gap model — the measured quantity, not the search
            objective).
    """

    program: BroadcastProgram
    instance: ProblemInstance
    num_channels: int
    assignment: FrequencyAssignment
    window_misses: int
    average_delay: float

    @property
    def meta(self) -> dict:
        """Scheduler diagnostics (the ScheduleResult protocol's ``meta``)."""
        return {
            "scheduler": "pamad",
            "num_channels": self.num_channels,
            "frequencies": list(self.assignment.frequencies),
            "predicted_delay": self.assignment.predicted_delay,
            "window_misses": self.window_misses,
        }


def schedule_pamad(
    instance: ProblemInstance,
    num_channels: int,
    objective=None,
    fast: bool = True,
) -> PamadSchedule:
    """Run the full PAMAD pipeline (Algorithms 3 + 4).

    Works for any positive channel count; with sufficient channels the
    staged search picks frequencies with zero predicted delay, so PAMAD
    degrades gracefully into a (near-)valid program.

    Args:
        instance: The problem instance.
        num_channels: Channels actually available (``N_real``).
        objective: Optional stage objective override (see
            :func:`repro.core.frequencies.pamad_frequencies`).
        fast: Placement kernel selector (see :func:`place_by_frequency`);
            the produced program is identical either way.

    Returns:
        A :class:`PamadSchedule` with program, frequencies and measured
        average delay.
    """
    if objective is None:
        assignment = pamad_frequencies(instance, num_channels)
    else:
        assignment = pamad_frequencies(
            instance, num_channels, objective=objective
        )
    placement = place_by_frequency(
        instance, assignment.frequencies, num_channels, fast=fast
    )
    average_delay = program_average_delay(placement.program, instance)
    return PamadSchedule(
        program=placement.program,
        instance=instance,
        num_channels=num_channels,
        assignment=assignment,
        window_misses=placement.window_misses,
        average_delay=average_delay,
    )
