"""The multi-channel broadcast program ``B`` (Section 3.2).

A broadcast program is conceptually a 2-D array: each row is a broadcast
channel, each column is a time slot, and the whole grid repeats cyclically
with period ``cycle_length`` (the paper's major cycle ``t_major``; ``t_h``
for SUSC programs).  A cell holds at most one page id.

Indexing convention: **0-based** channels and slots throughout the code
(the paper is 1-based; :meth:`BroadcastProgram.render` shows 1-based labels
so its output can be compared against the paper's Figure 2 directly).

The grid is deliberately a plain list-of-lists rather than a numpy array:
cells hold optional page ids, programs are small (``N x t_major``), and the
schedulers probe single cells far more often than they scan rows.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass
from typing import Iterator, Mapping, Sequence

from repro.core.errors import InvalidInstanceError, SlotConflictError

__all__ = ["SlotRef", "BroadcastProgram"]


@dataclass(frozen=True, slots=True, order=True)
class SlotRef:
    """A reference to one cell of a broadcast program.

    Ordering is (slot, channel): earlier airtime first, which is the order
    clients experience and the order placement algorithms scan columns.
    """

    slot: int
    channel: int

    def __str__(self) -> str:
        return f"(ch={self.channel}, slot={self.slot})"


class BroadcastProgram:
    """A cyclic ``num_channels x cycle_length`` broadcast schedule.

    The program owns its grid; schedulers fill it through :meth:`assign`,
    which refuses to overwrite an occupied cell so double-placement bugs
    surface immediately instead of silently corrupting the schedule.
    """

    def __init__(self, num_channels: int, cycle_length: int) -> None:
        if num_channels <= 0:
            raise InvalidInstanceError(
                f"num_channels must be positive, got {num_channels}"
            )
        if cycle_length <= 0:
            raise InvalidInstanceError(
                f"cycle_length must be positive, got {cycle_length}"
            )
        self._num_channels = num_channels
        self._cycle_length = cycle_length
        self._grid: list[list[int | None]] = [
            [None] * cycle_length for _ in range(num_channels)
        ]
        # page_id -> sorted-on-demand list of SlotRef; the source of
        # truth for appearance queries.  ``None`` means "not built yet":
        # bulk constructors (:meth:`from_grid` / :meth:`from_array`)
        # defer the table and the first appearance query derives it from
        # the grid in one row-major pass — so building a program costs
        # O(rows copied) and consumers that never ask for appearances
        # (placement benchmarks, grid diffs) never pay for SlotRefs.
        self._appearances: dict[int, list[SlotRef]] | None = {}
        # Memoised derived tables, invalidated per page on any mutation
        # of that page's cells.  Delay evaluation calls appearance_slots/
        # cyclic_gaps once per page per metric, so repeated evaluation of
        # a finished program (the common analysis pattern) pays the sort
        # exactly once.
        self._slots_cache: dict[int, list[int]] = {}
        self._gaps_cache: dict[int, list[int]] = {}
        # Packed int64 mirror of the grid (-1 = free), built lazily by
        # :meth:`packed_grid` and kept in sync cell-by-cell on mutation.
        # The array-kernel constructors seed it for free, so consumers
        # like the live re-plan patcher never pay an O(grid) conversion.
        self._packed = None
        # Bumped on every cell mutation; see :attr:`version`.
        self._version = 0

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------

    @property
    def num_channels(self) -> int:
        """Number of broadcast channels (grid rows)."""
        return self._num_channels

    @property
    def cycle_length(self) -> int:
        """Major-cycle length ``t_major`` in slots (grid columns)."""
        return self._cycle_length

    @property
    def total_slots(self) -> int:
        """Total number of cells in one cycle."""
        return self._num_channels * self._cycle_length

    @property
    def version(self) -> int:
        """Mutation stamp: incremented by every :meth:`assign`/:meth:`clear`.

        External caches keyed on ``(id(program), program.version)`` stay
        coherent across in-place repairs without subscribing to every
        mutation (the appearance-index memo in
        :mod:`repro.analysis.vectorized` is the canonical consumer).
        """
        return self._version

    # ------------------------------------------------------------------
    # Cell access
    # ------------------------------------------------------------------

    def _check_cell(self, channel: int, slot: int) -> None:
        if not 0 <= channel < self._num_channels:
            raise InvalidInstanceError(
                f"channel {channel} out of range 0..{self._num_channels - 1}"
            )
        if not 0 <= slot < self._cycle_length:
            raise InvalidInstanceError(
                f"slot {slot} out of range 0..{self._cycle_length - 1}"
            )

    def get(self, channel: int, slot: int) -> int | None:
        """Return the page id at a cell, or ``None`` if the cell is free."""
        self._check_cell(channel, slot)
        return self._grid[channel][slot]

    def is_free(self, channel: int, slot: int) -> bool:
        """True if the cell holds no page."""
        return self.get(channel, slot) is None

    def _appearance_table(self) -> dict[int, list[SlotRef]]:
        """The appearance table, derived from the grid on first demand."""
        table = self._appearances
        if table is None:
            table = {}
            for channel, row in enumerate(self._grid):
                for slot, page_id in enumerate(row):
                    if page_id is not None:
                        refs = table.get(page_id)
                        if refs is None:
                            table[page_id] = refs = []
                        refs.append(SlotRef(slot=slot, channel=channel))
            self._appearances = table
        return table

    def assign(self, channel: int, slot: int, page_id: int) -> None:
        """Place ``page_id`` at ``(channel, slot)``.

        Raises:
            SlotConflictError: If the cell is already occupied.
        """
        self._check_cell(channel, slot)
        occupant = self._grid[channel][slot]
        if occupant is not None:
            raise SlotConflictError(
                f"slot (ch={channel}, slot={slot}) already holds page "
                f"{occupant}; cannot place page {page_id}"
            )
        appearances = self._appearance_table()
        self._grid[channel][slot] = page_id
        appearances.setdefault(page_id, []).append(
            SlotRef(slot=slot, channel=channel)
        )
        self._slots_cache.pop(page_id, None)
        self._gaps_cache.pop(page_id, None)
        if self._packed is not None:
            self._packed[channel, slot] = page_id
        self._version += 1

    def clear(self, channel: int, slot: int) -> int | None:
        """Remove and return the page at a cell (``None`` if it was free)."""
        self._check_cell(channel, slot)
        occupant = self._grid[channel][slot]
        if occupant is not None:
            appearances = self._appearance_table()
            self._grid[channel][slot] = None
            refs = appearances[occupant]
            refs.remove(SlotRef(slot=slot, channel=channel))
            if not refs:
                del appearances[occupant]
            self._slots_cache.pop(occupant, None)
            self._gaps_cache.pop(occupant, None)
            if self._packed is not None:
                self._packed[channel, slot] = -1
            self._version += 1
        return occupant

    # ------------------------------------------------------------------
    # Scans used by the schedulers
    # ------------------------------------------------------------------

    def free_slot_in_channel_window(
        self, channel: int, window: int
    ) -> int | None:
        """First free slot index in ``channel`` among slots ``0..window-1``.

        This is the inner scan of the paper's GetAvailableSlot (Algorithm 2):
        the window is the page's expected time ``t_i``.
        """
        limit = min(window, self._cycle_length)
        row = self._grid[channel]
        for slot in range(limit):
            if row[slot] is None:
                return slot
        return None

    def free_channel_in_column(self, slot: int) -> int | None:
        """First channel with a free cell in column ``slot`` (Algorithm 4 scan)."""
        self._check_cell(0, slot)
        for channel in range(self._num_channels):
            if self._grid[channel][slot] is None:
                return channel
        return None

    def free_cells(self) -> Iterator[SlotRef]:
        """Iterate over all free cells in (slot, channel) order."""
        for slot in range(self._cycle_length):
            for channel in range(self._num_channels):
                if self._grid[channel][slot] is None:
                    yield SlotRef(slot=slot, channel=channel)

    def occupancy(self) -> float:
        """Fraction of cells holding a page."""
        used = self.total_slots - sum(
            row.count(None) for row in self._grid
        )
        return used / self.total_slots

    # ------------------------------------------------------------------
    # Appearance queries (the client's view)
    # ------------------------------------------------------------------

    def page_ids(self) -> set[int]:
        """All page ids appearing at least once in the program."""
        return set(self._appearance_table())

    def appearances(self, page_id: int) -> list[SlotRef]:
        """All cells holding ``page_id``, sorted by airtime."""
        return sorted(self._appearance_table().get(page_id, []))

    def appearance_slots(self, page_id: int) -> list[int]:
        """Sorted slot indices at which ``page_id`` is broadcast.

        A page may appear on any channel; a client with the program index
        tunes to whichever channel carries the next appearance, so only the
        slot (column) matters for waiting time.
        """
        cached = self._slots_cache.get(page_id)
        if cached is None:
            cached = sorted(
                {
                    ref.slot
                    for ref in self._appearance_table().get(page_id, [])
                }
            )
            self._slots_cache[page_id] = cached
        return list(cached)

    def broadcast_count(self, page_id: int) -> int:
        """Number of appearances of ``page_id`` in one cycle (``s_{i,j}``)."""
        return len(self._appearance_table().get(page_id, []))

    def page_counts(self) -> Counter[int]:
        """Appearance count per page id."""
        return Counter(
            {
                page_id: len(refs)
                for page_id, refs in self._appearance_table().items()
            }
        )

    def cyclic_gaps(self, page_id: int) -> list[int]:
        """Cyclic gaps between consecutive appearances of ``page_id``.

        The gaps partition the cycle: they always sum to ``cycle_length``.
        A page appearing once has a single gap equal to the whole cycle.
        """
        cached = self._gaps_cache.get(page_id)
        if cached is None:
            slots = self.appearance_slots(page_id)
            if not slots:
                raise InvalidInstanceError(
                    f"page {page_id} does not appear in the program"
                )
            if len(slots) == 1:
                cached = [self._cycle_length]
            else:
                cached = [b - a for a, b in zip(slots, slots[1:])]
                cached.append(self._cycle_length - slots[-1] + slots[0])
            self._gaps_cache[page_id] = cached
        return list(cached)

    def wait_time(self, page_id: int, arrival: float) -> float:
        """Time from ``arrival`` until the next broadcast start of ``page_id``.

        ``arrival`` is a (possibly fractional) time in ``[0, cycle_length)``;
        a client arriving exactly when the page starts waits zero.
        """
        slots = self.appearance_slots(page_id)
        if not slots:
            raise InvalidInstanceError(
                f"page {page_id} does not appear in the program"
            )
        if not 0 <= arrival < self._cycle_length:
            arrival %= self._cycle_length
        for slot in slots:
            if slot >= arrival:
                return slot - arrival
        return slots[0] + self._cycle_length - arrival

    # ------------------------------------------------------------------
    # Bulk construction
    # ------------------------------------------------------------------

    @classmethod
    def from_grid(
        cls, grid: Sequence[Sequence[int | None]]
    ) -> "BroadcastProgram":
        """Build a program from a complete grid in one pass.

        Equivalent to constructing an empty program and :meth:`assign`-ing
        every non-``None`` cell in row-major order, but without per-cell
        bounds and conflict checks (each cell is written exactly once by
        construction).  Fast placement kernels materialise their result
        through this path.  The appearance table is deferred: building it
        per cell would dominate large constructions, and the first
        appearance query derives the identical table from the grid.
        """
        if not grid or not grid[0]:
            raise InvalidInstanceError("grid must be non-empty")
        cycle_length = len(grid[0])
        program = cls(num_channels=len(grid), cycle_length=cycle_length)
        rows = program._grid
        for channel, row in enumerate(grid):
            if len(row) != cycle_length:
                raise InvalidInstanceError(
                    f"grid row {channel} has {len(row)} slots, expected "
                    f"{cycle_length}"
                )
            rows[channel] = list(row)
        program._appearances = None
        return program

    @classmethod
    def from_array(cls, array) -> "BroadcastProgram":
        """Build a program from an int array grid (``-1`` marks empty).

        The vectorised placement kernels finish holding a numpy
        ``(num_channels, cycle_length)`` int grid; this converts it in
        bulk (one C-level pass per row, no per-cell Python loop) and
        defers the appearance table exactly like :meth:`from_grid`.
        """
        import numpy as np

        arr = np.asarray(array)
        if arr.ndim != 2 or arr.size == 0:
            raise InvalidInstanceError("grid must be a non-empty 2-D array")
        cells = arr.astype(object)
        cells[arr < 0] = None
        program = cls(
            num_channels=arr.shape[0], cycle_length=arr.shape[1]
        )
        program._grid = cells.tolist()
        program._appearances = None
        program._packed = arr.astype(np.int64)
        return program

    def copy(self) -> "BroadcastProgram":
        """An independent copy of this program (grid and appearances).

        A structural copy, not a rebuild: the per-cell containers are
        duplicated but the :class:`SlotRef` objects (immutable) and the
        memoised appearance tables are shared/copied as-is, so copying
        costs list duplication rather than re-deriving every reference.
        A deferred appearance table stays deferred in the clone.
        The live re-plan patcher copies the on-air program this way
        before editing one group's cells.
        """
        clone = BroadcastProgram(
            num_channels=self._num_channels,
            cycle_length=self._cycle_length,
        )
        clone._grid = [list(row) for row in self._grid]
        if self._appearances is None:
            clone._appearances = None
        else:
            clone._appearances = {
                page_id: list(refs)
                for page_id, refs in self._appearances.items()
            }
        clone._slots_cache = {
            page_id: list(slots)
            for page_id, slots in self._slots_cache.items()
        }
        clone._gaps_cache = {
            page_id: list(gaps)
            for page_id, gaps in self._gaps_cache.items()
        }
        if self._packed is not None:
            clone._packed = self._packed.copy()
        return clone

    def grid_rows(self) -> list[list[int | None]]:
        """A copy of the raw grid, row per channel (for bulk consumers)."""
        return [list(row) for row in self._grid]

    def packed_grid(self):
        """The grid as an int64 numpy array, ``-1`` marking free cells.

        The array is the program's internal mirror — treat it as
        read-only and ``.copy()`` before editing.  Programs built by the
        array kernels (:meth:`from_array`) carry it from birth; for
        others the first call pays one O(grid) conversion, after which
        :meth:`assign`/:meth:`clear` keep it in sync cell-by-cell.  The
        live re-plan patcher runs entirely on this mirror, which is what
        makes its taut-budget patches microsecond-scale.
        """
        if self._packed is None:
            import numpy as np

            self._packed = np.asarray(
                [
                    [-1 if cell is None else cell for cell in row]
                    for row in self._grid
                ],
                dtype=np.int64,
            )
        return self._packed

    # ------------------------------------------------------------------
    # Serialisation and rendering
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-friendly representation of the program."""
        return {
            "num_channels": self._num_channels,
            "cycle_length": self._cycle_length,
            "grid": [list(row) for row in self._grid],
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "BroadcastProgram":
        """Rebuild a program produced by :meth:`to_dict`."""
        program = cls(
            num_channels=int(data["num_channels"]),
            cycle_length=int(data["cycle_length"]),
        )
        grid: Sequence[Sequence[int | None]] = data["grid"]
        if len(grid) != program.num_channels:
            raise InvalidInstanceError(
                f"grid has {len(grid)} rows, expected {program.num_channels}"
            )
        for channel, row in enumerate(grid):
            if len(row) != program.cycle_length:
                raise InvalidInstanceError(
                    f"grid row {channel} has {len(row)} slots, expected "
                    f"{program.cycle_length}"
                )
            for slot, page_id in enumerate(row):
                if page_id is not None:
                    program.assign(channel, slot, int(page_id))
        return program

    def to_json(self, indent: int | None = None) -> str:
        """Serialise to a JSON string."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "BroadcastProgram":
        """Deserialise a program from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))

    def render(self, cell_width: int | None = None) -> str:
        """Pretty-print the grid in the style of the paper's Figure 2.

        Rows are channels, columns are time slots (labelled 1-based like the
        paper), empty cells show ``.``.
        """
        if cell_width is None:
            widest = max(
                (len(str(pid)) for pid in self._appearance_table()),
                default=1,
            )
            cell_width = max(widest, len(str(self._cycle_length))) + 1
        lines = []
        header = "time".rjust(6) + "".join(
            str(slot + 1).rjust(cell_width)
            for slot in range(self._cycle_length)
        )
        lines.append(header)
        for channel, row in enumerate(self._grid):
            cells = "".join(
                (str(page) if page is not None else ".").rjust(cell_width)
                for page in row
            )
            lines.append(f"ch{channel + 1}".rjust(6) + cells)
        return "\n".join(lines)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BroadcastProgram):
            return NotImplemented
        return self._grid == other._grid

    def __repr__(self) -> str:
        return (
            f"BroadcastProgram(channels={self._num_channels}, "
            f"cycle={self._cycle_length}, "
            f"pages={len(self._appearance_table())}, "
            f"occupancy={self.occupancy():.2f})"
        )
