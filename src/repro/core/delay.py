"""Average-delay models (Sections 4.1-4.3).

The paper defines *average delay* (AvgD) as the time a client waits
**beyond the expected time** of the page it wants, averaged over pages
(weighted by access probability) and over arrival instants (uniform over
the major cycle).

Three related models live here:

* :func:`page_average_delay` / :func:`program_average_delay` — the *exact
  measurement* model for a concrete program: for a page with cyclic gaps
  ``g`` and expected time ``t`` in a cycle of length ``T``, a uniformly
  arriving client suffers expected excess wait ``sum max(g - t, 0)^2 / (2T)``.
  This is what the Monte-Carlo client simulator converges to, and it is the
  AvgD reported in the Figure-5 reproduction.

* :func:`paper_group_delay` — the staged *objective* of PAMAD/OPT,
  Equation (2) taken literally: the paper's Eqs. (2)/(3)/(5)/(7) drop the
  ``1/gap`` normalisation of Section 4.1, and we verified numerically that
  the literal form reproduces the worked example of Figure 2(b)
  (``D'_2 = 0.12 / 0``, ``D'_3 = 0.15 / 0.04``).  PAMAD and OPT therefore
  optimise this exact expression.

* :func:`normalized_group_delay` — the Section-4.1-faithful variant (with
  the ``1/gap`` factor kept), used by the ABL2 ablation to quantify how
  much the paper's simplification changes the chosen frequencies.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

from repro.core.errors import InvalidInstanceError
from repro.core.intmath import ceil_div
from repro.core.pages import ProblemInstance
from repro.core.program import BroadcastProgram

__all__ = [
    "page_average_delay",
    "page_average_wait",
    "page_miss_probability",
    "program_average_delay",
    "program_average_wait",
    "program_miss_probability",
    "paper_group_delay",
    "normalized_group_delay",
    "even_spread_page_delay",
    "uniform_access_probabilities",
]


# ----------------------------------------------------------------------
# Exact measurement model for concrete programs
# ----------------------------------------------------------------------


def page_average_delay(
    program: BroadcastProgram, page_id: int, expected_time: int
) -> float:
    """Expected excess wait for one page under uniform arrivals.

    For a client arriving uniformly in the cycle, conditioning on the gap
    it lands in: landing probability ``g/T``, excess wait beyond ``t``
    given the gap is ``max(g - t, 0)^2 / (2g)``; summing gives
    ``sum_g max(g - t, 0)^2 / (2T)``.
    """
    cycle = program.cycle_length
    total = 0.0
    for gap in program.cyclic_gaps(page_id):
        excess = gap - expected_time
        if excess > 0:
            total += excess * excess
    return total / (2 * cycle)


def page_average_wait(program: BroadcastProgram, page_id: int) -> float:
    """Expected *total* wait (not just excess) for one page.

    The classic broadcast-disk access-time quantity
    ``sum g^2 / (2T)``; reported alongside AvgD for context.
    """
    cycle = program.cycle_length
    return sum(g * g for g in program.cyclic_gaps(page_id)) / (2 * cycle)


def page_miss_probability(
    program: BroadcastProgram, page_id: int, expected_time: int
) -> float:
    """Probability a uniformly-arriving client misses the expected time.

    The client waits longer than ``t`` exactly when it lands in the first
    ``g - t`` units of a gap ``g > t``: probability ``sum max(g-t,0) / T``.
    """
    cycle = program.cycle_length
    return (
        sum(
            max(g - expected_time, 0)
            for g in program.cyclic_gaps(page_id)
        )
        / cycle
    )


def uniform_access_probabilities(
    instance: ProblemInstance,
) -> dict[int, float]:
    """The paper's default client model: every page equally likely (1/n)."""
    probability = 1.0 / instance.n
    return {page.page_id: probability for page in instance.pages()}


def _resolve_probabilities(
    instance: ProblemInstance,
    access_probabilities: Mapping[int, float] | None,
) -> Mapping[int, float]:
    if access_probabilities is None:
        return uniform_access_probabilities(instance)
    total = sum(access_probabilities.values())
    if not math.isclose(total, 1.0, rel_tol=1e-6):
        raise InvalidInstanceError(
            f"access probabilities sum to {total}, expected 1.0"
        )
    return access_probabilities


def program_average_delay(
    program: BroadcastProgram,
    instance: ProblemInstance,
    access_probabilities: Mapping[int, float] | None = None,
) -> float:
    """AvgD of a concrete program: access-probability-weighted excess wait.

    This is the evaluation metric of Section 5.  Defaults to the paper's
    uniform access model; pass explicit probabilities (e.g. Zipf from
    :mod:`repro.workload.requests`) for the EXT3 extension.
    """
    probabilities = _resolve_probabilities(instance, access_probabilities)
    return sum(
        probabilities[page.page_id]
        * page_average_delay(program, page.page_id, page.expected_time)
        for page in instance.pages()
    )


def program_average_wait(
    program: BroadcastProgram,
    instance: ProblemInstance,
    access_probabilities: Mapping[int, float] | None = None,
) -> float:
    """Expected total wait of a concrete program (broadcast access time)."""
    probabilities = _resolve_probabilities(instance, access_probabilities)
    return sum(
        probabilities[page.page_id]
        * page_average_wait(program, page.page_id)
        for page in instance.pages()
    )


def program_miss_probability(
    program: BroadcastProgram,
    instance: ProblemInstance,
    access_probabilities: Mapping[int, float] | None = None,
) -> float:
    """Probability a random request misses its expected time."""
    probabilities = _resolve_probabilities(instance, access_probabilities)
    return sum(
        probabilities[page.page_id]
        * page_miss_probability(
            program, page.page_id, page.expected_time
        )
        for page in instance.pages()
    )


# ----------------------------------------------------------------------
# Paper objective (Equation 2, literal) and its normalised variant
# ----------------------------------------------------------------------


def _check_vectors(
    frequencies: Sequence[float],
    sizes: Sequence[int],
    times: Sequence[int],
    num_channels: int,
) -> None:
    if not (len(frequencies) == len(sizes) == len(times)):
        raise InvalidInstanceError(
            f"vector lengths differ: S={len(frequencies)}, "
            f"P={len(sizes)}, t={len(times)}"
        )
    if not frequencies:
        raise InvalidInstanceError("empty frequency vector")
    if num_channels <= 0:
        raise InvalidInstanceError(
            f"num_channels must be positive, got {num_channels}"
        )
    for s in frequencies:
        if s < 1:
            raise InvalidInstanceError(
                f"broadcast frequencies must be >= 1, got {list(frequencies)}"
            )


def _ceil_cycle(slots: float, num_channels: int) -> int:
    """Equation (8) cycle length; exact for integer slot counts.

    Frequencies are normally integers, making ``slots`` an int and the
    ceiling exact at any magnitude; fractional frequency vectors (allowed
    by the objective signatures) fall back to the float ceiling.
    """
    if isinstance(slots, int):
        return ceil_div(slots, num_channels)
    return math.ceil(slots / num_channels)


def paper_group_delay(
    frequencies: Sequence[float],
    sizes: Sequence[int],
    times: Sequence[int],
    num_channels: int,
    cycle_length: int | None = None,
) -> float:
    """Average group delay ``D'`` per the paper's Equation (2), literally.

    ``D' = sum_i (S_i P_i / F) * max((F / (N_real S_i) - t_i)
    * ((t_major / S_i - t_i) / 2), 0)`` with ``F = sum S_i P_i`` and
    ``t_major = ceil(F / N_real)`` unless an explicit cycle length is given
    (the staged PAMAD search evaluates truncated prefixes with their own
    stage cycles).

    Note the literal Eq. (2) form multiplies two ``gap - t`` factors without
    re-normalising by the gap; this matches the paper's worked Figure 2(b)
    numbers exactly (see module docstring) and is what PAMAD/OPT minimise.
    """
    _check_vectors(frequencies, sizes, times, num_channels)
    slots = sum(s * p for s, p in zip(frequencies, sizes))
    if cycle_length is None:
        cycle_length = _ceil_cycle(slots, num_channels)
    total = 0.0
    for s_i, p_i, t_i in zip(frequencies, sizes, times):
        weight = (s_i * p_i) / slots
        spacing_real = slots / (num_channels * s_i)
        spacing_cycle = cycle_length / s_i
        # A group whose spacing fits within t_i contributes no delay; the
        # max() must clamp each (spacing - t_i) factor, otherwise two
        # negative factors would multiply into a bogus positive delay.
        term = max(spacing_real - t_i, 0.0) * max(
            (spacing_cycle - t_i) / 2.0, 0.0
        )
        total += weight * term
    return total


def normalized_group_delay(
    frequencies: Sequence[float],
    sizes: Sequence[int],
    times: Sequence[int],
    num_channels: int,
    cycle_length: int | None = None,
) -> float:
    """Section-4.1-faithful variant of :func:`paper_group_delay`.

    Keeps the ``1/gap`` normalisation the staged equations drop:
    per group, expected excess wait is ``max(gap - t, 0)^2 / (2 gap)`` with
    ``gap = t_major / S_i``.  Used by the ABL2 ablation.
    """
    _check_vectors(frequencies, sizes, times, num_channels)
    slots = sum(s * p for s, p in zip(frequencies, sizes))
    if cycle_length is None:
        cycle_length = _ceil_cycle(slots, num_channels)
    total = 0.0
    for s_i, p_i, t_i in zip(frequencies, sizes, times):
        weight = (s_i * p_i) / slots
        gap = cycle_length / s_i
        excess = gap - t_i
        if excess > 0:
            total += weight * (excess * excess) / (2.0 * gap)
    return total


def even_spread_page_delay(
    cycle_length: int, frequency: int, expected_time: int
) -> float:
    """Section 4.2 single-page delay under perfectly even spreading.

    With ``s`` evenly spread appearances in a cycle ``t_major``, every gap
    is ``floor(t_major / s)`` and the per-page average delay is
    ``max(floor(t_major/s) - t, 0)^2 / (2 floor(t_major/s))``.
    """
    if frequency < 1:
        raise InvalidInstanceError(
            f"frequency must be >= 1, got {frequency}"
        )
    gap = cycle_length // frequency
    if gap <= 0:
        return 0.0
    excess = gap - expected_time
    if excess <= 0:
        return 0.0
    return (excess * excess) / (2.0 * gap)
