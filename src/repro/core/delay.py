"""Average-delay models (Sections 4.1-4.3).

The paper defines *average delay* (AvgD) as the time a client waits
**beyond the expected time** of the page it wants, averaged over pages
(weighted by access probability) and over arrival instants (uniform over
the major cycle).

Three related models live here:

* :func:`page_average_delay` / :func:`program_average_delay` — the *exact
  measurement* model for a concrete program: for a page with cyclic gaps
  ``g`` and expected time ``t`` in a cycle of length ``T``, a uniformly
  arriving client suffers expected excess wait ``sum max(g - t, 0)^2 / (2T)``.
  This is what the Monte-Carlo client simulator converges to, and it is the
  AvgD reported in the Figure-5 reproduction.

* :func:`paper_group_delay` — the staged *objective* of PAMAD/OPT,
  Equation (2) taken literally: the paper's Eqs. (2)/(3)/(5)/(7) drop the
  ``1/gap`` normalisation of Section 4.1, and we verified numerically that
  the literal form reproduces the worked example of Figure 2(b)
  (``D'_2 = 0.12 / 0``, ``D'_3 = 0.15 / 0.04``).  PAMAD and OPT therefore
  optimise this exact expression.

* :func:`normalized_group_delay` — the Section-4.1-faithful variant (with
  the ``1/gap`` factor kept), used by the ABL2 ablation to quantify how
  much the paper's simplification changes the chosen frequencies.

Each model also has a *batch* entry point (``*_batch``) that evaluates
many pages or many frequency vectors in one numpy pass, bit-identical to
looping the scalar form.  The frequency searches (Algorithm 3's staged
scan, the OPT branch-and-bound) and the sweep analysis call the batch
kernels so no hot path pays a per-candidate Python objective call.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

import numpy as np

from repro.core.backend import active_backend
from repro.core.errors import InvalidInstanceError, SimulationError
from repro.core.intmath import ceil_div
from repro.core.pages import ProblemInstance
from repro.core.program import BroadcastProgram

__all__ = [
    "page_average_delay",
    "page_average_wait",
    "page_miss_probability",
    "page_average_delay_batch",
    "page_miss_probability_batch",
    "program_average_delay",
    "program_average_wait",
    "program_miss_probability",
    "paper_group_delay",
    "paper_group_delay_batch",
    "normalized_group_delay",
    "normalized_group_delay_batch",
    "even_spread_page_delay",
    "uniform_access_probabilities",
]


# ----------------------------------------------------------------------
# Exact measurement model for concrete programs
# ----------------------------------------------------------------------


def page_average_delay(
    program: BroadcastProgram, page_id: int, expected_time: int
) -> float:
    """Expected excess wait for one page under uniform arrivals.

    For a client arriving uniformly in the cycle, conditioning on the gap
    it lands in: landing probability ``g/T``, excess wait beyond ``t``
    given the gap is ``max(g - t, 0)^2 / (2g)``; summing gives
    ``sum_g max(g - t, 0)^2 / (2T)``.
    """
    cycle = program.cycle_length
    total = 0.0
    for gap in program.cyclic_gaps(page_id):
        excess = gap - expected_time
        if excess > 0:
            total += excess * excess
    return total / (2 * cycle)


def page_average_wait(program: BroadcastProgram, page_id: int) -> float:
    """Expected *total* wait (not just excess) for one page.

    The classic broadcast-disk access-time quantity
    ``sum g^2 / (2T)``; reported alongside AvgD for context.
    """
    cycle = program.cycle_length
    return sum(g * g for g in program.cyclic_gaps(page_id)) / (2 * cycle)


def page_miss_probability(
    program: BroadcastProgram, page_id: int, expected_time: int
) -> float:
    """Probability a uniformly-arriving client misses the expected time.

    The client waits longer than ``t`` exactly when it lands in the first
    ``g - t`` units of a gap ``g > t``: probability ``sum max(g-t,0) / T``.
    """
    cycle = program.cycle_length
    return (
        sum(
            max(g - expected_time, 0)
            for g in program.cyclic_gaps(page_id)
        )
        / cycle
    )


def _packed_cyclic_gaps(
    program: BroadcastProgram, page_ids: Sequence[int]
) -> tuple[np.ndarray, np.ndarray]:
    """All pages' cyclic gaps back to back, plus row starts.

    Returns ``(gaps, starts)`` where ``gaps`` is int64 and
    ``starts[i]`` indexes page ``i``'s first gap; ``starts`` has one
    trailing entry equal to ``gaps.size`` so rows are
    ``gaps[starts[i]:starts[i + 1]]``.  Gap counts equal appearance
    counts, which are always >= 1 for broadcast pages; a page with no
    appearances raises, matching the scalar models' division semantics.
    """
    gap_lists = []
    for page_id in page_ids:
        gaps = program.cyclic_gaps(page_id)
        if not gaps:
            raise SimulationError(
                f"page {page_id} does not appear in the program"
            )
        gap_lists.append(gaps)
    counts = np.asarray([len(gaps) for gaps in gap_lists], dtype=np.int64)
    starts = np.concatenate(([0], np.cumsum(counts)))
    flat = np.asarray(
        [gap for gaps in gap_lists for gap in gaps], dtype=np.int64
    )
    return flat, starts


def page_average_delay_batch(
    program: BroadcastProgram,
    page_ids: Sequence[int],
    expected_times: Sequence[int],
) -> np.ndarray:
    """:func:`page_average_delay` for many pages in one numpy pass.

    Exactly equal to the scalar per page: gaps and expected times are
    integers, so the squared-excess accumulation runs in int64 (exact,
    like the scalar's Python-int accumulator) and only the final
    ``/ (2 * cycle)`` division produces a float — the same correctly
    rounded quotient the scalar computes.
    """
    if len(page_ids) != len(expected_times):
        raise SimulationError(
            f"got {len(page_ids)} pages for {len(expected_times)} "
            "expected times"
        )
    if not page_ids:
        return np.empty(0, dtype=np.float64)
    gaps, starts = _packed_cyclic_gaps(program, page_ids)
    counts = np.diff(starts)
    expected = np.repeat(
        np.asarray(expected_times, dtype=np.int64), counts
    )
    excess = np.maximum(gaps - expected, 0)
    sums = np.add.reduceat(excess * excess, starts[:-1])
    return sums / (2 * program.cycle_length)


def page_miss_probability_batch(
    program: BroadcastProgram,
    page_ids: Sequence[int],
    expected_times: Sequence[int],
) -> np.ndarray:
    """:func:`page_miss_probability` for many pages in one numpy pass.

    Same exactness argument as :func:`page_average_delay_batch`: the
    clamped-excess sum is integer-exact, the single division matches the
    scalar's ``int / int``.
    """
    if len(page_ids) != len(expected_times):
        raise SimulationError(
            f"got {len(page_ids)} pages for {len(expected_times)} "
            "expected times"
        )
    if not page_ids:
        return np.empty(0, dtype=np.float64)
    gaps, starts = _packed_cyclic_gaps(program, page_ids)
    counts = np.diff(starts)
    expected = np.repeat(
        np.asarray(expected_times, dtype=np.int64), counts
    )
    excess = np.maximum(gaps - expected, 0)
    sums = np.add.reduceat(excess, starts[:-1])
    return sums / program.cycle_length


def uniform_access_probabilities(
    instance: ProblemInstance,
) -> dict[int, float]:
    """The paper's default client model: every page equally likely (1/n)."""
    probability = 1.0 / instance.n
    return {page.page_id: probability for page in instance.pages()}


def _resolve_probabilities(
    instance: ProblemInstance,
    access_probabilities: Mapping[int, float] | None,
) -> Mapping[int, float]:
    if access_probabilities is None:
        return uniform_access_probabilities(instance)
    total = sum(access_probabilities.values())
    if not math.isclose(total, 1.0, rel_tol=1e-6):
        raise InvalidInstanceError(
            f"access probabilities sum to {total}, expected 1.0"
        )
    return access_probabilities


def program_average_delay(
    program: BroadcastProgram,
    instance: ProblemInstance,
    access_probabilities: Mapping[int, float] | None = None,
) -> float:
    """AvgD of a concrete program: access-probability-weighted excess wait.

    This is the evaluation metric of Section 5.  Defaults to the paper's
    uniform access model; pass explicit probabilities (e.g. Zipf from
    :mod:`repro.workload.requests`) for the EXT3 extension.
    """
    probabilities = _resolve_probabilities(instance, access_probabilities)
    return sum(
        probabilities[page.page_id]
        * page_average_delay(program, page.page_id, page.expected_time)
        for page in instance.pages()
    )


def program_average_wait(
    program: BroadcastProgram,
    instance: ProblemInstance,
    access_probabilities: Mapping[int, float] | None = None,
) -> float:
    """Expected total wait of a concrete program (broadcast access time)."""
    probabilities = _resolve_probabilities(instance, access_probabilities)
    return sum(
        probabilities[page.page_id]
        * page_average_wait(program, page.page_id)
        for page in instance.pages()
    )


def program_miss_probability(
    program: BroadcastProgram,
    instance: ProblemInstance,
    access_probabilities: Mapping[int, float] | None = None,
) -> float:
    """Probability a random request misses its expected time."""
    probabilities = _resolve_probabilities(instance, access_probabilities)
    return sum(
        probabilities[page.page_id]
        * page_miss_probability(
            program, page.page_id, page.expected_time
        )
        for page in instance.pages()
    )


# ----------------------------------------------------------------------
# Paper objective (Equation 2, literal) and its normalised variant
# ----------------------------------------------------------------------


def _check_vectors(
    frequencies: Sequence[float],
    sizes: Sequence[int],
    times: Sequence[int],
    num_channels: int,
) -> None:
    if not (len(frequencies) == len(sizes) == len(times)):
        raise InvalidInstanceError(
            f"vector lengths differ: S={len(frequencies)}, "
            f"P={len(sizes)}, t={len(times)}"
        )
    if not frequencies:
        raise InvalidInstanceError("empty frequency vector")
    if num_channels <= 0:
        raise InvalidInstanceError(
            f"num_channels must be positive, got {num_channels}"
        )
    for s in frequencies:
        if s < 1:
            raise InvalidInstanceError(
                f"broadcast frequencies must be >= 1, got {list(frequencies)}"
            )


def _ceil_cycle(slots: float, num_channels: int) -> int:
    """Equation (8) cycle length; exact for integer slot counts.

    Frequencies are normally integers, making ``slots`` an int and the
    ceiling exact at any magnitude; fractional frequency vectors (allowed
    by the objective signatures) fall back to the float ceiling.
    """
    if isinstance(slots, int):
        return ceil_div(slots, num_channels)
    return math.ceil(slots / num_channels)


def paper_group_delay(
    frequencies: Sequence[float],
    sizes: Sequence[int],
    times: Sequence[int],
    num_channels: int,
    cycle_length: int | None = None,
) -> float:
    """Average group delay ``D'`` per the paper's Equation (2), literally.

    ``D' = sum_i (S_i P_i / F) * max((F / (N_real S_i) - t_i)
    * ((t_major / S_i - t_i) / 2), 0)`` with ``F = sum S_i P_i`` and
    ``t_major = ceil(F / N_real)`` unless an explicit cycle length is given
    (the staged PAMAD search evaluates truncated prefixes with their own
    stage cycles).

    Note the literal Eq. (2) form multiplies two ``gap - t`` factors without
    re-normalising by the gap; this matches the paper's worked Figure 2(b)
    numbers exactly (see module docstring) and is what PAMAD/OPT minimise.
    """
    _check_vectors(frequencies, sizes, times, num_channels)
    slots = sum(s * p for s, p in zip(frequencies, sizes))
    if cycle_length is None:
        cycle_length = _ceil_cycle(slots, num_channels)
    total = 0.0
    for s_i, p_i, t_i in zip(frequencies, sizes, times):
        weight = (s_i * p_i) / slots
        spacing_real = slots / (num_channels * s_i)
        spacing_cycle = cycle_length / s_i
        # A group whose spacing fits within t_i contributes no delay; the
        # max() must clamp each (spacing - t_i) factor, otherwise two
        # negative factors would multiply into a bogus positive delay.
        term = max(spacing_real - t_i, 0.0) * max(
            (spacing_cycle - t_i) / 2.0, 0.0
        )
        total += weight * term
    return total


def normalized_group_delay(
    frequencies: Sequence[float],
    sizes: Sequence[int],
    times: Sequence[int],
    num_channels: int,
    cycle_length: int | None = None,
) -> float:
    """Section-4.1-faithful variant of :func:`paper_group_delay`.

    Keeps the ``1/gap`` normalisation the staged equations drop:
    per group, expected excess wait is ``max(gap - t, 0)^2 / (2 gap)`` with
    ``gap = t_major / S_i``.  Used by the ABL2 ablation.
    """
    _check_vectors(frequencies, sizes, times, num_channels)
    slots = sum(s * p for s, p in zip(frequencies, sizes))
    if cycle_length is None:
        cycle_length = _ceil_cycle(slots, num_channels)
    total = 0.0
    for s_i, p_i, t_i in zip(frequencies, sizes, times):
        weight = (s_i * p_i) / slots
        gap = cycle_length / s_i
        excess = gap - t_i
        if excess > 0:
            total += weight * (excess * excess) / (2.0 * gap)
    return total


def _check_batch_rows(
    rows: np.ndarray,
    sizes: Sequence[int],
    times: Sequence[int],
) -> None:
    if rows.ndim != 2:
        raise SimulationError(
            f"frequency_rows must be 2-D (m, h), got shape {rows.shape}"
        )
    h = rows.shape[1]
    if h != len(sizes) or h != len(times):
        raise SimulationError(
            f"vector lengths differ: S rows have {h}, P={len(sizes)}, "
            f"t={len(times)}"
        )


def paper_group_delay_batch(
    frequency_rows: "np.ndarray | list",
    sizes: Sequence[int],
    times: Sequence[int],
    num_channels: int,
) -> np.ndarray:
    """Equation (2) for many frequency vectors at once, bit-identical.

    Evaluates :func:`paper_group_delay` for every row of
    ``frequency_rows`` (shape ``(m, h)``, integer frequencies ``>= 1``)
    and returns the ``m`` delays.  The frequency searches call this on
    whole candidate batches instead of looping the scalar objective.

    Bit-identity with the scalar is load-bearing (the pruned searches
    must reproduce the reference tie-breaks exactly), so the kernel
    mirrors the scalar's float operation sequence:

    * ``slots`` and the Equation-8 cycle stay in int64 (exact — the
      scalar uses Python ints; all quantities here are far below 2**53,
      so int64 -> float64 conversions are exact too);
    * every division matches a scalar ``int / int`` (both correctly
      rounded quotients of exactly-represented integers);
    * the per-group accumulation runs as an ordered Python loop over
      groups (``total = total + weight * term`` elementwise), matching
      the scalar's left-to-right sum — *not* ``np.sum``, whose pairwise
      reduction would round differently.
    """
    rows = np.asarray(frequency_rows, dtype=np.int64)
    _check_batch_rows(rows, sizes, times)
    if active_backend() == "numba":
        from repro.core import _numba_kernels

        return _numba_kernels.group_delay_rows_kernel(
            rows,
            np.asarray(sizes, dtype=np.int64),
            np.asarray(times, dtype=np.int64),
            num_channels,
        )
    h = rows.shape[1]
    sizes_arr = np.asarray(sizes, dtype=np.int64)
    slots = rows @ sizes_arr  # exact int64
    cycle = -(-slots // num_channels)  # exact ceil, matches ceil_div
    slots_f = slots.astype(np.float64)
    total = np.zeros(rows.shape[0], dtype=np.float64)
    for i in range(h):
        s_i = rows[:, i]
        weight = (s_i * int(sizes[i])).astype(np.float64) / slots_f
        spacing_real = slots_f / (num_channels * s_i).astype(np.float64)
        spacing_cycle = cycle.astype(np.float64) / s_i.astype(np.float64)
        term = np.maximum(spacing_real - times[i], 0.0) * np.maximum(
            (spacing_cycle - times[i]) / 2.0, 0.0
        )
        total = total + weight * term
    return total


def normalized_group_delay_batch(
    frequency_rows: "np.ndarray | list",
    sizes: Sequence[int],
    times: Sequence[int],
    num_channels: int,
) -> np.ndarray:
    """:func:`normalized_group_delay` for many frequency vectors at once.

    Same exactness recipe as :func:`paper_group_delay_batch` (int64
    slots/cycle, scalar-matching division order, ordered per-group
    accumulation).  The scalar only accumulates groups whose excess is
    positive; adding an exact 0.0 for the others is the identical float
    sum, so a clamp reproduces the conditional.
    """
    rows = np.asarray(frequency_rows, dtype=np.int64)
    _check_batch_rows(rows, sizes, times)
    if active_backend() == "numba":
        from repro.core import _numba_kernels

        return _numba_kernels.normalized_group_delay_rows_kernel(
            rows,
            np.asarray(sizes, dtype=np.int64),
            np.asarray(times, dtype=np.int64),
            num_channels,
        )
    h = rows.shape[1]
    sizes_arr = np.asarray(sizes, dtype=np.int64)
    slots = rows @ sizes_arr
    cycle = -(-slots // num_channels)
    slots_f = slots.astype(np.float64)
    cycle_f = cycle.astype(np.float64)
    total = np.zeros(rows.shape[0], dtype=np.float64)
    for i in range(h):
        s_i = rows[:, i]
        weight = (s_i * int(sizes[i])).astype(np.float64) / slots_f
        gap = cycle_f / s_i.astype(np.float64)
        excess = np.maximum(gap - times[i], 0.0)
        total = total + np.where(
            excess > 0.0,
            weight * (excess * excess) / (2.0 * gap),
            0.0,
        )
    return total


def even_spread_page_delay(
    cycle_length: int, frequency: int, expected_time: int
) -> float:
    """Section 4.2 single-page delay under perfectly even spreading.

    With ``s`` evenly spread appearances in a cycle ``t_major``, every gap
    is ``floor(t_major / s)`` and the per-page average delay is
    ``max(floor(t_major/s) - t, 0)^2 / (2 floor(t_major/s))``.
    """
    if frequency < 1:
        raise InvalidInstanceError(
            f"frequency must be >= 1, got {frequency}"
        )
    gap = cycle_length // frequency
    if gap <= 0:
        return 0.0
    excess = gap - expected_time
    if excess <= 0:
        return 0.0
    return (excess * excess) / (2.0 * gap)
