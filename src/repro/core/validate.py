"""Validity checking for broadcast programs (Section 3.1).

The paper defines a *valid broadcast program* by two conditions:

1. every page ``p_{i,j}`` is broadcast at least once between the program
   start and time ``t_i`` (so a client tuning in right at the start still
   meets its deadline), and
2. the time between consecutive broadcasts of ``p_{i,j}`` never exceeds
   ``t_i``.

Because broadcast programs repeat cyclically, condition 2 is checked on the
*cyclic* gaps (including the wrap-around gap from the last appearance back
to the first in the next cycle); together with condition 1 this is exactly
"no matter when a client starts to listen, it waits at most ``t_i``".

The checker returns a structured report rather than a bare boolean so tests
and the CLI can explain *why* a program is invalid (which page, which gap).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.core.errors import ProgramValidationError
from repro.core.pages import ProblemInstance
from repro.core.program import BroadcastProgram

__all__ = [
    "ViolationKind",
    "Violation",
    "ValidationReport",
    "validate_program",
    "assert_valid_program",
    "worst_case_wait",
]


class ViolationKind(Enum):
    """The ways a program can fail the Section 3.1 validity conditions."""

    MISSING_PAGE = "missing-page"
    LATE_FIRST_APPEARANCE = "late-first-appearance"
    GAP_EXCEEDS_EXPECTED_TIME = "gap-exceeds-expected-time"
    UNKNOWN_PAGE = "unknown-page"


@dataclass(frozen=True, slots=True)
class Violation:
    """One validity violation, with enough context to debug it."""

    kind: ViolationKind
    page_id: int
    detail: str

    def __str__(self) -> str:
        return f"[{self.kind.value}] page {self.page_id}: {self.detail}"


@dataclass(frozen=True)
class ValidationReport:
    """Outcome of validating a program against an instance.

    Attributes:
        violations: Every violation found (empty iff the program is valid).
        max_excess_wait: Worst slack beyond the expected time over all pages
            and arrival instants — 0 for a valid program; for invalid
            programs this is the worst-case extra wait a client can suffer.
    """

    violations: tuple[Violation, ...]
    max_excess_wait: float

    @property
    def ok(self) -> bool:
        """True iff the program satisfies both validity conditions."""
        return not self.violations

    def summary(self) -> str:
        """One-line human-readable verdict."""
        if self.ok:
            return "valid broadcast program"
        return (
            f"invalid: {len(self.violations)} violation(s), worst excess "
            f"wait {self.max_excess_wait:.2f} slots"
        )


def worst_case_wait(program: BroadcastProgram, page_id: int) -> int:
    """Longest wait any client can experience for ``page_id``.

    Equals the largest cyclic gap: a client arriving immediately after a
    broadcast starts waits the full gap to the next one.
    """
    return max(program.cyclic_gaps(page_id))


def validate_program(
    program: BroadcastProgram, instance: ProblemInstance
) -> ValidationReport:
    """Check the two Section 3.1 conditions for every page of ``instance``.

    Pages present in the program but absent from the instance are also
    flagged (schedulers must not invent pages).

    Args:
        program: The broadcast program to check.
        instance: The problem instance defining pages and expected times.

    Returns:
        A :class:`ValidationReport`; ``report.ok`` is the validity verdict.
    """
    violations: list[Violation] = []
    max_excess = 0.0
    known_ids = {page.page_id for page in instance.pages()}

    for extra in sorted(program.page_ids() - known_ids):
        violations.append(
            Violation(
                kind=ViolationKind.UNKNOWN_PAGE,
                page_id=extra,
                detail="appears in the program but not in the instance",
            )
        )

    for page in instance.pages():
        slots = program.appearance_slots(page.page_id)
        if not slots:
            violations.append(
                Violation(
                    kind=ViolationKind.MISSING_PAGE,
                    page_id=page.page_id,
                    detail="never broadcast",
                )
            )
            max_excess = float("inf")
            continue
        # Condition 1: first appearance within the first t_i slots.
        # 0-based: slot index strictly below t_i means the broadcast begins
        # no later than the paper's (1-based) time t_i.
        first = slots[0]
        if first >= page.expected_time:
            violations.append(
                Violation(
                    kind=ViolationKind.LATE_FIRST_APPEARANCE,
                    page_id=page.page_id,
                    detail=(
                        f"first broadcast at slot {first} (0-based) but "
                        f"expected time is {page.expected_time}"
                    ),
                )
            )
        # Condition 2: every cyclic gap within t_i.
        for gap in program.cyclic_gaps(page.page_id):
            if gap > page.expected_time:
                violations.append(
                    Violation(
                        kind=ViolationKind.GAP_EXCEEDS_EXPECTED_TIME,
                        page_id=page.page_id,
                        detail=(
                            f"gap of {gap} slots exceeds expected time "
                            f"{page.expected_time}"
                        ),
                    )
                )
                max_excess = max(max_excess, gap - page.expected_time)

    return ValidationReport(
        violations=tuple(violations), max_excess_wait=max_excess
    )


def assert_valid_program(
    program: BroadcastProgram, instance: ProblemInstance
) -> None:
    """Raise :class:`ProgramValidationError` if the program is invalid.

    Used as a post-condition by SUSC (which guarantees validity under
    sufficient channels) and by tests.
    """
    report = validate_program(program, instance)
    if not report.ok:
        details = "; ".join(str(v) for v in report.violations[:5])
        more = (
            f" (+{len(report.violations) - 5} more)"
            if len(report.violations) > 5
            else ""
        )
        raise ProgramValidationError(f"{report.summary()}: {details}{more}")
