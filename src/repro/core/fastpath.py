"""Fast placement kernels — byte-identical to the reference scans.

The reference implementations of Algorithm 4 (:mod:`repro.core.pamad`)
and Algorithm 1/2 (:mod:`repro.core.susc`) probe the program grid cell by
cell through :class:`~repro.core.program.BroadcastProgram` accessors.
That is the right shape for reading the paper, but every probe pays
bounds checks and method dispatch, and the column/window scans are
quadratic in practice.  The kernels here compute *exactly the same
placements* on numpy occupancy arrays — no per-slot Python loop anywhere
on the placement path — and materialise the finished grid in one pass
via :meth:`BroadcastProgram.from_array`.

Why the outputs are provably identical:

* **Prefix-occupancy invariant.**  Algorithm-4 placement only ever fills
  a column through "first free channel in this column" and never clears
  a cell, so the occupied channels of any column are exactly
  ``0..fill-1``.  The free cells of the grid, enumerated column-major,
  are therefore fully described by the per-column ``fill`` counts — and
  a prefix-sum over ``num_channels - fill`` ranks every free cell.
* **Static-window batch argument (Algorithm 4).**  The reference places
  pages of one group round-robin over that group's windows (page outer,
  window inner).  Windows tile the cycle disjointly, so — as long as no
  window overflows — every placement stays inside its own window and
  window ``k``'s free-cell supply is consumed in column-major rank
  order, page by page.  Checking up front that every window holds at
  least ``|group|`` free cells therefore licenses placing the whole
  group with one fancy-indexed write: page ``j`` of window ``k`` lands
  on the window's ``j``-th ranked free cell, exactly where the
  reference scan puts it.  A group with an overflowing window falls
  back to a per-placement pointer-jumping loop that replays the
  reference's cyclic-fallback order (and its ``window_misses`` count).
* **Static-window batch argument (SUSC).**  A page's periodic copies
  land at ``start + k * t_i`` with ``start < t_i``, so copies never
  re-enter the ``[0, t_i)`` window of the channel that hosts them.
  While one expected-time run of pages is being placed, each channel's
  free-slot set inside the window is therefore static, and the
  reference's page-by-page channel scan degenerates to: fill channel
  0's free window slots in ascending order, then channel 1's, and so
  on.  One ``flatnonzero`` per (run, channel) plus a masked periodic
  write reproduces that exactly; a per-channel first-free cursor (the
  same monotone cursor as ``schedule_susc(optimized=True)``) decides
  window eligibility without rescanning.

Property tests (:mod:`tests.test_fastpath`) pin the equality: for every
instance the fast kernels produce grid-identical programs, identical
``window_misses`` counts and identical error behaviour.  The kernels
also have an optional numba-compiled variant (:mod:`repro.core.backend`)
gated by the same tests.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.backend import active_backend
from repro.core.errors import SchedulingError, SearchSpaceError
from repro.core.intmath import ceil_div
from repro.core.pages import ProblemInstance
from repro.core.program import BroadcastProgram, SlotRef

__all__ = [
    "place_by_frequency_fast",
    "place_sequential_fast",
    "susc_fill_fast",
]


def _check_frequencies(
    instance: ProblemInstance, frequencies: Sequence[int]
) -> None:
    """The reference placement functions' validation, messages included."""
    if len(frequencies) != instance.h:
        raise SearchSpaceError(
            f"got {len(frequencies)} frequencies for h={instance.h} groups"
        )
    if any(s < 1 for s in frequencies):
        raise SearchSpaceError(
            f"frequencies must be >= 1, got {list(frequencies)}"
        )


def _make_find(next_free: list[int]):
    """First non-full column at or after ``c`` with path compression."""

    def find(column: int) -> int:
        root = column
        while next_free[root] != root:
            root = next_free[root]
        while next_free[column] != root:
            column, next_free[column] = next_free[column], root
        return root

    return find


def _flat_placement_order(
    instance: ProblemInstance,
    frequencies: Sequence[int],
    order: list[int],
) -> tuple[np.ndarray, np.ndarray]:
    """Pages flattened in descending-frequency group order, with S_i."""
    page_ids: list[int] = []
    page_freqs: list[int] = []
    for group_position in order:
        group = instance.groups[group_position]
        s_i = int(frequencies[group_position])
        for page in group.pages:
            page_ids.append(page.page_id)
            page_freqs.append(s_i)
    return (
        np.asarray(page_ids, dtype=np.int64),
        np.asarray(page_freqs, dtype=np.int64),
    )


def _place_group_fallback(
    grid: np.ndarray,
    fill: np.ndarray,
    pages,
    s_i: int,
    cycle: int,
    num_channels: int,
    total_slots: int,
) -> int:
    """Reference-order placement for one group with an overflowing window.

    Once any window of a group can overflow, placements leak into other
    windows and the batch argument no longer holds — so this group runs
    the per-placement pointer-jumping loop (amortised O(1) per
    placement, no per-slot scan), reproducing the reference's cyclic
    fallback order and its ``window_misses`` count exactly.
    """
    next_free = list(range(cycle + 1))
    for column in np.flatnonzero(fill == num_channels).tolist():
        next_free[column] = column + 1
    find = _make_find(next_free)
    misses = 0
    for page in pages:
        page_id = page.page_id
        for k in range(s_i):
            window_start = ceil_div(cycle * k, s_i)
            window_end = ceil_div(cycle * (k + 1), s_i)  # exclusive
            column = find(window_start)
            if column >= min(window_end, cycle):
                # Window full: the reference falls back to a cyclic
                # scan from window_start — first free in
                # [window_start, cycle), else first free in
                # [0, window_start).
                misses += 1
                if column >= cycle:
                    column = find(0)
                    if column >= window_start:
                        raise SchedulingError(
                            f"no free slot anywhere in the cycle for "
                            f"page {page_id} copy {k + 1}/{s_i}; "
                            f"cycle length {cycle} cannot hold "
                            f"{total_slots} slots"
                        )
            channel = int(fill[column])
            grid[channel, column] = page_id
            fill[column] = channel + 1
            if channel + 1 == num_channels:
                next_free[column] = column + 1
    return misses


def place_by_frequency_fast(
    instance: ProblemInstance,
    frequencies: Sequence[int],
    num_channels: int,
) -> tuple[BroadcastProgram, int]:
    """Algorithm-4 placement as array kernels; grid-identical to the reference.

    Returns ``(program, window_misses)`` — the same pair the reference
    :func:`repro.core.pamad.place_by_frequency` wraps in its
    ``PlacementResult``.
    """
    _check_frequencies(instance, frequencies)
    total_slots = sum(
        s * group.size for s, group in zip(frequencies, instance.groups)
    )
    cycle = ceil_div(total_slots, num_channels)
    grid = np.full((num_channels, cycle), -1, dtype=np.int64)
    fill = np.zeros(cycle, dtype=np.int64)

    order = sorted(
        range(instance.h), key=lambda i: frequencies[i], reverse=True
    )
    if active_backend() == "numba":
        from repro.core import _numba_kernels

        page_ids, page_freqs = _flat_placement_order(
            instance, frequencies, order
        )
        misses, fail_pos, fail_k = (
            _numba_kernels.place_by_frequency_kernel(
                grid, fill, page_ids, page_freqs, cycle, num_channels
            )
        )
        if fail_pos >= 0:
            s_i = int(page_freqs[fail_pos])
            raise SchedulingError(
                f"no free slot anywhere in the cycle for page "
                f"{int(page_ids[fail_pos])} copy {fail_k + 1}/{s_i}; "
                f"cycle length {cycle} cannot hold {total_slots} slots"
            )
        return BroadcastProgram.from_array(grid), int(misses)
    window_misses = 0
    for group_position in order:
        group = instance.groups[group_position]
        s_i = frequencies[group_position]
        m = group.size
        if m == 0:
            continue
        bounds = -(-cycle * np.arange(s_i + 1, dtype=np.int64) // s_i)
        starts = bounds[:-1]
        ends = np.minimum(bounds[1:], cycle)
        free_per_col = num_channels - fill
        cumfree = np.concatenate(([0], np.cumsum(free_per_col)))
        counts = cumfree[ends] - cumfree[starts]
        if int(counts.min()) < m:
            window_misses += _place_group_fallback(
                grid, fill, group.pages, s_i, cycle, num_channels,
                total_slots,
            )
            continue
        # No window can overflow: rank every free cell column-major and
        # hand window k's ranks [cumfree[start_k], cumfree[start_k] + m)
        # to the group's pages in order.
        page_ids = np.fromiter(
            (page.page_id for page in group.pages),
            dtype=np.int64,
            count=m,
        )
        col_of_rank = np.repeat(np.arange(cycle), free_per_col)
        ranks = (
            cumfree[starts][:, None]
            + np.arange(m, dtype=np.int64)[None, :]
        ).ravel()
        cols = col_of_rank[ranks]
        chans = fill[cols] + (ranks - cumfree[cols])
        grid[chans, cols] = np.broadcast_to(page_ids, (s_i, m)).ravel()
        fill += np.bincount(cols, minlength=cycle)
    return BroadcastProgram.from_array(grid), window_misses


def place_sequential_fast(
    instance: ProblemInstance,
    frequencies: Sequence[int],
    num_channels: int,
) -> tuple[BroadcastProgram, int]:
    """Sequential (ABL3 strawman) placement as one reshape.

    Grid-identical to :func:`repro.core.pamad.place_sequential`: from an
    empty grid the reference's frontier cursor consumes cells in strict
    column-major order and can never exhaust the frontier early (the
    Equation-8 cycle holds every copy), so the whole placement is the
    flattened repeat sequence laid column-major over the grid.
    """
    _check_frequencies(instance, frequencies)
    total_slots = sum(
        s * group.size for s, group in zip(frequencies, instance.groups)
    )
    cycle = ceil_div(total_slots, num_channels)
    order = sorted(
        range(instance.h), key=lambda i: frequencies[i], reverse=True
    )
    if active_backend() == "numba":
        from repro.core import _numba_kernels

        grid = np.full((num_channels, cycle), -1, dtype=np.int64)
        fill = np.zeros(cycle, dtype=np.int64)
        page_ids, page_freqs = _flat_placement_order(
            instance, frequencies, order
        )
        fail_pos = _numba_kernels.place_sequential_kernel(
            grid, fill, page_ids, page_freqs, cycle, num_channels
        )
        if fail_pos >= 0:
            raise SchedulingError(
                f"grid full before placing page {int(page_ids[fail_pos])}"
            )
        return BroadcastProgram.from_array(grid), 0
    parts = []
    for group_position in order:
        group = instance.groups[group_position]
        ids = np.fromiter(
            (page.page_id for page in group.pages),
            dtype=np.int64,
            count=group.size,
        )
        parts.append(np.repeat(ids, frequencies[group_position]))
    values = np.concatenate(parts)
    flat = np.full(cycle * num_channels, -1, dtype=np.int64)
    flat[: values.size] = values
    grid = flat.reshape(cycle, num_channels).T
    return BroadcastProgram.from_array(grid), 0


def susc_fill_fast(
    instance: ProblemInstance, num_channels: int
) -> tuple[BroadcastProgram, dict[int, SlotRef]]:
    """Algorithm 1/2 fill as array kernels; grid-identical to the reference.

    Returns ``(program, first_slots)``; the caller
    (:func:`repro.core.susc.schedule_susc`) owns bound checking and
    validation.
    """
    cycle = instance.max_expected_time
    grid = np.full((num_channels, cycle), -1, dtype=np.int64)
    if active_backend() == "numba":
        from repro.core import _numba_kernels

        pages = list(instance.pages())
        page_ids = np.asarray(
            [page.page_id for page in pages], dtype=np.int64
        )
        windows = np.asarray(
            [page.expected_time for page in pages], dtype=np.int64
        )
        anchors = np.full((len(pages), 2), -1, dtype=np.int64)
        status, pos, channel, slot = _numba_kernels.susc_fill_kernel(
            grid, page_ids, windows, anchors, cycle, num_channels
        )
        if status == 2:
            raise SchedulingError(
                f"Theorem 3.3 violated: periodic slot "
                f"(ch={channel}, slot={slot}) for {pages[pos]} is "
                f"already occupied"
            )
        if status == 1:
            raise SchedulingError(
                f"GetAvailableSlot found no free slot for {pages[pos]} "
                f"in the first {int(windows[pos])} slots of any of "
                f"{num_channels} channels — Theorem 3.2 violated "
                "(channel count below the bound, or a placement bug)"
            )
        return BroadcastProgram.from_array(grid), {
            page.page_id: SlotRef(
                slot=int(anchors[i, 0]), channel=int(anchors[i, 1])
            )
            for i, page in enumerate(pages)
        }
    # First truly-free slot per channel (== the reference cursor);
    # ``cursor < window`` is exactly GetAvailableSlot's acceptance test.
    cursors = np.zeros(num_channels, dtype=np.int64)
    first_slots: dict[int, SlotRef] = {}

    groups = instance.groups
    index = 0
    while index < len(groups):
        window = groups[index].expected_time
        run = list(groups[index].pages)
        index += 1
        while (
            index < len(groups)
            and groups[index].expected_time == window
        ):
            run.extend(groups[index].pages)
            index += 1

        reps = ceil_div(cycle, window)
        offsets = np.arange(reps, dtype=np.int64) * window
        position = 0
        for channel in np.flatnonzero(cursors < window).tolist():
            if position >= len(run):
                break
            row = grid[channel]
            free_window = np.flatnonzero(row[:window] == -1)
            take = min(free_window.size, len(run) - position)
            chunk = run[position: position + take]
            starts = free_window[:take]
            slots = starts[:, None] + offsets[None, :]
            mask = slots < cycle
            flat_slots = slots[mask]  # row-major: page order, then copy
            occupied = row[flat_slots] != -1
            if occupied.any():
                first_bad = int(np.argmax(occupied))
                per_page = np.cumsum(mask.sum(axis=1))
                page = chunk[
                    int(np.searchsorted(per_page, first_bad, side="right"))
                ]
                raise SchedulingError(
                    f"Theorem 3.3 violated: periodic slot "
                    f"(ch={channel}, slot={int(flat_slots[first_bad])}) "
                    f"for {page} is already occupied"
                )
            row[flat_slots] = np.repeat(
                np.fromiter(
                    (page.page_id for page in chunk),
                    dtype=np.int64,
                    count=take,
                ),
                mask.sum(axis=1),
            )
            starts_list = starts.tolist()
            for offset, page in enumerate(chunk):
                first_slots[page.page_id] = SlotRef(
                    slot=starts_list[offset], channel=channel
                )
            remaining_free = np.flatnonzero(row == -1)
            cursors[channel] = (
                remaining_free[0] if remaining_free.size else cycle
            )
            position += take
        if position < len(run):
            page = run[position]
            raise SchedulingError(
                f"GetAvailableSlot found no free slot for {page} in the "
                f"first {window} slots of any of {num_channels} "
                "channels — Theorem 3.2 violated (channel count below "
                "the bound, or a placement bug)"
            )
    return BroadcastProgram.from_array(grid), first_slots
