"""Fast placement kernels — byte-identical to the reference scans.

The reference implementations of Algorithm 4 (:mod:`repro.core.pamad`)
and Algorithm 1/2 (:mod:`repro.core.susc`) probe the program grid cell by
cell through :class:`~repro.core.program.BroadcastProgram` accessors.
That is the right shape for reading the paper, but every probe pays
bounds checks and method dispatch, and the column/window scans are
quadratic in practice.  The kernels here compute *exactly the same
placements* on raw Python lists and materialise the finished grid in one
pass via :meth:`BroadcastProgram.from_grid`.

Why the outputs are provably identical:

* **Prefix-occupancy invariant.**  Both placement algorithms only ever
  fill a column through "first free channel in this column" and never
  clear a cell, so the occupied channels of any column are exactly
  ``0..fill-1``.  The reference's ``free_channel_in_column(c)`` is
  therefore ``fill[c]`` (or ``None`` when the column is full), and a
  per-column fill counter replaces the channel scan.
* **Next-free-column structure.**  "First non-full column at or after
  ``c``" is answered by a pointer-jumping array with path compression
  (full columns link forward), amortised O(1) per query — returning the
  same column the reference's left-to-right scan would.
* **SUSC cursor argument.**  Each channel's occupied prefix only grows
  (first-free placement plus forward periodic copies), so a per-channel
  cursor to the first free slot never moves backwards; ``cursor < t_i``
  decides window membership exactly as the naive Algorithm-2 scan does.
  This is the same argument behind ``schedule_susc(optimized=True)``,
  applied to raw rows.

Property tests (:mod:`tests.test_fastpath`) pin the equality: for every
instance the fast kernels produce grid-identical programs, identical
``window_misses`` counts and identical error behaviour.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.errors import SchedulingError, SearchSpaceError
from repro.core.intmath import ceil_div
from repro.core.pages import ProblemInstance
from repro.core.program import BroadcastProgram, SlotRef

__all__ = [
    "place_by_frequency_fast",
    "place_sequential_fast",
    "susc_fill_fast",
]


def _check_frequencies(
    instance: ProblemInstance, frequencies: Sequence[int]
) -> None:
    """The reference placement functions' validation, messages included."""
    if len(frequencies) != instance.h:
        raise SearchSpaceError(
            f"got {len(frequencies)} frequencies for h={instance.h} groups"
        )
    if any(s < 1 for s in frequencies):
        raise SearchSpaceError(
            f"frequencies must be >= 1, got {list(frequencies)}"
        )


def _make_find(next_free: list[int]):
    """First non-full column at or after ``c`` with path compression."""

    def find(column: int) -> int:
        root = column
        while next_free[root] != root:
            root = next_free[root]
        while next_free[column] != root:
            column, next_free[column] = next_free[column], root
        return root

    return find


def place_by_frequency_fast(
    instance: ProblemInstance,
    frequencies: Sequence[int],
    num_channels: int,
) -> tuple[BroadcastProgram, int]:
    """Algorithm-4 placement on raw arrays; grid-identical to the reference.

    Returns ``(program, window_misses)`` — the same pair the reference
    :func:`repro.core.pamad.place_by_frequency` wraps in its
    ``PlacementResult``.
    """
    _check_frequencies(instance, frequencies)
    total_slots = sum(
        s * group.size for s, group in zip(frequencies, instance.groups)
    )
    cycle = ceil_div(total_slots, num_channels)
    rows: list[list[int | None]] = [
        [None] * cycle for _ in range(num_channels)
    ]
    fill = [0] * cycle
    next_free = list(range(cycle + 1))
    find = _make_find(next_free)

    order = sorted(
        range(instance.h), key=lambda i: frequencies[i], reverse=True
    )
    window_misses = 0
    for group_position in order:
        group = instance.groups[group_position]
        s_i = frequencies[group_position]
        for page in group.pages:
            page_id = page.page_id
            for k in range(s_i):
                window_start = ceil_div(cycle * k, s_i)
                window_end = ceil_div(cycle * (k + 1), s_i)  # exclusive
                column = find(window_start)
                if column >= min(window_end, cycle):
                    # Window full: the reference falls back to a cyclic
                    # scan from window_start — first free in
                    # [window_start, cycle), else first free in
                    # [0, window_start).
                    window_misses += 1
                    if column >= cycle:
                        column = find(0)
                        if column >= window_start:
                            raise SchedulingError(
                                f"no free slot anywhere in the cycle for "
                                f"page {page_id} copy {k + 1}/{s_i}; "
                                f"cycle length {cycle} cannot hold "
                                f"{total_slots} slots"
                            )
                channel = fill[column]
                rows[channel][column] = page_id
                fill[column] = channel + 1
                if channel + 1 == num_channels:
                    next_free[column] = column + 1
    return BroadcastProgram.from_grid(rows), window_misses


def place_sequential_fast(
    instance: ProblemInstance,
    frequencies: Sequence[int],
    num_channels: int,
) -> tuple[BroadcastProgram, int]:
    """Sequential (ABL3 strawman) placement on raw arrays.

    Grid-identical to :func:`repro.core.pamad.place_sequential`,
    including the cursor-reset-then-rescan behaviour when the frontier
    hits the end of the cycle.
    """
    _check_frequencies(instance, frequencies)
    total_slots = sum(
        s * group.size for s, group in zip(frequencies, instance.groups)
    )
    cycle = ceil_div(total_slots, num_channels)
    rows: list[list[int | None]] = [
        [None] * cycle for _ in range(num_channels)
    ]
    fill = [0] * cycle
    next_free = list(range(cycle + 1))
    find = _make_find(next_free)

    cursor = 0  # column of the last successful frontier placement
    order = sorted(
        range(instance.h), key=lambda i: frequencies[i], reverse=True
    )
    for group_position in order:
        group = instance.groups[group_position]
        s_i = frequencies[group_position]
        for page in group.pages:
            page_id = page.page_id
            for _ in range(s_i):
                column = find(cursor)
                if column < cycle:
                    cursor = column
                else:
                    # Frontier exhausted: the reference resets the cursor
                    # and rescans from the start once.
                    cursor = 0
                    column = find(0)
                    if column >= cycle:
                        raise SchedulingError(
                            f"grid full before placing page {page_id}"
                        )
                channel = fill[column]
                rows[channel][column] = page_id
                fill[column] = channel + 1
                if channel + 1 == num_channels:
                    next_free[column] = column + 1
    return BroadcastProgram.from_grid(rows), 0


def susc_fill_fast(
    instance: ProblemInstance, num_channels: int
) -> tuple[BroadcastProgram, dict[int, SlotRef]]:
    """Algorithm 1/2 fill on raw rows; grid-identical to the reference.

    Returns ``(program, first_slots)``; the caller
    (:func:`repro.core.susc.schedule_susc`) owns bound checking and
    validation.
    """
    cycle = instance.max_expected_time
    rows: list[list[int | None]] = [
        [None] * cycle for _ in range(num_channels)
    ]
    cursors = [0] * num_channels
    first_slots: dict[int, SlotRef] = {}

    for page in instance.pages_sorted_for_susc():
        window = page.expected_time
        start_channel = -1
        start_slot = 0
        for channel in range(num_channels):
            cursor = cursors[channel]
            row = rows[channel]
            while cursor < cycle and row[cursor] is not None:
                cursor += 1
            cursors[channel] = cursor
            if cursor < window:
                start_channel = channel
                start_slot = cursor
                break
        if start_channel < 0:
            raise SchedulingError(
                f"GetAvailableSlot found no free slot for {page} in the "
                f"first {window} slots of any of {num_channels} "
                "channels — Theorem 3.2 violated (channel count below "
                "the bound, or a placement bug)"
            )
        first_slots[page.page_id] = SlotRef(
            slot=start_slot, channel=start_channel
        )
        page_id = page.page_id
        row = rows[start_channel]
        for slot in range(start_slot, cycle, window):
            if row[slot] is not None:
                raise SchedulingError(
                    f"Theorem 3.3 violated: periodic slot "
                    f"(ch={start_channel}, slot={slot}) for {page} is "
                    "already occupied"
                )
            row[slot] = page_id
    return BroadcastProgram.from_grid(rows), first_slots
