"""Seeded mutation-stream generator for the live service runtime.

Produces the churn timelines :class:`~repro.live.service.
LiveBroadcastService` replays: page inserts, removals and expected-time
retunes at integer slot boundaries, interleaved with fractional-time
listener arrivals.  The generator is a pure function of its seed —
identical arguments always yield the identical trace, which is what lets
the CI smoke job diff two independent replays byte for byte.

Structural guarantees:

* new and retuned expected times are drawn from the *initial ladder* of
  the instance, so every reachable catalog stays on one divisibility
  ladder and :meth:`~repro.live.catalog.LiveCatalog.to_instance` always
  succeeds;
* kinds are drawn against a *shadow catalog* that applies every mutation
  unconditionally (the trace never removes an unknown page or
  re-inserts a live one), so the same trace is meaningful whether the
  replaying service has admission control on or off;
* listeners are attributed the deadline the shadow catalog promised at
  their arrival time, so deadline misses stay well-defined even when the
  service later rejects the page or retunes it.
"""

from __future__ import annotations

import bisect
import random
from typing import Mapping

from repro.core.errors import WorkloadError
from repro.core.pages import ProblemInstance

# Deliberately the modules, not the repro.live package: keeps the
# workload <-> live import graph acyclic.
from repro.live.mutations import MutationEvent, MutationTrace

__all__ = ["generate_mutation_trace"]

#: Relative draw weights for the catalog mutation kinds.
_KIND_WEIGHTS = (
    ("page_insert", 0.45),
    ("page_remove", 0.30),
    ("page_retune", 0.25),
)


def generate_mutation_trace(
    instance: ProblemInstance,
    *,
    seed: int = 0,
    horizon: int = 64,
    mutations: int = 20,
    listeners: int = 60,
    meta: Mapping[str, object] | None = None,
) -> MutationTrace:
    """Generate a seeded churn timeline for ``instance``.

    Args:
        instance: The catalog on air at ``t=0``; its expected-time
            ladder is the pool new deadlines are drawn from.
        seed: RNG seed; the trace is a pure function of all arguments.
        horizon: Timeline length in slots (every event lands before it).
        mutations: Number of catalog mutations to draw.
        listeners: Number of listener arrivals to draw.
        meta: Extra provenance merged into the trace ``meta`` block.

    Returns:
        A :class:`~repro.live.mutations.MutationTrace` whose ``meta``
        records the generator name and all drawing parameters.
    """
    if horizon < 2:
        raise WorkloadError(f"horizon must be >= 2, got {horizon}")
    if mutations < 0 or listeners < 0:
        raise WorkloadError(
            f"mutations and listeners must be >= 0, got "
            f"{mutations}, {listeners}"
        )
    rng = random.Random(seed)
    ladder = sorted({page.expected_time for page in instance.pages()})
    shadow: dict[int, int] = {
        page.page_id: page.expected_time for page in instance.pages()
    }
    next_page_id = max(shadow) + 1

    events: list[MutationEvent] = []
    seen: set[tuple] = set()

    # --- catalog mutations, drawn chronologically against the shadow ---
    times = sorted(rng.randrange(1, horizon) for _ in range(mutations))
    # (time, snapshot) checkpoints so listeners can be attributed the
    # deadline in force at their arrival.
    checkpoints: list[tuple[float, dict[int, int]]] = [(0.0, dict(shadow))]
    for slot in times:
        kinds = [k for k, _ in _KIND_WEIGHTS]
        weights = [w for _, w in _KIND_WEIGHTS]
        kind = rng.choices(kinds, weights=weights, k=1)[0]
        if kind == "page_remove" and len(shadow) <= 1:
            kind = "page_insert"
        if kind == "page_retune" and len(ladder) == 1:
            kind = "page_insert"
        if kind == "page_insert":
            page_id = next_page_id
            next_page_id += 1
            expected = rng.choice(ladder)
            event = MutationEvent(
                time=float(slot),
                kind="page_insert",
                page_id=page_id,
                expected_time=expected,
            )
            shadow[page_id] = expected
        elif kind == "page_remove":
            page_id = rng.choice(sorted(shadow))
            event = MutationEvent(
                time=float(slot), kind="page_remove", page_id=page_id
            )
            del shadow[page_id]
        else:
            page_id = rng.choice(sorted(shadow))
            choices = [t for t in ladder if t != shadow[page_id]]
            expected = rng.choice(choices) if choices else shadow[page_id]
            event = MutationEvent(
                time=float(slot),
                kind="page_retune",
                page_id=page_id,
                expected_time=expected,
            )
            shadow[page_id] = expected
        key = (event.time, event.kind, event.page_id)
        if key in seen:
            continue  # same page, same kind, same slot: drop the repeat
        seen.add(key)
        events.append(event)
        checkpoints.append((float(slot), dict(shadow)))

    # --- listeners, attributed the deadline in force at arrival --------
    checkpoint_times = [t for t, _ in checkpoints]
    for _ in range(listeners):
        arrival = round(rng.uniform(0.0, horizon - 0.001), 3)
        index = bisect.bisect_right(checkpoint_times, arrival) - 1
        catalog_then = checkpoints[index][1]
        page_id = rng.choice(sorted(catalog_then))
        event = MutationEvent(
            time=arrival,
            kind="listener",
            page_id=page_id,
            expected_time=catalog_then[page_id],
        )
        key = (event.time, event.kind, event.page_id)
        if key in seen:
            continue
        seen.add(key)
        events.append(event)

    trace_meta: dict[str, object] = {
        "generator": "generate_mutation_trace",
        "seed": seed,
        "horizon": horizon,
        "mutations": mutations,
        "listeners": listeners,
        "ladder": list(ladder),
        "initial_pages": instance.n,
    }
    if meta:
        trace_meta.update(dict(meta))
    return MutationTrace(
        horizon=horizon, events=tuple(events), meta=trace_meta
    )
