"""Workload generation: Figure-3 distributions, instances, request streams."""

from repro.workload.distributions import (
    DISTRIBUTION_NAMES,
    apportion,
    group_sizes,
    l_skewed_sizes,
    normal_sizes,
    s_skewed_sizes,
    uniform_sizes,
)
from repro.workload.generator import (
    PAPER_DEFAULTS,
    PaperParameters,
    paper_expected_times,
    paper_instance,
    random_instance,
)
from repro.workload.mutations import generate_mutation_trace
from repro.workload.requests import (
    Request,
    generate_requests,
    uniform_access_model,
    zipf_access_model,
)
from repro.workload.trace import RequestTrace, record_trace, replay_trace

__all__ = [
    "DISTRIBUTION_NAMES",
    "PAPER_DEFAULTS",
    "PaperParameters",
    "Request",
    "RequestTrace",
    "apportion",
    "generate_mutation_trace",
    "generate_requests",
    "group_sizes",
    "l_skewed_sizes",
    "normal_sizes",
    "paper_expected_times",
    "paper_instance",
    "random_instance",
    "record_trace",
    "replay_trace",
    "s_skewed_sizes",
    "uniform_access_model",
    "uniform_sizes",
    "zipf_access_model",
]
