"""Request traces — record once, replay everywhere.

Comparing two schedulers on *independently sampled* request streams mixes
algorithmic differences with sampling noise.  The standard remedy is
common random numbers: record one request trace and replay it against
every program under comparison.  (The arrival times are fractions of the
cycle rather than absolute slots, so one trace is meaningful across
programs with different cycle lengths.)

Traces serialise to JSON Lines — one request per line — so large traces
stream without loading whole files.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Mapping

from repro.core.errors import WorkloadError
from repro.core.pages import ProblemInstance
from repro.core.program import BroadcastProgram
from repro.workload.requests import Request

__all__ = ["RequestTrace", "record_trace", "replay_trace"]


@dataclass(frozen=True)
class _TraceEntry:
    """One recorded request: the page and its cycle-relative arrival."""

    page_id: int
    arrival_fraction: float


class RequestTrace:
    """An immutable, program-independent request trace."""

    def __init__(self, entries: Iterable[_TraceEntry]) -> None:
        self._entries = tuple(entries)
        for entry in self._entries:
            if not 0.0 <= entry.arrival_fraction < 1.0:
                raise WorkloadError(
                    f"arrival fraction {entry.arrival_fraction} outside "
                    "[0, 1)"
                )

    def __len__(self) -> int:
        return len(self._entries)

    def requests_for(
        self, program: BroadcastProgram
    ) -> Iterator[Request]:
        """Materialise the trace against a concrete program's cycle."""
        cycle = program.cycle_length
        for entry in self._entries:
            yield Request(
                page_id=entry.page_id,
                arrival=entry.arrival_fraction * cycle,
            )

    # ------------------------------------------------------------------
    # Serialisation (JSON Lines)
    # ------------------------------------------------------------------

    def dump(self, path: str | Path) -> None:
        """Write the trace as JSON Lines."""
        with open(path, "w") as handle:
            for entry in self._entries:
                handle.write(
                    json.dumps(
                        {"page": entry.page_id, "at": entry.arrival_fraction}
                    )
                    + "\n"
                )

    @classmethod
    def load(cls, path: str | Path) -> "RequestTrace":
        """Read a trace written by :meth:`dump`."""
        entries = []
        with open(path) as handle:
            for line_number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    data = json.loads(line)
                    entries.append(
                        _TraceEntry(
                            page_id=int(data["page"]),
                            arrival_fraction=float(data["at"]),
                        )
                    )
                except (KeyError, ValueError, json.JSONDecodeError) as exc:
                    raise WorkloadError(
                        f"{path}:{line_number}: malformed trace line "
                        f"({exc})"
                    ) from None
        return cls(entries)


def record_trace(
    instance: ProblemInstance,
    num_requests: int,
    seed: int = 0,
    access_probabilities: Mapping[int, float] | None = None,
) -> RequestTrace:
    """Sample a reusable trace from an instance's access model.

    Args:
        instance: Pages requests may target.
        num_requests: Trace length.
        seed: RNG seed.
        access_probabilities: Optional non-uniform page weights.
    """
    if num_requests < 0:
        raise WorkloadError(
            f"num_requests must be non-negative, got {num_requests}"
        )
    rng = random.Random(seed)
    if access_probabilities is None:
        page_ids = [page.page_id for page in instance.pages()]
        chooser = lambda: rng.choice(page_ids)  # noqa: E731
    else:
        population = list(access_probabilities)
        weights = [access_probabilities[pid] for pid in population]
        chooser = lambda: rng.choices(population, weights=weights, k=1)[0]  # noqa: E731
    return RequestTrace(
        _TraceEntry(page_id=chooser(), arrival_fraction=rng.random())
        for _ in range(num_requests)
    )


def replay_trace(
    trace: RequestTrace,
    program: BroadcastProgram,
    instance: ProblemInstance,
):
    """Replay a trace against a program (common-random-numbers measure).

    Returns:
        The same :class:`~repro.sim.clients.MeasurementResult` as the
        seeded simulator, but driven by the shared trace.
    """
    from repro.sim.clients import replay_requests

    return replay_requests(
        program, instance, trace.requests_for(program)
    )
