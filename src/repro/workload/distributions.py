"""Group-size distributions (Figure 3).

The paper's broadcast data generator spreads ``n = 1000`` pages over
``h = 8`` groups following one of four *group size distributions*:
``normal``, ``S-skewed``, ``L-skewed`` and ``uniform``.  The paper only
shows their shapes graphically; we read them as:

* ``uniform`` — every group the same size;
* ``normal`` — a discretised bell centred on the middle groups;
* ``s-skewed`` — mass concentrated on the **s**mall-expected-time groups
  (``P_i`` decreasing in ``i``): most pages are urgent;
* ``l-skewed`` — mass concentrated on the **l**arge-expected-time groups
  (``P_i`` increasing in ``i``): most pages are relaxed.

All distributions produce *exactly* ``n`` pages with every group non-empty
(the paper's groups are all drawn non-empty), using largest-remainder
rounding so the shape survives integer truncation.
"""

from __future__ import annotations

import math
from typing import Callable, Sequence

from repro.core.errors import WorkloadError

__all__ = [
    "DISTRIBUTION_NAMES",
    "uniform_sizes",
    "normal_sizes",
    "s_skewed_sizes",
    "l_skewed_sizes",
    "group_sizes",
    "apportion",
]


def apportion(weights: Sequence[float], total: int) -> list[int]:
    """Split ``total`` items over groups proportionally to ``weights``.

    Uses the largest-remainder (Hamilton) method with a floor of one item
    per group, so the returned sizes sum to exactly ``total`` and no group
    is empty.

    Raises:
        WorkloadError: If ``total < len(weights)`` (cannot keep every group
            non-empty) or any weight is non-positive.
    """
    if total < len(weights):
        raise WorkloadError(
            f"cannot place {total} pages into {len(weights)} non-empty groups"
        )
    if not weights:
        raise WorkloadError("no groups to apportion over")
    if any(w <= 0 for w in weights):
        raise WorkloadError(f"weights must be positive, got {list(weights)}")

    weight_sum = sum(weights)
    # Reserve one page per group up front, apportion the remainder.
    remainder_total = total - len(weights)
    raw = [w / weight_sum * remainder_total for w in weights]
    sizes = [1 + math.floor(value) for value in raw]
    leftover = total - sum(sizes)
    fractions = sorted(
        range(len(weights)),
        key=lambda i: (raw[i] - math.floor(raw[i])),
        reverse=True,
    )
    for index in fractions[:leftover]:
        sizes[index] += 1
    return sizes


def uniform_sizes(n: int, h: int) -> list[int]:
    """Equal group sizes (Figure 3 ``uniform``)."""
    return apportion([1.0] * h, n)


def normal_sizes(n: int, h: int, sigma_fraction: float = 0.25) -> list[int]:
    """Bell-shaped sizes centred on the middle groups (Figure 3 ``normal``).

    Args:
        n: Total pages.
        h: Number of groups.
        sigma_fraction: Standard deviation as a fraction of ``h`` (0.25
            gives a clearly peaked but non-degenerate bell for ``h = 8``).
    """
    if sigma_fraction <= 0:
        raise WorkloadError(
            f"sigma_fraction must be positive, got {sigma_fraction}"
        )
    centre = (h + 1) / 2.0
    sigma = sigma_fraction * h
    weights = [
        math.exp(-((i - centre) ** 2) / (2.0 * sigma * sigma))
        for i in range(1, h + 1)
    ]
    return apportion(weights, n)


def s_skewed_sizes(n: int, h: int, decay: float = 0.6) -> list[int]:
    """Sizes decreasing in the group index (mass on small expected times).

    Geometric weights ``decay^(i-1)``: with the default 0.6 and ``h = 8``
    the first group is ~36x the last, a pronounced skew like Figure 3.
    """
    if not 0 < decay < 1:
        raise WorkloadError(f"decay must be in (0, 1), got {decay}")
    weights = [decay ** (i - 1) for i in range(1, h + 1)]
    return apportion(weights, n)


def l_skewed_sizes(n: int, h: int, decay: float = 0.6) -> list[int]:
    """Sizes increasing in the group index (mass on large expected times).

    The mirror image of :func:`s_skewed_sizes`.
    """
    if not 0 < decay < 1:
        raise WorkloadError(f"decay must be in (0, 1), got {decay}")
    weights = [decay ** (h - i) for i in range(1, h + 1)]
    return apportion(weights, n)


_DISTRIBUTIONS: dict[str, Callable[[int, int], list[int]]] = {
    "uniform": uniform_sizes,
    "normal": normal_sizes,
    "s-skewed": s_skewed_sizes,
    "l-skewed": l_skewed_sizes,
}

DISTRIBUTION_NAMES: tuple[str, ...] = tuple(_DISTRIBUTIONS)


def group_sizes(name: str, n: int, h: int) -> list[int]:
    """Group sizes for a named Figure-3 distribution.

    Args:
        name: One of :data:`DISTRIBUTION_NAMES` (case-insensitive; the
            aliases ``sskewed`` / ``lskewed`` / ``s_skewed`` etc. are
            accepted).
        n: Total pages.
        h: Number of groups.
    """
    key = name.strip().lower().replace("_", "-")
    if key in ("sskewed", "sskew", "s-skew"):
        key = "s-skewed"
    if key in ("lskewed", "lskew", "l-skew"):
        key = "l-skewed"
    try:
        builder = _DISTRIBUTIONS[key]
    except KeyError:
        raise WorkloadError(
            f"unknown distribution {name!r}; choose from "
            f"{', '.join(DISTRIBUTION_NAMES)}"
        ) from None
    return builder(n, h)
