"""Broadcast data generator (Section 5).

Builds the problem instances the paper evaluates on: ``n`` pages over
``h`` groups whose sizes follow a Figure-3 distribution and whose expected
times follow the Figure-4 defaults ``t_i = 4, 8, 16, ..., 512``
(a ratio-2 geometric ladder starting at 4).

Also provides a seeded random-instance generator used by the property
tests: arbitrary (but structurally valid) ladders and sizes exercise the
schedulers far from the paper's defaults.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.errors import WorkloadError
from repro.core.pages import ProblemInstance, instance_from_counts
from repro.workload.distributions import group_sizes

__all__ = [
    "PAPER_DEFAULTS",
    "PaperParameters",
    "paper_expected_times",
    "paper_instance",
    "random_instance",
]


@dataclass(frozen=True)
class PaperParameters:
    """The Figure-4 default experimental parameters.

    Attributes:
        n: Total number of pages (paper: 1000).
        h: Number of groups (paper: 8).
        base_time: ``t_1`` (paper: 4).
        ratio: Ladder ratio ``c`` (paper: 2 — times 4..512).
        num_requests: Monte-Carlo request count per measurement (paper: 3000).
    """

    n: int = 1000
    h: int = 8
    base_time: int = 4
    ratio: int = 2
    num_requests: int = 3000

    @property
    def expected_times(self) -> tuple[int, ...]:
        """``(4, 8, 16, 32, 64, 128, 256, 512)`` for the defaults."""
        return paper_expected_times(
            h=self.h, base_time=self.base_time, ratio=self.ratio
        )


PAPER_DEFAULTS = PaperParameters()


def paper_expected_times(
    h: int = 8, base_time: int = 4, ratio: int = 2
) -> tuple[int, ...]:
    """The geometric expected-time ladder ``base_time * ratio^(i-1)``."""
    if h <= 0:
        raise WorkloadError(f"h must be positive, got {h}")
    if base_time <= 0 or ratio <= 0:
        raise WorkloadError(
            f"base_time and ratio must be positive, got {base_time}, {ratio}"
        )
    return tuple(base_time * ratio**i for i in range(h))


def paper_instance(
    distribution: str,
    params: PaperParameters = PAPER_DEFAULTS,
) -> ProblemInstance:
    """Build one of the paper's evaluation instances.

    Args:
        distribution: A Figure-3 distribution name (``uniform``,
            ``normal``, ``s-skewed``, ``l-skewed``).
        params: Experimental parameters; defaults to Figure 4's values.

    Returns:
        A 1000-page, 8-group instance (for the defaults) ready for any
        scheduler in the library.
    """
    sizes = group_sizes(distribution, n=params.n, h=params.h)
    return instance_from_counts(sizes, params.expected_times)


def random_instance(
    rng: random.Random,
    max_groups: int = 5,
    max_group_size: int = 30,
    max_base_time: int = 6,
    max_ratio: int = 3,
) -> ProblemInstance:
    """A structurally valid random instance for property/fuzz tests.

    Draws ``h``, the ladder base and ratio, and per-group sizes from the
    given RNG.  Every instance returned satisfies the Section-2
    assumptions, so schedulers must handle it without error.
    """
    h = rng.randint(1, max_groups)
    base = rng.randint(1, max_base_time)
    ratio = rng.randint(2, max_ratio) if h > 1 else 1
    sizes = [rng.randint(1, max_group_size) for _ in range(h)]
    times = [base * ratio**i for i in range(h)]
    return instance_from_counts(sizes, times)
