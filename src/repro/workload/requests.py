"""Client request streams (Section 5's "number of requests").

The paper measures AvgD by replaying client requests against a broadcast
program: each request names one page (uniformly at random in the paper's
model — every page equally likely) and arrives at a uniformly random
instant of the major cycle.

This module generates those streams, plus a Zipf access model for the EXT3
extension (the paper's uniform-access assumption is the ``theta = 0``
special case).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, Mapping, Sequence

from repro.core.errors import WorkloadError
from repro.core.pages import ProblemInstance

__all__ = [
    "Request",
    "uniform_access_model",
    "zipf_access_model",
    "generate_requests",
]


@dataclass(frozen=True, slots=True)
class Request:
    """One client access: which page, and when the client tunes in.

    Attributes:
        page_id: The requested page.
        arrival: Arrival time in ``[0, cycle_length)`` — may be fractional
            (clients do not arrive aligned to slot boundaries).
    """

    page_id: int
    arrival: float


def uniform_access_model(instance: ProblemInstance) -> dict[int, float]:
    """The paper's access model: ``prob_access(p) = 1/n`` for every page."""
    probability = 1.0 / instance.n
    return {page.page_id: probability for page in instance.pages()}


def zipf_access_model(
    instance: ProblemInstance, theta: float = 0.8
) -> dict[int, float]:
    """Zipf-distributed access probabilities over pages.

    Pages are ranked in instance order (urgent groups first), and page of
    rank ``k`` gets probability proportional to ``1 / k^theta``.
    ``theta = 0`` recovers the paper's uniform model.

    Args:
        instance: The instance whose pages to weight.
        theta: Skew parameter; 0.8 is the broadcast-disks literature's
            customary value.
    """
    if theta < 0:
        raise WorkloadError(f"theta must be >= 0, got {theta}")
    weights = [
        1.0 / (rank**theta)
        for rank in range(1, instance.n + 1)
    ]
    total = sum(weights)
    return {
        page.page_id: weight / total
        for page, weight in zip(instance.pages(), weights)
    }


def generate_requests(
    instance: ProblemInstance,
    cycle_length: int,
    num_requests: int,
    rng: random.Random,
    access_probabilities: Mapping[int, float] | None = None,
) -> Iterator[Request]:
    """Generate a stream of client requests against a program.

    Args:
        instance: Pages a request may target.
        cycle_length: Major-cycle length of the program under test;
            arrivals are uniform over one cycle (the program repeats, so
            one cycle fully characterises steady state).
        num_requests: Stream length (paper default: 3000).
        rng: Seeded RNG — measurements are reproducible by construction.
        access_probabilities: Per-page access probabilities; defaults to
            the paper's uniform model.

    Yields:
        :class:`Request` objects.
    """
    if num_requests < 0:
        raise WorkloadError(
            f"num_requests must be non-negative, got {num_requests}"
        )
    if cycle_length <= 0:
        raise WorkloadError(
            f"cycle_length must be positive, got {cycle_length}"
        )
    if access_probabilities is None:
        pages: Sequence[int] = [page.page_id for page in instance.pages()]
        for _ in range(num_requests):
            yield Request(
                page_id=rng.choice(pages),
                arrival=rng.random() * cycle_length,
            )
    else:
        page_ids = list(access_probabilities)
        weights = [access_probabilities[pid] for pid in page_ids]
        for _ in range(num_requests):
            (page_id,) = rng.choices(page_ids, weights=weights, k=1)
            yield Request(
                page_id=page_id,
                arrival=rng.random() * cycle_length,
            )
