"""Frozen request/response dataclasses shared by every client.

Each type is a value object with an exact ``to_dict`` / ``from_dict``
JSON round trip; the codec in :mod:`repro.api.codec` wraps those dicts
in a versioned envelope.  The control plane, the CLI and the tests all
build and consume these objects — nothing else crosses the wire.

Design rules:

* every field is JSON-representable (ints, floats, strings, bools,
  tuples of the above, string-keyed mappings);
* ``from_dict`` coerces types defensively (a payload that came off the
  wire is untrusted) and raises :class:`~repro.core.errors.ReproError`
  on structurally invalid input;
* requests carry the *service name* they address; responses echo it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.core.errors import ReproError
from repro.live.mutations import MutationEvent

__all__ = [
    "Ack",
    "ApiError",
    "CreateServiceRequest",
    "ErrorBudgetQuery",
    "ErrorBudgetReport",
    "FederationCreate",
    "FinishService",
    "ListServices",
    "MutationBatch",
    "MutationBatchResult",
    "RemediationCandidate",
    "RemediationPolicy",
    "RemediationRecord",
    "ServiceCreated",
    "ServiceList",
    "ServiceManifest",
    "ShardReport",
    "Shutdown",
    "SloQuery",
    "SloVerdict",
]


def _require(payload: Mapping, key: str):
    try:
        return payload[key]
    except KeyError:
        raise ReproError(
            f"api payload missing required field {key!r}"
        ) from None


def _catalog_from(payload: Mapping) -> dict[int, int]:
    return {int(k): int(v) for k, v in dict(payload).items()}


def _catalog_to(catalog: Mapping[int, int]) -> dict[str, int]:
    # JSON objects have string keys; sort for canonical serialisation.
    return {
        str(k): int(catalog[k]) for k in sorted(catalog, key=int)
    }


# ----------------------------------------------------------------------
# Remediation configuration and decision trail
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class RemediationPolicy:
    """Configuration of the detector → proposer → verifier loop.

    Attributes:
        enabled: Master switch; when False the control plane only
            observes (the live service's own SLO re-plans still run).
        miss_streak: Consecutive missed listeners that count as a
            *sustained* deadline-miss breach.
        churn_window: Slots of history the re-plan churn detector looks
            back over.
        churn_threshold: Full re-plans within ``churn_window`` slots
            that count as churn.
        cooldown: Minimum slots between remediation attempts.
        max_pages_moved: Reallocation budget — a candidate action whose
            estimated page movement exceeds this fails verification
            (the Farach-Colton dynamic-windows reallocation bound,
            applied to recovery actions).
        allow_retune: Permit relaxing the worst-missing deadline class
            up the ladder.
        allow_shed: Permit removing pages of the worst-missing class.
        allow_add_channel: Permit growing the channel budget.
        max_extra_channels: Ceiling on budget growth over the lifetime
            of the service.
    """

    enabled: bool = True
    miss_streak: int = 8
    churn_window: int = 32
    churn_threshold: int = 3
    cooldown: int = 16
    max_pages_moved: int = 64
    allow_retune: bool = True
    allow_shed: bool = True
    allow_add_channel: bool = True
    max_extra_channels: int = 2

    def __post_init__(self) -> None:
        if self.miss_streak < 1:
            raise ReproError(
                f"miss_streak must be >= 1, got {self.miss_streak}"
            )
        if self.churn_window < 1 or self.churn_threshold < 1:
            raise ReproError(
                "churn_window and churn_threshold must be >= 1, got "
                f"{self.churn_window}/{self.churn_threshold}"
            )
        if self.cooldown < 0:
            raise ReproError(
                f"cooldown must be >= 0, got {self.cooldown}"
            )
        if self.max_pages_moved < 0 or self.max_extra_channels < 0:
            raise ReproError(
                "max_pages_moved and max_extra_channels must be >= 0, "
                f"got {self.max_pages_moved}/{self.max_extra_channels}"
            )

    def to_dict(self) -> dict:
        return {
            "enabled": self.enabled,
            "miss_streak": self.miss_streak,
            "churn_window": self.churn_window,
            "churn_threshold": self.churn_threshold,
            "cooldown": self.cooldown,
            "max_pages_moved": self.max_pages_moved,
            "allow_retune": self.allow_retune,
            "allow_shed": self.allow_shed,
            "allow_add_channel": self.allow_add_channel,
            "max_extra_channels": self.max_extra_channels,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "RemediationPolicy":
        data = dict(payload)
        return cls(
            enabled=bool(data.get("enabled", True)),
            miss_streak=int(data.get("miss_streak", 8)),
            churn_window=int(data.get("churn_window", 32)),
            churn_threshold=int(data.get("churn_threshold", 3)),
            cooldown=int(data.get("cooldown", 16)),
            max_pages_moved=int(data.get("max_pages_moved", 64)),
            allow_retune=bool(data.get("allow_retune", True)),
            allow_shed=bool(data.get("allow_shed", True)),
            allow_add_channel=bool(data.get("allow_add_channel", True)),
            max_extra_channels=int(data.get("max_extra_channels", 2)),
        )


#: Actions the remediation proposer may put forward.
REMEDIATION_ACTIONS = ("retune", "shed", "add_channel", "full_replan")


@dataclass(frozen=True)
class RemediationCandidate:
    """One proposed recovery action, with its verification evidence.

    Attributes:
        action: One of :data:`REMEDIATION_ACTIONS`.
        detail: Action parameters (pages to shed, class to retune, ...).
        required_channels: Theorem-3.1 requirement of the catalog the
            action would produce.
        budget: The channel budget the action would run under.
        predicted_delay: Eq. 2/3/5/7 model delay of the re-planned
            candidate (0.0 means the SLO is structurally restored).
        pages_moved: Estimated pages whose broadcast slots the action
            moves (the reallocation cost).
        move_budget: The ``max_pages_moved`` bound it was judged against.
        passed: Whether the verifier accepted the candidate.
        reason: Machine-stable verdict explanation.
    """

    action: str
    detail: Mapping[str, object]
    required_channels: int
    budget: int
    predicted_delay: float
    pages_moved: int
    move_budget: int
    passed: bool
    reason: str

    def __post_init__(self) -> None:
        if self.action not in REMEDIATION_ACTIONS:
            raise ReproError(
                f"unknown remediation action {self.action!r}; choose "
                f"from {', '.join(REMEDIATION_ACTIONS)}"
            )

    def to_dict(self) -> dict:
        return {
            "action": self.action,
            "detail": dict(self.detail),
            "required_channels": self.required_channels,
            "budget": self.budget,
            "predicted_delay": round(self.predicted_delay, 6),
            "pages_moved": self.pages_moved,
            "move_budget": self.move_budget,
            "passed": self.passed,
            "reason": self.reason,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "RemediationCandidate":
        return cls(
            action=str(_require(payload, "action")),
            detail=dict(payload.get("detail", {})),
            required_channels=int(_require(payload, "required_channels")),
            budget=int(_require(payload, "budget")),
            predicted_delay=float(_require(payload, "predicted_delay")),
            pages_moved=int(_require(payload, "pages_moved")),
            move_budget=int(_require(payload, "move_budget")),
            passed=bool(_require(payload, "passed")),
            reason=str(payload.get("reason", "")),
        )


@dataclass(frozen=True)
class RemediationRecord:
    """One full detector → proposer → verifier → apply cycle.

    Attributes:
        service: The service the remediation ran on.
        time: Simulation time of the triggering observation.
        trigger: ``sustained-miss`` or ``replan-churn``.
        evidence: Detector evidence (streak length, replans counted...).
        candidates: Every proposed action with its verification outcome,
            in proposal order.
        applied: The action that was applied, or ``None`` when no
            candidate passed verification.
        applied_detail: The applied candidate's parameters.
    """

    service: str
    time: float
    trigger: str
    evidence: Mapping[str, object]
    candidates: tuple[RemediationCandidate, ...]
    applied: str | None
    applied_detail: Mapping[str, object] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "service": self.service,
            "time": self.time,
            "trigger": self.trigger,
            "evidence": dict(self.evidence),
            "candidates": [c.to_dict() for c in self.candidates],
            "applied": self.applied,
            "applied_detail": dict(self.applied_detail),
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "RemediationRecord":
        applied = payload.get("applied")
        return cls(
            service=str(_require(payload, "service")),
            time=float(_require(payload, "time")),
            trigger=str(_require(payload, "trigger")),
            evidence=dict(payload.get("evidence", {})),
            candidates=tuple(
                RemediationCandidate.from_dict(item)
                for item in payload.get("candidates", ())
            ),
            applied=None if applied is None else str(applied),
            applied_detail=dict(payload.get("applied_detail", {})),
        )


# ----------------------------------------------------------------------
# Requests
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class CreateServiceRequest:
    """Stand up a named live broadcast service on the control plane.

    Attributes:
        name: Unique service name on this control plane.
        catalog: Initial ``page_id -> expected_time`` mapping.
        horizon: Session length in slots (events beyond it are refused).
        budget: Channel budget; ``None`` means the Theorem-3.1 minimum
            of the initial catalog (a taut budget).
        admission: Toggle Theorem-3.1 admission control.
        queue_limit: Admission queue capacity.
        slo_window: Rolling miss-rate window width.
        target_miss_rate: Rolling miss-rate SLO threshold.
        replan_cooldown: Minimum slots between SLO-triggered re-plans.
        coalesce_window: Mutation-coalescing window in slots.
        remediation: Auto-remediation configuration.
    """

    name: str
    catalog: Mapping[int, int]
    horizon: int = 256
    budget: int | None = None
    admission: bool = True
    queue_limit: int = 16
    slo_window: int = 64
    target_miss_rate: float = 0.05
    replan_cooldown: int = 8
    coalesce_window: int = 0
    remediation: RemediationPolicy = field(
        default_factory=RemediationPolicy
    )

    def __post_init__(self) -> None:
        if not self.name:
            raise ReproError("service name must be non-empty")
        if not self.catalog:
            raise ReproError("service catalog must be non-empty")
        if self.horizon < 1:
            raise ReproError(
                f"horizon must be >= 1, got {self.horizon}"
            )

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "catalog": _catalog_to(self.catalog),
            "horizon": self.horizon,
            "budget": self.budget,
            "admission": self.admission,
            "queue_limit": self.queue_limit,
            "slo_window": self.slo_window,
            "target_miss_rate": self.target_miss_rate,
            "replan_cooldown": self.replan_cooldown,
            "coalesce_window": self.coalesce_window,
            "remediation": self.remediation.to_dict(),
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "CreateServiceRequest":
        budget = payload.get("budget")
        return cls(
            name=str(_require(payload, "name")),
            catalog=_catalog_from(_require(payload, "catalog")),
            horizon=int(payload.get("horizon", 256)),
            budget=None if budget is None else int(budget),
            admission=bool(payload.get("admission", True)),
            queue_limit=int(payload.get("queue_limit", 16)),
            slo_window=int(payload.get("slo_window", 64)),
            target_miss_rate=float(payload.get("target_miss_rate", 0.05)),
            replan_cooldown=int(payload.get("replan_cooldown", 8)),
            coalesce_window=int(payload.get("coalesce_window", 0)),
            remediation=RemediationPolicy.from_dict(
                payload.get("remediation", {})
            ),
        )


@dataclass(frozen=True)
class MutationBatch:
    """A time-ordered batch of catalog mutations and listener arrivals.

    Events reuse :class:`~repro.live.mutations.MutationEvent` — the
    same value object the batch trace layer replays — and must be
    non-decreasing in time, both within the batch and across batches
    streamed to one service.

    ``request_id`` is the idempotency token of the retry layer: a batch
    carrying a non-empty id is applied at most once per control plane —
    a retransmission inside the server's dedup window returns the
    original response without re-applying the events.  The empty
    default means "no dedup", and is omitted from the wire form so
    id-less batches keep their historical byte encoding.
    """

    service: str
    events: tuple[MutationEvent, ...]
    request_id: str = ""

    def __post_init__(self) -> None:
        if not self.service:
            raise ReproError("MutationBatch needs a service name")
        times = [event.time for event in self.events]
        if any(b < a for a, b in zip(times, times[1:])):
            raise ReproError(
                "MutationBatch events must be ordered by time"
            )

    def to_dict(self) -> dict:
        payload: dict = {
            "service": self.service,
            "events": [event.to_dict() for event in self.events],
        }
        if self.request_id:
            payload["request_id"] = self.request_id
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping) -> "MutationBatch":
        return cls(
            service=str(_require(payload, "service")),
            events=tuple(
                MutationEvent.from_dict(item)
                for item in payload.get("events", ())
            ),
            request_id=str(payload.get("request_id", "")),
        )


@dataclass(frozen=True)
class SloQuery:
    """"Is this deadline achievable under this channel budget?"

    Asks whether the service could serve ``pages`` *additional* pages
    at deadline ``expected_time`` without breaking the structural SLO
    (Theorem 3.1 against the current budget, with the admission queue's
    pending inserts counted as committed load).  ``pages=0`` asks about
    the catalog as it stands.
    """

    service: str
    expected_time: int
    pages: int = 1

    def __post_init__(self) -> None:
        if self.expected_time < 1:
            raise ReproError(
                f"expected_time must be >= 1, got {self.expected_time}"
            )
        if self.pages < 0:
            raise ReproError(f"pages must be >= 0, got {self.pages}")

    def to_dict(self) -> dict:
        return {
            "service": self.service,
            "expected_time": self.expected_time,
            "pages": self.pages,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "SloQuery":
        return cls(
            service=str(_require(payload, "service")),
            expected_time=int(_require(payload, "expected_time")),
            pages=int(payload.get("pages", 1)),
        )


@dataclass(frozen=True)
class ErrorBudgetQuery:
    """Request the per-deadline-class error-budget breakdown."""

    service: str

    def to_dict(self) -> dict:
        return {"service": self.service}

    @classmethod
    def from_dict(cls, payload: Mapping) -> "ErrorBudgetQuery":
        return cls(service=str(_require(payload, "service")))


@dataclass(frozen=True)
class FinishService:
    """Close a service: final report, v7 manifest, release the name."""

    service: str

    def to_dict(self) -> dict:
        return {"service": self.service}

    @classmethod
    def from_dict(cls, payload: Mapping) -> "FinishService":
        return cls(service=str(_require(payload, "service")))


@dataclass(frozen=True)
class ListServices:
    """Enumerate the services hosted on this control plane."""

    def to_dict(self) -> dict:
        return {}

    @classmethod
    def from_dict(cls, payload: Mapping) -> "ListServices":
        return cls()


@dataclass(frozen=True)
class Shutdown:
    """Stop the control plane (open services are finished first)."""

    def to_dict(self) -> dict:
        return {}

    @classmethod
    def from_dict(cls, payload: Mapping) -> "Shutdown":
        return cls()


@dataclass(frozen=True)
class FederationCreate:
    """Plan a sharded federation of the given catalog (a pure probe).

    Asks the control plane to partition ``catalog`` across ``shards``
    station shards on the deterministic group-aware consistent-hash
    ring and judge the placement against the per-shard ``budget``
    (Theorem 3.1, exact arithmetic).  The request mutates nothing — the
    plane answers with a :class:`ShardReport` and keeps no state — so a
    client can probe shard counts and budgets before standing stations
    up.

    Attributes:
        name: Federation name, echoed in the report.
        catalog: ``page_id -> expected_time`` mapping to partition;
            must span at least ``shards`` distinct ladder groups.
        shards: Station shard count.
        budget: Per-shard channel budget; ``None`` means the maximum
            Theorem-3.1 requirement over the partitions (every shard
            taut).
        seed: Ring placement seed.
    """

    name: str
    catalog: Mapping[int, int]
    shards: int = 2
    budget: int | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise ReproError("federation name must be non-empty")
        if not self.catalog:
            raise ReproError("federation catalog must be non-empty")
        if self.shards < 1:
            raise ReproError(f"shards must be >= 1, got {self.shards}")

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "catalog": _catalog_to(self.catalog),
            "shards": self.shards,
            "budget": self.budget,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "FederationCreate":
        budget = payload.get("budget")
        return cls(
            name=str(_require(payload, "name")),
            catalog=_catalog_from(_require(payload, "catalog")),
            shards=int(payload.get("shards", 2)),
            budget=None if budget is None else int(budget),
            seed=int(payload.get("seed", 0)),
        )


# ----------------------------------------------------------------------
# Responses
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ServiceCreated:
    """Acknowledges :class:`CreateServiceRequest` with the initial plan."""

    service: str
    budget: int
    required_channels: int
    algorithm: str
    cycle_length: int
    pages: int

    def to_dict(self) -> dict:
        return {
            "service": self.service,
            "budget": self.budget,
            "required_channels": self.required_channels,
            "algorithm": self.algorithm,
            "cycle_length": self.cycle_length,
            "pages": self.pages,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "ServiceCreated":
        return cls(
            service=str(_require(payload, "service")),
            budget=int(_require(payload, "budget")),
            required_channels=int(_require(payload, "required_channels")),
            algorithm=str(_require(payload, "algorithm")),
            cycle_length=int(_require(payload, "cycle_length")),
            pages=int(_require(payload, "pages")),
        )


@dataclass(frozen=True)
class MutationBatchResult:
    """Outcome of streaming one :class:`MutationBatch` into a service."""

    service: str
    applied: int
    admitted: int
    queued: int
    rejected: int
    listeners: int
    misses: int
    replans: int
    remediations: int

    def to_dict(self) -> dict:
        return {
            "service": self.service,
            "applied": self.applied,
            "admitted": self.admitted,
            "queued": self.queued,
            "rejected": self.rejected,
            "listeners": self.listeners,
            "misses": self.misses,
            "replans": self.replans,
            "remediations": self.remediations,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "MutationBatchResult":
        return cls(
            service=str(_require(payload, "service")),
            applied=int(_require(payload, "applied")),
            admitted=int(_require(payload, "admitted")),
            queued=int(_require(payload, "queued")),
            rejected=int(_require(payload, "rejected")),
            listeners=int(_require(payload, "listeners")),
            misses=int(_require(payload, "misses")),
            replans=int(_require(payload, "replans")),
            remediations=int(_require(payload, "remediations")),
        )


@dataclass(frozen=True)
class SloVerdict:
    """The answer to an :class:`SloQuery`.

    Attributes:
        service: The service queried.
        achievable: Whether a valid program exists for the candidate
            load under the budget (Theorem 3.1, exact arithmetic).
        required_channels: The Theorem-3.1 requirement of the candidate
            catalog (current pages + queued inserts + queried pages).
        budget: The service's current channel budget.
        headroom: ``budget - required_channels`` (negative when
            unachievable).
        channel_load: The fractional demand ``sum 1/t_i`` of the
            candidate catalog.
        predicted_delay: 0.0 when achievable; otherwise the Eq. 2/3/5/7
            model delay of the best PAMAD compromise at the budget —
            the price of admitting the load anyway.
        queued_pages: Admission-queue inserts counted into the verdict.
        reason: ``fits-budget`` or ``exceeds-budget``.
    """

    service: str
    achievable: bool
    required_channels: int
    budget: int
    headroom: int
    channel_load: float
    predicted_delay: float
    queued_pages: int
    reason: str

    def to_dict(self) -> dict:
        return {
            "service": self.service,
            "achievable": self.achievable,
            "required_channels": self.required_channels,
            "budget": self.budget,
            "headroom": self.headroom,
            "channel_load": round(self.channel_load, 6),
            "predicted_delay": round(self.predicted_delay, 6),
            "queued_pages": self.queued_pages,
            "reason": self.reason,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "SloVerdict":
        return cls(
            service=str(_require(payload, "service")),
            achievable=bool(_require(payload, "achievable")),
            required_channels=int(_require(payload, "required_channels")),
            budget=int(_require(payload, "budget")),
            headroom=int(_require(payload, "headroom")),
            channel_load=float(_require(payload, "channel_load")),
            predicted_delay=float(_require(payload, "predicted_delay")),
            queued_pages=int(payload.get("queued_pages", 0)),
            reason=str(payload.get("reason", "")),
        )


@dataclass(frozen=True)
class ErrorBudgetReport:
    """Per-deadline-class error-budget accounting from the SloTracker.

    ``per_class`` maps the promised deadline (as a string, the JSON key
    form) to ``{"listeners", "misses", "miss_rate",
    "budget_remaining"}`` where ``budget_remaining`` is the fraction of
    the class's error budget (the target miss rate) still unspent —
    1.0 untouched, 0.0 exhausted, negative when overdrawn.
    """

    service: str
    listeners: int
    misses: int
    miss_rate: float
    rolling_miss_rate: float
    target_miss_rate: float
    window: int
    per_class: Mapping[str, Mapping[str, float]]

    def to_dict(self) -> dict:
        return {
            "service": self.service,
            "listeners": self.listeners,
            "misses": self.misses,
            "miss_rate": round(self.miss_rate, 6),
            "rolling_miss_rate": round(self.rolling_miss_rate, 6),
            "target_miss_rate": self.target_miss_rate,
            "window": self.window,
            "per_class": {
                str(k): dict(v) for k, v in self.per_class.items()
            },
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "ErrorBudgetReport":
        return cls(
            service=str(_require(payload, "service")),
            listeners=int(_require(payload, "listeners")),
            misses=int(_require(payload, "misses")),
            miss_rate=float(_require(payload, "miss_rate")),
            rolling_miss_rate=float(
                _require(payload, "rolling_miss_rate")
            ),
            target_miss_rate=float(_require(payload, "target_miss_rate")),
            window=int(_require(payload, "window")),
            per_class={
                str(k): dict(v)
                for k, v in payload.get("per_class", {}).items()
            },
        )


@dataclass(frozen=True)
class ServiceManifest:
    """The v7 run manifest of a finished service, plus a short summary."""

    service: str
    manifest: Mapping[str, object]
    summary: Mapping[str, object]

    def to_dict(self) -> dict:
        return {
            "service": self.service,
            "manifest": dict(self.manifest),
            "summary": dict(self.summary),
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "ServiceManifest":
        return cls(
            service=str(_require(payload, "service")),
            manifest=dict(_require(payload, "manifest")),
            summary=dict(payload.get("summary", {})),
        )


@dataclass(frozen=True)
class ServiceList:
    """Names of the services currently hosted, sorted."""

    services: tuple[str, ...]

    def to_dict(self) -> dict:
        return {"services": list(self.services)}

    @classmethod
    def from_dict(cls, payload: Mapping) -> "ServiceList":
        return cls(
            services=tuple(
                str(name) for name in payload.get("services", ())
            )
        )


@dataclass(frozen=True)
class ShardReport:
    """The answer to a :class:`FederationCreate` planning probe.

    Attributes:
        name: Federation name, echoed from the request.
        shards: Station shard count that was planned.
        budget: The per-shard channel budget the placement was judged
            against (resolved when the request left it ``None``).
        ring_fingerprint: Stable hex digest of the consistent-hash ring
            layout; two probes with the same catalog/seed/shards agree.
        entries: One mapping per shard, sorted by shard id, each with
            ``{"shard", "pages", "required_channels", "channel_load"}``.
        feasible: True when every shard's Theorem-3.1 requirement fits
            inside ``budget``.
    """

    name: str
    shards: int
    budget: int
    ring_fingerprint: str
    entries: tuple[Mapping[str, object], ...]
    feasible: bool

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "shards": self.shards,
            "budget": self.budget,
            "ring_fingerprint": self.ring_fingerprint,
            "entries": [dict(entry) for entry in self.entries],
            "feasible": self.feasible,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "ShardReport":
        return cls(
            name=str(_require(payload, "name")),
            shards=int(_require(payload, "shards")),
            budget=int(_require(payload, "budget")),
            ring_fingerprint=str(_require(payload, "ring_fingerprint")),
            entries=tuple(
                dict(entry) for entry in payload.get("entries", ())
            ),
            feasible=bool(payload.get("feasible", False)),
        )


@dataclass(frozen=True)
class Ack:
    """Generic success acknowledgement."""

    message: str = "ok"

    def to_dict(self) -> dict:
        return {"message": self.message}

    @classmethod
    def from_dict(cls, payload: Mapping) -> "Ack":
        return cls(message=str(payload.get("message", "ok")))


@dataclass(frozen=True)
class ApiError:
    """Structured failure response.

    Attributes:
        code: Machine-stable error class (``unknown-service``,
            ``duplicate-service``, ``bad-request``, ``internal``).
        message: Human-readable detail.
    """

    code: str
    message: str

    def to_dict(self) -> dict:
        return {"code": self.code, "message": self.message}

    @classmethod
    def from_dict(cls, payload: Mapping) -> "ApiError":
        return cls(
            code=str(_require(payload, "code")),
            message=str(payload.get("message", "")),
        )
