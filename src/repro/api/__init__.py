"""repro.api — the typed request/response surface of the broadcast system.

Every program that talks to this system — the batch CLI, the
:mod:`repro.control` plane, tests, external clients — speaks the frozen
dataclasses defined here, serialised through one versioned JSON codec.
This replaces the ad-hoc keyword threading that used to flow into
:meth:`repro.engine.BroadcastEngine.live` with an explicit, documented,
wire-stable contract:

* **Requests** — :class:`CreateServiceRequest`, :class:`MutationBatch`,
  :class:`SloQuery`, :class:`ErrorBudgetQuery`, :class:`FinishService`,
  :class:`ListServices`, :class:`Shutdown`.
* **Responses** — :class:`ServiceCreated`, :class:`MutationBatchResult`,
  :class:`SloVerdict`, :class:`ErrorBudgetReport`,
  :class:`ServiceManifest`, :class:`ServiceList`, :class:`Ack`,
  :class:`ApiError`.
* **Remediation** — :class:`RemediationPolicy` (configuration),
  :class:`RemediationCandidate` and :class:`RemediationRecord` (the
  detector → proposer → verifier decision trail recorded in manifests).
* **Codec** — :func:`encode` / :func:`decode` (payload dicts carrying
  ``api_version``), :func:`encode_line` / :func:`decode_line`
  (newline-delimited JSON, the control-plane wire format).
* **Manifest codecs** — :func:`manifest_from_dict` /
  :func:`manifest_to_dict` / :func:`manifest_from_json` /
  :func:`manifest_to_json`, the supported way to parse any manifest
  schema version (v1..v6) into the current shape.
"""

from repro.api.codec import (
    API_VERSION,
    decode,
    decode_line,
    encode,
    encode_line,
    manifest_from_dict,
    manifest_from_json,
    manifest_to_dict,
    manifest_to_json,
    message_types,
)
from repro.api.types import (
    Ack,
    ApiError,
    CreateServiceRequest,
    ErrorBudgetQuery,
    ErrorBudgetReport,
    FinishService,
    ListServices,
    MutationBatch,
    MutationBatchResult,
    RemediationCandidate,
    RemediationPolicy,
    RemediationRecord,
    ServiceCreated,
    ServiceList,
    ServiceManifest,
    Shutdown,
    SloQuery,
    SloVerdict,
)

__all__ = [
    "API_VERSION",
    "Ack",
    "ApiError",
    "CreateServiceRequest",
    "ErrorBudgetQuery",
    "ErrorBudgetReport",
    "FinishService",
    "ListServices",
    "MutationBatch",
    "MutationBatchResult",
    "RemediationCandidate",
    "RemediationPolicy",
    "RemediationRecord",
    "ServiceCreated",
    "ServiceList",
    "ServiceManifest",
    "Shutdown",
    "SloQuery",
    "SloVerdict",
    "decode",
    "decode_line",
    "encode",
    "encode_line",
    "manifest_from_dict",
    "manifest_from_json",
    "manifest_to_dict",
    "manifest_to_json",
    "message_types",
]
