"""Versioned JSON codecs for the typed API surface.

Two layers:

* **Message envelope** — :func:`encode` wraps any :mod:`repro.api.types`
  value object as ``{"api_version": 1, "type": "SloQuery", "body":
  {...}}``; :func:`decode` reverses it, validating the version and type.
  :func:`encode_line` / :func:`decode_line` add the newline-delimited
  canonical-JSON framing the control plane speaks on its socket
  (``sort_keys=True``, compact separators — byte-stable for identical
  messages, the determinism contract of scripted sessions).

* **Manifest codec** — :func:`manifest_from_dict` and friends are the
  supported way to parse a :class:`~repro.engine.telemetry.RunManifest`
  of *any* schema version (v1..v7) into the current in-memory shape.
  They delegate to :meth:`RunManifest.from_dict`, so the compat rules
  live in one place; the api module re-exports them because clients of
  the control plane receive manifests over the wire and should not
  import engine internals to read them.
"""

from __future__ import annotations

import json
from typing import Mapping

from repro.api import types as _types
from repro.core.errors import ReproError
from repro.engine.telemetry import RunManifest

__all__ = [
    "API_VERSION",
    "decode",
    "decode_line",
    "encode",
    "encode_line",
    "manifest_from_dict",
    "manifest_from_json",
    "manifest_to_dict",
    "manifest_to_json",
    "message_types",
]

#: Wire-format version of the request/response envelope.  Bumped when a
#: type gains/loses required fields; :func:`decode` accepts 1..current.
API_VERSION = 1

_MESSAGE_TYPES: dict[str, type] = {
    name: getattr(_types, name) for name in _types.__all__
}


def message_types() -> tuple[str, ...]:
    """The registered message type names, sorted."""
    return tuple(sorted(_MESSAGE_TYPES))


def encode(message: object) -> dict:
    """Wrap an api value object in its versioned envelope dict."""
    name = type(message).__name__
    registered = _MESSAGE_TYPES.get(name)
    if registered is None or not isinstance(message, registered):
        raise ReproError(
            f"cannot encode {type(message)!r}: not a repro.api message "
            "type"
        )
    return {
        "api_version": API_VERSION,
        "type": name,
        "body": message.to_dict(),
    }


def decode(payload: Mapping) -> object:
    """Parse an envelope dict back into its typed message.

    Raises:
        ReproError: On unknown/newer api versions, unknown types, or
            structurally invalid bodies.
    """
    version = payload.get("api_version")
    if not isinstance(version, int) or not 1 <= version <= API_VERSION:
        raise ReproError(
            f"unsupported api_version {version!r}; this build speaks "
            f"versions 1..{API_VERSION}"
        )
    name = payload.get("type")
    cls = _MESSAGE_TYPES.get(str(name))
    if cls is None:
        raise ReproError(
            f"unknown api message type {name!r}; known types: "
            f"{', '.join(message_types())}"
        )
    body = payload.get("body", {})
    if not isinstance(body, Mapping):
        raise ReproError(
            f"api message body must be an object, got {type(body).__name__}"
        )
    try:
        return cls.from_dict(body)
    except ReproError:
        raise
    except (KeyError, TypeError, ValueError) as error:
        raise ReproError(
            f"malformed {name} body: {error}"
        ) from error


def encode_line(message: object) -> str:
    """One canonical newline-terminated JSON frame for the wire."""
    return (
        json.dumps(
            encode(message), sort_keys=True, separators=(",", ":")
        )
        + "\n"
    )


def decode_line(line: str) -> object:
    """Parse one wire frame back into its typed message."""
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as error:
        raise ReproError(f"invalid api frame: {error}") from error
    if not isinstance(payload, Mapping):
        raise ReproError(
            f"api frame must be a JSON object, got {type(payload).__name__}"
        )
    return decode(payload)


# ----------------------------------------------------------------------
# Manifest codec (schema v1..v6 -> current shape)
# ----------------------------------------------------------------------


def manifest_from_dict(payload: Mapping) -> RunManifest:
    """Parse a run-manifest document of any supported schema version."""
    return RunManifest.from_dict(payload)


def manifest_from_json(text: str) -> RunManifest:
    """Parse a run manifest from its JSON serialisation."""
    return RunManifest.from_json(text)


def manifest_to_dict(manifest: RunManifest) -> dict:
    """Serialise a manifest in the current (v7) schema."""
    return manifest.to_dict()


def manifest_to_json(manifest: RunManifest, indent: int | None = 2) -> str:
    """Serialise a manifest as JSON in the current (v7) schema."""
    return manifest.to_json(indent=indent)
