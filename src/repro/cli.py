"""Command-line interface: ``repro-air`` (or ``python -m repro``).

Every scheduling subcommand drives the
:class:`~repro.engine.BroadcastEngine` facade — one code path for
plan → schedule → validate → measure, with program caching, optional
parallel sweeps (``--workers``) and a structured JSON run manifest
(``--manifest PATH``) on every engine-backed command.

Subcommands:

* ``plan`` — Theorem-3.1 capacity analysis for an instance.
* ``schedule`` — run any registered scheduler and print the program.
* ``evaluate`` — AvgD of a scheduler at a channel count (analytic +
  Monte-Carlo).
* ``sweep`` — a Figure-5-style channel sweep on a named workload.
* ``profile`` — per-group structural profile of a generated program.
* ``resilience`` — replay a (seeded or saved) fault timeline under
  recovery policies and compare what clients experience.
* ``live`` — replay a (seeded or saved) catalog-mutation timeline
  through the live service runtime: admission control, incremental
  repair vs full re-plans, SLO miss tracking, pull-baseline comparison.
* ``serve`` — run the broadcast control plane: host named live
  services behind the typed :mod:`repro.api` NDJSON protocol, either
  persistently on a UNIX/TCP socket or replaying a scripted session.
* ``experiment`` — run a registered experiment (FIG2 .. EXT11).
* ``experiments`` — list the registry.
* ``schedulers`` — list the scheduler registry (plugin API).

Instances are given either as ``--sizes 3,5,3 --times 2,4,8`` or as a
named paper workload ``--workload uniform``.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import Sequence

from repro.analysis.experiments import EXPERIMENTS, run_experiment
from repro.analysis.sweep import default_channel_points, sweep_table
from repro.core.bounds import minimum_channels
from repro.core.errors import ReproError
from repro.core.pages import ProblemInstance, instance_from_counts
from repro.core.validate import validate_program
from repro.engine import default_engine, default_registry
from repro.workload.distributions import DISTRIBUTION_NAMES
from repro.workload.generator import PAPER_DEFAULTS, paper_instance

__all__ = ["main", "build_parser"]


def _parse_int_list(text: str) -> list[int]:
    try:
        return [int(part) for part in text.split(",") if part.strip()]
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected comma-separated integers, got {text!r}"
        ) from None


def _add_instance_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--sizes",
        type=_parse_int_list,
        help="comma-separated group sizes P_1..P_h (e.g. 3,5,3)",
    )
    parser.add_argument(
        "--times",
        type=_parse_int_list,
        help="comma-separated expected times t_1..t_h (e.g. 2,4,8)",
    )
    parser.add_argument(
        "--workload",
        choices=DISTRIBUTION_NAMES,
        help="use a paper workload (n=1000, h=8, t=4..512) instead",
    )


def _add_manifest_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--manifest",
        metavar="PATH",
        default=None,
        help="write the engine's JSON run manifest to PATH",
    )


def _resolve_instance(args: argparse.Namespace) -> ProblemInstance:
    if args.workload:
        return paper_instance(args.workload)
    if args.sizes and args.times:
        return instance_from_counts(args.sizes, args.times)
    raise ReproError(
        "specify an instance: either --workload NAME or both "
        "--sizes and --times"
    )


def _write_manifest(args: argparse.Namespace) -> None:
    """Dump the last run manifest when ``--manifest PATH`` was given."""
    path = getattr(args, "manifest", None)
    if not path:
        return
    manifest = default_engine().last_manifest
    if manifest is None:
        return
    pathlib.Path(path).parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(manifest.to_json() + "\n")


def _cmd_plan(args: argparse.Namespace) -> int:
    instance = _resolve_instance(args)
    plan = default_engine().plan(instance, available=args.channels)
    print(instance)
    print(f"channel load       : {plan.load:.4f}")
    print(f"minimum channels   : {plan.required}")
    print(f"available channels : {plan.available}")
    print(f"sufficient         : {'yes' if plan.sufficient else 'no'}")
    print(f"utilisation        : {plan.utilisation:.3f}")
    if plan.sufficient:
        print(f"slack slots / t_h  : {plan.slack_slots}")
        print("recommendation     : SUSC (zero delay)")
    else:
        print("recommendation     : PAMAD (minimum average delay)")
    _write_manifest(args)
    return 0


def _cmd_schedule(args: argparse.Namespace) -> int:
    instance = _resolve_instance(args)
    schedule = default_engine().schedule(
        instance, args.algorithm, channels=args.channels
    )
    program = schedule.program
    report = validate_program(program, instance)
    print(repr(program))
    print(f"validity: {report.summary()}")
    if args.render:
        print(program.render())
    if args.json:
        print(program.to_json())
    _write_manifest(args)
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    instance = _resolve_instance(args)
    evaluation = default_engine().evaluate(
        instance,
        args.algorithm,
        channels=args.channels,
        num_requests=args.requests,
        seed=args.seed,
    )
    schedule, measurement = evaluation.schedule, evaluation.measurement
    low, high = measurement.confidence_interval()
    print(f"algorithm          : {evaluation.algorithm}")
    print(f"channels           : {evaluation.channels}")
    print(f"cycle length       : {schedule.program.cycle_length}")
    print(f"AvgD (analytic)    : {schedule.average_delay:.4f}")
    print(
        f"AvgD (simulated)   : {measurement.average_delay:.4f} "
        f"[{low:.4f}, {high:.4f}] over {measurement.num_requests} requests"
    )
    print(f"mean wait          : {measurement.average_wait:.4f}")
    print(f"deadline misses    : {measurement.miss_ratio:.3%}")
    _write_manifest(args)
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    instance = _resolve_instance(args)
    n_min = minimum_channels(instance)
    result = default_engine().sweep(
        instance,
        algorithms=args.algorithms,
        channel_points=default_channel_points(n_min, args.points),
        num_requests=args.requests,
        seed=args.seed,
        workers=args.workers,
    )
    table = sweep_table(
        result.points, title=f"AvgD vs channels (N_min={n_min})"
    )
    cache = result.manifest.cache_run
    table.notes.append(
        f"executor: {result.manifest.executor['mode']} "
        f"(workers={result.manifest.executor['workers']}); "
        f"cache: {cache.hits} hits / {cache.misses} misses"
    )
    print(table.render())
    _write_manifest(args)
    return 0


def _cmd_resilience(args: argparse.Namespace) -> int:
    from repro.analysis.report import Table
    from repro.resilience import FaultPlan, poisson_churn_plan

    instance = _resolve_instance(args)
    channels = args.channels or minimum_channels(instance)
    if args.trace:
        plan = FaultPlan.load(args.trace)
        if plan.num_channels != channels and args.channels:
            raise ReproError(
                f"--channels {args.channels} disagrees with the loaded "
                f"trace ({plan.num_channels} channels); drop --channels "
                "or regenerate the trace"
            )
    else:
        plan = poisson_churn_plan(
            channels,
            horizon=args.horizon,
            seed=args.seed,
            fail_rate=args.fail_rate,
            recover_rate=args.recover_rate,
            loss_rate=args.loss_rate,
        )
    if args.save_trace:
        plan.save(args.save_trace)
    result = default_engine().resilience(
        instance,
        trace=plan,
        policies=args.policies,
        num_listeners=args.listeners,
        seed=args.seed,
    )
    print(
        f"fault plan {plan.fingerprint()}: {plan.num_channels} channels, "
        f"horizon {plan.horizon}, {len(plan.events)} events "
        f"(min alive {plan.min_alive()})"
    )
    table = Table(
        title="recovery policies under churn",
        columns=[
            "policy", "reschedules", "lost page-slots",
            "violations", "excess delay", "shed peak",
        ],
    )
    for outcome in result.outcomes:
        table.add_row(
            outcome.policy,
            outcome.reschedule_count,
            round(outcome.pages_lost_time, 1),
            f"{outcome.violation_fraction:.3%}",
            round(outcome.mean_excess_delay, 3),
            outcome.shed_pages_peak,
        )
    table.notes.append(
        f"{result.outcomes[0].listens} listens over "
        f"{result.outcomes[0].epochs} epochs; seed {args.seed}"
    )
    print(table.render())
    _write_manifest(args)
    return 0


def _cmd_live(args: argparse.Namespace) -> int:
    from repro.analysis.report import Table
    from repro.engine import BroadcastEngine
    from repro.live import MutationTrace
    from repro.workload.mutations import generate_mutation_trace

    instance = _resolve_instance(args)
    if args.trace:
        trace = MutationTrace.load(args.trace)
    else:
        trace = generate_mutation_trace(
            instance,
            seed=args.seed,
            horizon=args.horizon,
            mutations=args.mutations,
            listeners=args.listeners,
        )
    if args.save_trace:
        trace.save(args.save_trace)

    # A private engine per invocation: the live replay contract is that
    # identical inputs produce byte-identical logs and manifests, which
    # requires starting from pristine cache/telemetry/run-id state.
    engine = BroadcastEngine()
    result = engine.live(
        instance,
        trace,
        budget=args.budget,
        admission=not args.no_admission,
        queue_limit=args.queue_limit,
        slo_window=args.slo_window,
        target_miss_rate=args.target_miss_rate,
        replan_cooldown=args.cooldown,
        batch_listeners=args.batch_listeners,
        coalesce_window=args.coalesce_window,
    )
    report = result.report
    pull = result.baseline

    print(
        f"mutation trace {trace.fingerprint()}: horizon {trace.horizon}, "
        f"{len(trace.mutations())} mutations, "
        f"{len(trace.listeners())} listeners"
    )
    print(
        f"budget {report.budget} channels; admission "
        f"{'on' if not args.no_admission else 'off'}; final catalog "
        f"{len(report.catalog)} pages needing {report.final_required} "
        f"channels ({'valid' if report.final_valid else 'degraded'})"
    )
    adm = report.admission
    print(
        f"admission: {adm['admitted']} admitted ({adm['drained']} via "
        f"queue), {adm['queued']} queued, {adm['rejected']} rejected"
    )
    counters = report.counters
    print(
        f"rescheduling: {counters['incremental_repairs']} incremental "
        f"repairs, {counters['full_replans']} full re-plans "
        f"({counters['slo_replans']} SLO-triggered)"
    )
    if args.batch_listeners or args.coalesce_window:
        print(
            f"serving: {counters.get('batched_listeners', 0)} listeners "
            f"replayed in batches, "
            f"{counters.get('events_coalesced', 0)} mutations coalesced "
            f"({counters.get('replans_avoided', 0)} re-plans avoided)"
        )
    table = Table(
        title="deadline SLO: push runtime vs pull baseline (LWF)",
        columns=["system", "listeners", "misses", "miss rate", "mean wait"],
    )
    table.add_row(
        "live push",
        report.slo["listeners"],
        report.slo["misses"],
        f"{report.slo['miss_rate']:.3%}",
        round(report.slo["average_wait"], 3),
    )
    if pull is not None:
        table.add_row(
            "pull LWF",
            pull.listeners,
            pull.misses,
            f"{pull.miss_rate:.3%}",
            round(pull.average_wait, 3),
        )
    print(table.render())

    if args.log:
        path = pathlib.Path(args.log)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            report.event_log_json() + "\n", encoding="utf-8"
        )
    if args.manifest:
        path = pathlib.Path(args.manifest)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            result.manifest.to_json() + "\n", encoding="utf-8"
        )
    return 0


def _cmd_federate(args: argparse.Namespace) -> int:
    from repro.analysis.report import Table
    from repro.engine import BroadcastEngine
    from repro.live import MutationTrace
    from repro.workload.mutations import generate_mutation_trace

    instance = _resolve_instance(args)
    if args.trace:
        trace = MutationTrace.load(args.trace)
    else:
        trace = generate_mutation_trace(
            instance,
            seed=args.seed,
            horizon=args.horizon,
            mutations=args.mutations,
            listeners=args.listeners,
        )
    if args.save_trace:
        trace.save(args.save_trace)

    engine = BroadcastEngine()
    result = engine.federate(
        instance,
        trace,
        shards=args.shards,
        budget=args.budget,
        seed=args.seed,
        rebalance_threshold=args.rebalance_threshold,
        max_pages_moved=args.max_moves,
        admission=not args.no_admission,
        queue_limit=args.queue_limit,
        batch_listeners=args.batch_listeners,
        router=args.router,
        workers=args.workers,
    )
    report = result.report

    print(
        f"mutation trace {trace.fingerprint()}: horizon {trace.horizon}, "
        f"{len(trace.mutations())} mutations, "
        f"{len(trace.listeners())} listeners"
    )
    print(
        f"federation: {report.shards} shard(s), ring "
        f"{report.ring_fingerprint}, per-shard budget {report.budget} "
        f"channel(s), {report.transport} fan-out, final "
        f"{'valid' if report.final_valid else 'degraded'}"
    )
    adm = report.admission
    print(
        f"global admission: {adm['admitted']} admitted "
        f"({adm['spilled']} spilled cross-shard, {adm['drained']} via "
        f"queue), {adm['queued']} queued, {adm['rejected']} rejected"
    )
    print(
        f"rebalancing: {report.pages_moved} page move(s) "
        f"(budget {args.max_moves}); listeners: {report.listeners} "
        f"served, {report.misses} missed "
        f"({report.miss_rate():.3%} miss rate)"
    )
    table = Table(
        title="per-shard replay",
        columns=["shard", "pages", "listeners", "misses", "full replans"],
    )
    for shard_report in report.shard_reports:
        slo = shard_report["slo"]
        table.add_row(
            shard_report["shard"],
            shard_report["final_pages"],
            slo["listeners"],
            slo["misses"],
            shard_report["counters"]["full_replans"],
        )
    print(table.render())

    if args.manifest:
        path = pathlib.Path(args.manifest)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            result.manifest.to_json() + "\n", encoding="utf-8"
        )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import tempfile

    from repro.api import ServiceManifest, decode_line, encode_line
    from repro.control import (
        ControlPlane,
        ControlPlaneServer,
        Journal,
        run_scripted_session,
    )

    if args.recover and not args.journal:
        raise ReproError(
            "--recover needs --journal PATH (the journal to replay)"
        )
    if args.recover:
        # Journal.open happily creates a missing file, which would turn
        # a mistyped path into "recovered 0 request(s)" — refuse instead.
        journal_path = pathlib.Path(args.journal)
        if not journal_path.is_file():
            raise ReproError(
                f"cannot recover: journal {args.journal} does not exist"
            )
        if journal_path.stat().st_size == 0:
            raise ReproError(
                f"cannot recover: journal {args.journal} is empty "
                "(no requests to replay)"
            )
    plane = None
    if args.journal:
        journal = Journal.open(
            pathlib.Path(args.journal), fsync=args.fsync
        )
        if args.recover:
            plane = ControlPlane.recover(journal)
            print(
                f"recovered {journal.stats()['records']} journaled "
                f"request(s) from {args.journal}",
                file=sys.stderr,
            )
        else:
            plane = ControlPlane(journal=journal)

    def _write_manifest(manifests: list) -> None:
        import json as _json

        path = pathlib.Path(args.manifest)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            _json.dumps(
                dict(manifests[-1].manifest), sort_keys=True, indent=2
            )
            + "\n",
            encoding="utf-8",
        )

    if plane is not None and plane.closing:
        # The journal's durable prefix ends in a clean Shutdown: the
        # recovered plane is already closed, so there is no session to
        # resume — only manifests to extract.
        if args.session or args.socket or args.port:
            raise ReproError(
                "the journal records a clean Shutdown; the recovered "
                "plane is closed — use --recover --manifest (without a "
                "transport) to extract its manifests"
            )
        if not args.manifest:
            raise ReproError(
                "the journal records a clean Shutdown; give --manifest "
                "PATH to extract the recovered manifests"
            )
        if not plane.finished_manifests:
            raise ReproError(
                "the recovered journal finished no service; there is "
                "no manifest to write"
            )
        _write_manifest(plane.finished_manifests)
        return 0

    if args.session:
        lines = [
            line
            for line in pathlib.Path(args.session).read_text(
                encoding="utf-8"
            ).splitlines()
            if line.strip()
        ]
        messages = [decode_line(line) for line in lines]
        with tempfile.TemporaryDirectory(prefix="repro-serve-") as tmp:
            responses = run_scripted_session(
                messages,
                pathlib.Path(tmp) / "control.sock",
                plane=plane,
            )
        payload = "".join(encode_line(r) for r in responses)
        if args.out:
            out = pathlib.Path(args.out)
            out.parent.mkdir(parents=True, exist_ok=True)
            out.write_text(payload, encoding="utf-8")
        else:
            sys.stdout.write(payload)
        if args.manifest:
            manifests = [
                r for r in responses if isinstance(r, ServiceManifest)
            ]
            if not manifests and plane is not None:
                # A recovered plane may have finished services during
                # journal replay, before the scripted session began.
                manifests = list(plane.finished_manifests)
            if not manifests:
                raise ReproError(
                    "--manifest given but the session finished no "
                    "service; add a FinishService message to the script"
                )
            _write_manifest(manifests)
        return 0

    server = ControlPlaneServer(plane)
    if args.socket:
        print(f"control plane listening on {args.socket}", file=sys.stderr)
        asyncio.run(server.serve_unix(args.socket))
    elif args.port:
        print(
            f"control plane listening on {args.host}:{args.port}",
            file=sys.stderr,
        )
        asyncio.run(server.serve_tcp(args.host, args.port))
    else:
        raise ReproError(
            "serve needs a transport: --session FILE for a scripted "
            "replay, --socket PATH for a UNIX socket, or --port N "
            "(with optional --host) for TCP"
        )
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    from repro.analysis.ascii_plot import line_chart

    overrides = {}
    if args.requests is not None:
        overrides["num_requests"] = args.requests
    tables = run_experiment(args.experiment_id, **overrides)
    for table in tables:
        columns = list(table.columns)
        if columns and columns[0] == "channels":
            x = table.column("channels")
            series = {
                name: [
                    (float(xv), float(yv))
                    for xv, yv in zip(x, table.column(name))
                    if isinstance(yv, (int, float))
                ]
                for name in columns[1:]
            }
            print(
                line_chart(
                    series, title=table.title, log_y=args.log
                )
            )
        else:
            print(table.render())
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.analysis.programstats import profile_program
    from repro.analysis.report import Table

    instance = _resolve_instance(args)
    schedule = default_engine().schedule(
        instance, args.algorithm, channels=args.channels
    )
    channels = schedule.meta.get("num_channels", args.channels)
    profile = profile_program(schedule.program, instance)
    print(
        f"{args.algorithm} on {channels} channels: cycle "
        f"{profile.cycle_length}, occupancy {profile.occupancy:.1%}, "
        f"delay fairness {profile.delay_fairness:.3f}"
    )
    table = Table(
        title="per-group structure",
        columns=[
            "group", "t_i", "pages", "slots", "bandwidth",
            "mean gap", "max gap", "margin",
        ],
    )
    for share in profile.shares:
        table.add_row(
            share.group_index,
            share.expected_time,
            share.pages,
            share.slots,
            round(share.bandwidth_share, 3),
            round(share.mean_gap, 1),
            share.max_gap,
            share.safety_margin,
        )
    print(table.render())
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.analysis.perfsuite import bench_command

    return bench_command(
        suite=args.suite,
        quick=args.quick,
        repeats=args.repeats,
        output=args.output,
        check=args.check,
        max_regression=args.max_regression,
    )


def _cmd_experiment(args: argparse.Namespace) -> int:
    overrides = {}
    if args.requests is not None:
        overrides["num_requests"] = args.requests
    if args.seed is not None:
        overrides["seed"] = args.seed
    if getattr(args, "workers", None):
        overrides["workers"] = args.workers
    for table in run_experiment(args.experiment_id, **overrides):
        print(table.render() if not args.markdown else table.to_markdown())
    return 0


def _cmd_experiments(_args: argparse.Namespace) -> int:
    width = max(len(key) for key in EXPERIMENTS)
    for key, experiment in EXPERIMENTS.items():
        print(
            f"{key.ljust(width)}  {experiment.paper_ref.ljust(12)}  "
            f"{experiment.title}"
        )
    return 0


def _cmd_schedulers(_args: argparse.Namespace) -> int:
    registry = default_registry()
    aliases_by_target: dict[str, list[str]] = {}
    for alias, target in registry.aliases().items():
        aliases_by_target.setdefault(target, []).append(alias)
    width = max(len(name) for name in registry.names())
    for name, fn in registry.items():
        aliases = aliases_by_target.get(name, [])
        suffix = f"  (aliases: {', '.join(sorted(aliases))})" if aliases else ""
        print(
            f"{name.ljust(width)}  {fn.__module__}.{fn.__qualname__}{suffix}"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for tests)."""
    registry = default_registry()
    scheduler_names = sorted([*registry.names(), *registry.aliases()])
    parser = argparse.ArgumentParser(
        prog="repro-air",
        description=(
            "Time-constrained broadcast scheduling "
            "(ICDCS 2005 reproduction)"
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    plan = commands.add_parser(
        "plan", help="Theorem-3.1 capacity analysis"
    )
    _add_instance_arguments(plan)
    plan.add_argument(
        "--channels", type=int, default=1, help="channels available"
    )
    _add_manifest_argument(plan)
    plan.set_defaults(handler=_cmd_plan)

    schedule = commands.add_parser(
        "schedule", help="generate a broadcast program"
    )
    _add_instance_arguments(schedule)
    schedule.add_argument(
        "--algorithm",
        default="susc",
        choices=scheduler_names,
        help="scheduler to run (see 'schedulers')",
    )
    schedule.add_argument(
        "--channels",
        type=int,
        default=None,
        help="channels to use (default: Theorem-3.1 minimum)",
    )
    schedule.add_argument(
        "--render", action="store_true", help="print the program grid"
    )
    schedule.add_argument(
        "--json", action="store_true", help="print the program as JSON"
    )
    _add_manifest_argument(schedule)
    schedule.set_defaults(handler=_cmd_schedule)

    evaluate = commands.add_parser(
        "evaluate", help="measure AvgD of a scheduler"
    )
    _add_instance_arguments(evaluate)
    evaluate.add_argument(
        "--algorithm", default="pamad", choices=scheduler_names
    )
    evaluate.add_argument("--channels", type=int, required=True)
    evaluate.add_argument(
        "--requests", type=int, default=PAPER_DEFAULTS.num_requests
    )
    evaluate.add_argument("--seed", type=int, default=0)
    _add_manifest_argument(evaluate)
    evaluate.set_defaults(handler=_cmd_evaluate)

    sweep = commands.add_parser(
        "sweep", help="Figure-5-style channel sweep"
    )
    _add_instance_arguments(sweep)
    sweep.add_argument(
        "--algorithms",
        type=lambda text: [part.strip() for part in text.split(",")],
        default=["pamad", "m-pb", "opt"],
        help="comma-separated scheduler names",
    )
    sweep.add_argument("--points", type=int, default=12)
    sweep.add_argument(
        "--requests", type=int, default=PAPER_DEFAULTS.num_requests
    )
    sweep.add_argument("--seed", type=int, default=0)
    sweep.add_argument(
        "--workers",
        type=int,
        default=1,
        help="fan sweep cells across N processes (1 = serial)",
    )
    _add_manifest_argument(sweep)
    sweep.set_defaults(handler=_cmd_sweep)

    profile = commands.add_parser(
        "profile", help="structural profile of a generated program"
    )
    _add_instance_arguments(profile)
    profile.add_argument(
        "--algorithm", default="pamad", choices=scheduler_names
    )
    profile.add_argument(
        "--channels",
        type=int,
        default=None,
        help="channels to use (default: Theorem-3.1 minimum)",
    )
    profile.set_defaults(handler=_cmd_profile)

    resilience = commands.add_parser(
        "resilience",
        help="replay a fault timeline under recovery policies",
    )
    _add_instance_arguments(resilience)
    resilience.add_argument(
        "--channels",
        type=int,
        default=None,
        help="pre-fault channel count (default: Theorem-3.1 minimum)",
    )
    resilience.add_argument(
        "--policies",
        type=lambda text: [
            part.strip() for part in text.split(",") if part.strip()
        ] or None,
        default=None,
        help=(
            "comma-separated recovery policies (default: carry_on,"
            "reschedule_full,reschedule_throttled,shed_load)"
        ),
    )
    resilience.add_argument(
        "--horizon", type=int, default=200,
        help="fault-plan horizon in slots (generated plans)",
    )
    resilience.add_argument(
        "--fail-rate", type=float, default=0.01,
        help="per-slot per-channel failure probability",
    )
    resilience.add_argument(
        "--recover-rate", type=float, default=0.1,
        help="per-slot per-channel recovery probability",
    )
    resilience.add_argument(
        "--loss-rate", type=float, default=0.0,
        help="per-slot per-channel lossy-transmission probability",
    )
    resilience.add_argument("--seed", type=int, default=0)
    resilience.add_argument(
        "--listeners", type=int, default=400,
        help="sampled client listens across the horizon",
    )
    resilience.add_argument(
        "--trace", metavar="PATH", default=None,
        help="replay a saved fault-trace JSON instead of generating one",
    )
    resilience.add_argument(
        "--save-trace", metavar="PATH", default=None,
        help="write the fault-trace JSON for later deterministic replay",
    )
    _add_manifest_argument(resilience)
    resilience.set_defaults(handler=_cmd_resilience)

    live = commands.add_parser(
        "live",
        help="replay a catalog-mutation timeline through the live runtime",
    )
    _add_instance_arguments(live)
    live.add_argument(
        "--budget",
        type=int,
        default=None,
        help="channel budget (default: Theorem-3.1 minimum of the "
        "initial catalog)",
    )
    live.add_argument("--seed", type=int, default=0)
    live.add_argument(
        "--horizon", type=int, default=64,
        help="timeline length in slots (generated traces)",
    )
    live.add_argument(
        "--mutations", type=int, default=20,
        help="catalog mutations to draw (generated traces)",
    )
    live.add_argument(
        "--listeners", type=int, default=60,
        help="listener arrivals to draw (generated traces)",
    )
    live.add_argument(
        "--no-admission", action="store_true",
        help="apply every mutation regardless of the channel bound",
    )
    live.add_argument(
        "--queue-limit", type=int, default=16,
        help="admission queue capacity for over-budget inserts",
    )
    live.add_argument(
        "--slo-window", type=int, default=64,
        help="rolling window (listeners) for the miss-rate SLO",
    )
    live.add_argument(
        "--target-miss-rate", type=float, default=0.05,
        help="rolling miss rate that triggers a corrective re-plan",
    )
    live.add_argument(
        "--cooldown", type=int, default=8,
        help="minimum slots between SLO-triggered re-plans",
    )
    live.add_argument(
        "--batch-listeners", action="store_true",
        help="replay consecutive listener arrivals as one vectorised "
        "pass (same aggregate SLO statistics, order-of-magnitude "
        "faster on listener-heavy traces)",
    )
    live.add_argument(
        "--coalesce-window", type=int, default=0,
        help="fold catalog mutations arriving within this many slots "
        "into net operations before re-planning (0 = apply each "
        "event individually)",
    )
    live.add_argument(
        "--trace", metavar="PATH", default=None,
        help="replay a saved mutation-trace JSON instead of generating",
    )
    live.add_argument(
        "--save-trace", metavar="PATH", default=None,
        help="write the mutation-trace JSON for deterministic replay",
    )
    live.add_argument(
        "--log", metavar="PATH", default=None,
        help="write the structured event log (the determinism artifact)",
    )
    _add_manifest_argument(live)
    live.set_defaults(handler=_cmd_live)

    federate = commands.add_parser(
        "federate",
        help="replay a mutation timeline across N station shards with "
        "global admission and drift rebalancing",
    )
    _add_instance_arguments(federate)
    federate.add_argument(
        "--shards", type=int, default=2,
        help="station shard count (catalog is partitioned on a "
        "deterministic consistent-hash ring)",
    )
    federate.add_argument(
        "--budget",
        type=int,
        default=None,
        help="per-shard channel budget (default: each shard's "
        "Theorem-3.1 minimum for its initial partition)",
    )
    federate.add_argument("--seed", type=int, default=0)
    federate.add_argument(
        "--horizon", type=int, default=64,
        help="timeline length in slots (generated traces)",
    )
    federate.add_argument(
        "--mutations", type=int, default=20,
        help="catalog mutations to draw (generated traces)",
    )
    federate.add_argument(
        "--listeners", type=int, default=60,
        help="listener arrivals to draw (generated traces)",
    )
    federate.add_argument(
        "--rebalance-threshold", type=float, default=0.0,
        help="rebalance when the hottest shard exceeds this multiple "
        "of the mean channel load (0 disables; try 1.5)",
    )
    federate.add_argument(
        "--max-moves", type=int, default=4,
        help="page moves the rebalancer may spend per trigger",
    )
    federate.add_argument(
        "--no-admission", action="store_true",
        help="apply every mutation regardless of the channel bound",
    )
    federate.add_argument(
        "--queue-limit", type=int, default=16,
        help="global admission queue capacity for over-budget inserts",
    )
    federate.add_argument(
        "--batch-listeners", action="store_true",
        help="replay consecutive listener arrivals per shard as one "
        "vectorised pass",
    )
    federate.add_argument(
        "--router", choices=("columnar", "sequential"),
        default="columnar",
        help="listener-routing implementation: vectorised columnar "
        "(default) or the per-event sequential reference; reports are "
        "byte-identical either way",
    )
    federate.add_argument(
        "--workers", type=int, default=None,
        help="process-pool workers for the shard fan-out (default: "
        "engine setting; 1 = serial)",
    )
    federate.add_argument(
        "--trace", metavar="PATH", default=None,
        help="replay a saved mutation-trace JSON instead of generating",
    )
    federate.add_argument(
        "--save-trace", metavar="PATH", default=None,
        help="write the mutation-trace JSON for deterministic replay",
    )
    _add_manifest_argument(federate)
    federate.set_defaults(handler=_cmd_federate)

    serve = commands.add_parser(
        "serve",
        help="run the broadcast control plane (typed NDJSON protocol)",
    )
    serve.add_argument(
        "--session", metavar="PATH", default=None,
        help="replay a scripted NDJSON message file over a real socket "
        "and exit (deterministic; the CI smoke path)",
    )
    serve.add_argument(
        "--out", metavar="PATH", default=None,
        help="write the session's NDJSON responses here (default: "
        "stdout; scripted mode only)",
    )
    serve.add_argument(
        "--manifest", metavar="PATH", default=None,
        help="write the last finished service's v6 manifest as "
        "canonical JSON (scripted mode only)",
    )
    serve.add_argument(
        "--socket", metavar="PATH", default=None,
        help="serve persistently on a UNIX socket until Shutdown",
    )
    serve.add_argument(
        "--journal", metavar="PATH", default=None,
        help="write-ahead journal: append every accepted request here "
        "before dispatch, so the session survives a crash",
    )
    serve.add_argument(
        "--recover", action="store_true",
        help="replay the --journal's durable prefix before serving, "
        "rebuilding the pre-crash session state byte-for-byte",
    )
    serve.add_argument(
        "--fsync", choices=("always", "batch", "never"),
        default="always",
        help="journal durability policy: fsync every append (always), "
        "every Nth (batch), or leave it to the OS (never)",
    )
    serve.add_argument(
        "--host", default="127.0.0.1",
        help="TCP bind address (with --port)",
    )
    serve.add_argument(
        "--port", type=int, default=None,
        help="serve persistently on TCP until Shutdown",
    )
    serve.set_defaults(handler=_cmd_serve)

    bench = commands.add_parser(
        "bench",
        help="run a perf suite and gate against a baseline",
    )
    bench.add_argument(
        "--suite",
        choices=("core", "fed", "serve"),
        default="core",
        help="entry set: scheduling fast paths (core, BENCH_core), "
        "federation scaling (fed, BENCH_fed), or serving throughput "
        "(serve, BENCH_serve)",
    )
    bench.add_argument(
        "--quick",
        action="store_true",
        help="shrunk inputs for CI smoke (seconds, not minutes)",
    )
    bench.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="timing repeats per entry; the minimum is reported",
    )
    bench.add_argument(
        "--output",
        help="write the suite's JSON payload to this path",
    )
    bench.add_argument(
        "--check",
        help="compare against a committed baseline JSON of the same suite",
    )
    bench.add_argument(
        "--max-regression",
        type=float,
        default=0.25,
        help="allowed same-mode speedup drop vs the baseline (0.25 = 25%%)",
    )
    bench.set_defaults(handler=_cmd_bench)

    experiment = commands.add_parser(
        "experiment", help="run a registered experiment"
    )
    experiment.add_argument(
        "experiment_id", help="e.g. FIG5D (see 'experiments')"
    )
    experiment.add_argument("--requests", type=int, default=None)
    experiment.add_argument("--seed", type=int, default=None)
    experiment.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for sweep-based experiments",
    )
    experiment.add_argument(
        "--markdown", action="store_true", help="emit Markdown tables"
    )
    experiment.set_defaults(handler=_cmd_experiment)

    listing = commands.add_parser(
        "experiments", help="list registered experiments"
    )
    listing.set_defaults(handler=_cmd_experiments)

    schedulers = commands.add_parser(
        "schedulers", help="list the scheduler registry (plugin API)"
    )
    schedulers.set_defaults(handler=_cmd_schedulers)

    figure = commands.add_parser(
        "figure", help="render an experiment as an ASCII chart"
    )
    figure.add_argument(
        "experiment_id", help="e.g. FIG5D (channel-sweep experiments plot)"
    )
    figure.add_argument("--requests", type=int, default=None)
    figure.add_argument(
        "--log", action="store_true", default=True,
        help="log-scale the y axis (default)",
    )
    figure.add_argument(
        "--linear", dest="log", action="store_false",
        help="linear y axis",
    )
    figure.set_defaults(handler=_cmd_figure)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
