"""Streaming metric containers shared by the simulators.

Measurements in this library can involve hundreds of thousands of samples
(request streams, queue events), so statistics are accumulated in a single
pass with Welford's algorithm rather than by storing samples.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.errors import SimulationError

__all__ = ["StreamingStats", "TimeWeightedStats"]


@dataclass
class StreamingStats:
    """Single-pass mean/variance/extrema accumulator (Welford).

    Attributes:
        count: Number of samples observed.
        mean: Running mean.
        minimum: Smallest sample (``inf`` before any sample).
        maximum: Largest sample (``-inf`` before any sample).
    """

    count: int = 0
    mean: float = 0.0
    _m2: float = field(default=0.0, repr=False)
    minimum: float = math.inf
    maximum: float = -math.inf

    def add(self, value: float) -> None:
        """Fold one sample into the running statistics."""
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def variance(self) -> float:
        """Sample variance (n-1 denominator); 0 with fewer than 2 samples."""
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def stdev(self) -> float:
        """Sample standard deviation."""
        return math.sqrt(self.variance)

    @property
    def stderr(self) -> float:
        """Standard error of the mean; 0 before the first sample."""
        if self.count == 0:
            return 0.0
        return self.stdev / math.sqrt(self.count)

    def confidence_interval(self, z: float = 1.96) -> tuple[float, float]:
        """Normal-approximation CI for the mean (default 95%)."""
        half = z * self.stderr
        return (self.mean - half, self.mean + half)

    def merge(self, other: "StreamingStats") -> "StreamingStats":
        """Combine two accumulators (parallel Welford merge)."""
        if other.count == 0:
            return self
        if self.count == 0:
            self.count = other.count
            self.mean = other.mean
            self._m2 = other._m2
            self.minimum = other.minimum
            self.maximum = other.maximum
            return self
        total = self.count + other.count
        delta = other.mean - self.mean
        self._m2 = (
            self._m2
            + other._m2
            + delta * delta * self.count * other.count / total
        )
        self.mean = (
            self.mean * self.count + other.mean * other.count
        ) / total
        self.count = total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)
        return self


@dataclass
class TimeWeightedStats:
    """Time-weighted average of a piecewise-constant signal.

    Used for queue lengths and server utilisation: call :meth:`observe`
    with the *current* value whenever it is about to change.
    """

    last_time: float = 0.0
    last_value: float = 0.0
    _area: float = field(default=0.0, repr=False)
    _started: bool = field(default=False, repr=False)

    def observe(self, time: float, value: float) -> None:
        """Record that the signal had ``last_value`` until ``time``."""
        if self._started:
            if time < self.last_time:
                raise SimulationError(
                    f"time went backwards: {time} < {self.last_time}"
                )
            self._area += self.last_value * (time - self.last_time)
        self._started = True
        self.last_time = time
        self.last_value = value

    def average_until(self, time: float) -> float:
        """Time-weighted mean of the signal over ``[0, time]``."""
        if not self._started or time <= 0:
            return 0.0
        area = self._area + self.last_value * max(0.0, time - self.last_time)
        return area / time
