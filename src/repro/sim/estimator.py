"""Expected-time acquisition — the piggyback/probing front end (Section 1).

The paper assumes each page's expected time is known and points at
piggybacking and probing techniques for obtaining it.  This module closes
that loop so the library is usable end to end on raw client feedback:

* **piggybacking** — every client request carries the client's deadline for
  the page; the server folds each observation in as it arrives.
* **probing** — the server samples only a fraction of clients per round
  (cheaper uplink usage), modelled here by a seeded Bernoulli filter.

Per page, the estimator keeps the observed deadlines and exposes a
percentile-based summary: the ``q``-quantile deadline is the expected time
that satisfies a ``(1 - q)`` share of the reporting clients.  Feeding the
estimates through :func:`repro.core.rearrange.instance_from_expected_times`
yields a schedulable instance.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Hashable

from repro.core.errors import SimulationError
from repro.core.pages import ProblemInstance
from repro.core.rearrange import instance_from_expected_times

__all__ = ["DeadlineEstimator", "ProbingCollector"]


@dataclass
class DeadlineEstimator:
    """Aggregates client-reported deadlines into per-page expected times."""

    _samples: dict[Hashable, list[float]] = field(default_factory=dict)

    def observe(self, page_key: Hashable, deadline: float) -> None:
        """Fold in one piggybacked deadline report.

        Raises:
            SimulationError: If the deadline is not positive.
        """
        if deadline <= 0:
            raise SimulationError(
                f"reported deadline must be positive, got {deadline}"
            )
        self._samples.setdefault(page_key, []).append(deadline)

    @property
    def num_pages(self) -> int:
        """Pages with at least one observation."""
        return len(self._samples)

    def observation_count(self, page_key: Hashable) -> int:
        """Observations recorded for one page."""
        return len(self._samples.get(page_key, []))

    def estimate(self, page_key: Hashable, quantile: float = 0.1) -> float:
        """Percentile estimate of one page's expected time.

        ``quantile = 0.1`` picks a deadline at least as tight as 90% of the
        reporting clients' — conservative, so almost everyone is served in
        time; ``0.5`` is the median client.

        Raises:
            SimulationError: If the page has no observations or the
                quantile is outside ``(0, 1]``.
        """
        if not 0 < quantile <= 1:
            raise SimulationError(
                f"quantile must be in (0, 1], got {quantile}"
            )
        samples = self._samples.get(page_key)
        if not samples:
            raise SimulationError(
                f"no deadline observations for page {page_key!r}"
            )
        ordered = sorted(samples)
        index = max(0, math.ceil(quantile * len(ordered)) - 1)
        return ordered[index]

    def estimates(self, quantile: float = 0.1) -> dict[Hashable, float]:
        """Percentile estimates for every observed page."""
        return {
            key: self.estimate(key, quantile) for key in self._samples
        }

    def to_instance(
        self,
        quantile: float = 0.1,
        ratio: int = 2,
        base: int | None = None,
    ) -> tuple[ProblemInstance, dict[Hashable, int]]:
        """Build a schedulable instance from the current estimates.

        Applies the Section-2 rearrangement to the percentile estimates.

        Returns:
            ``(instance, page_id_map)`` as from
            :func:`instance_from_expected_times`.
        """
        if not self._samples:
            raise SimulationError("no observations to build an instance from")
        return instance_from_expected_times(
            self.estimates(quantile), ratio=ratio, base=base
        )


class ProbingCollector:
    """A sampling front end over :class:`DeadlineEstimator`.

    Models the probing technique: only a fraction of client reports are
    actually solicited (saving uplink bandwidth); the rest are discarded
    before reaching the estimator.
    """

    def __init__(
        self,
        estimator: DeadlineEstimator,
        probe_probability: float = 0.1,
        seed: int = 0,
    ) -> None:
        if not 0 < probe_probability <= 1:
            raise SimulationError(
                f"probe_probability must be in (0, 1], got "
                f"{probe_probability}"
            )
        self._estimator = estimator
        self._probability = probe_probability
        self._rng = random.Random(seed)
        self._offered = 0
        self._collected = 0

    @property
    def offered(self) -> int:
        """Client reports presented to the collector."""
        return self._offered

    @property
    def collected(self) -> int:
        """Reports actually forwarded to the estimator."""
        return self._collected

    def offer(self, page_key: Hashable, deadline: float) -> bool:
        """Maybe probe one client; returns True if the report was taken."""
        self._offered += 1
        if self._rng.random() <= self._probability:
            self._estimator.observe(page_key, deadline)
            self._collected += 1
            return True
        return False
