"""Adaptive rescheduling under drifting client deadlines (experiment EXT6).

The paper's traffic scenario implies deadlines *change*: an accident
alert is extremely urgent at first and decays as traffic reroutes.  The
static pipeline (estimate once, schedule once) goes stale.  This module
closes the loop:

* a :class:`DeadlineDrift` process evolves each page's true client
  deadline over time (multiplicative drift, clamped to a range);
* clients keep piggybacking reports into a
  :class:`~repro.sim.estimator.DeadlineEstimator`;
* an :class:`AdaptiveScheduler` periodically rebuilds the instance from
  fresh estimates and regenerates the program (PAMAD on a fixed channel
  budget);
* the simulation measures the *true-deadline* miss ratio of the program
  in force at each epoch, with and without adaptation.

This is deliberately a discrete-epoch model (rebuild every ``period``
slots) — exactly how a broadcast server would run it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Mapping

from repro.core.errors import SimulationError
from repro.core.pamad import schedule_pamad
from repro.core.program import BroadcastProgram
from repro.core.rearrange import instance_from_expected_times
from repro.sim.estimator import DeadlineEstimator

__all__ = [
    "DeadlineDrift",
    "EpochReport",
    "AdaptiveScheduler",
    "run_adaptive_simulation",
]


@dataclass
class DeadlineDrift:
    """A bounded multiplicative random walk over per-page deadlines.

    Attributes:
        deadlines: Current true deadline per page key.
        volatility: Per-epoch log-scale step size.
        floor: Smallest allowed deadline (>= 1 slot).
        ceiling: Largest allowed deadline.
    """

    deadlines: dict
    volatility: float = 0.25
    floor: float = 2.0
    ceiling: float = 512.0

    def __post_init__(self) -> None:
        if self.floor < 1:
            raise SimulationError(f"floor must be >= 1, got {self.floor}")
        if self.ceiling <= self.floor:
            raise SimulationError(
                f"ceiling {self.ceiling} must exceed floor {self.floor}"
            )
        if self.volatility < 0:
            raise SimulationError(
                f"volatility must be >= 0, got {self.volatility}"
            )

    def step(self, rng: random.Random) -> None:
        """Advance every page's deadline one epoch."""
        for key in self.deadlines:
            factor = 2.0 ** rng.uniform(-self.volatility, self.volatility)
            value = self.deadlines[key] * factor
            self.deadlines[key] = min(self.ceiling, max(self.floor, value))


@dataclass(frozen=True)
class EpochReport:
    """Measurement of one epoch.

    Attributes:
        epoch: Epoch index (0-based).
        miss_ratio: Fraction of sampled accesses whose wait exceeded the
            *current true* deadline of the requested page.
        average_excess: Mean wait beyond the true deadline (slots).
        rescheduled: Whether the scheduler regenerated the program at the
            start of this epoch.
    """

    epoch: int
    miss_ratio: float
    average_excess: float
    rescheduled: bool


class AdaptiveScheduler:
    """Rebuilds the broadcast program from fresh deadline estimates.

    Args:
        num_channels: Fixed channel budget for every rebuild.
        quantile: Estimator percentile (conservative deadlines).
        ratio: Rearrangement ladder ratio.
        window: Number of recent reports kept per page (older reports
            age out so estimates can track drift).
    """

    def __init__(
        self,
        num_channels: int,
        quantile: float = 0.1,
        ratio: int = 2,
        window: int = 40,
    ) -> None:
        if num_channels < 1:
            raise SimulationError(
                f"num_channels must be >= 1, got {num_channels}"
            )
        if window < 1:
            raise SimulationError(f"window must be >= 1, got {window}")
        self._num_channels = num_channels
        self._quantile = quantile
        self._ratio = ratio
        self._window = window
        self._reports: dict = {}

    def observe(self, page_key, deadline: float) -> None:
        """Fold in one piggybacked report (sliding window per page)."""
        bucket = self._reports.setdefault(page_key, [])
        bucket.append(deadline)
        if len(bucket) > self._window:
            del bucket[: len(bucket) - self._window]

    def rebuild(self) -> tuple[BroadcastProgram, Mapping]:
        """Produce a fresh program from the current report windows.

        Returns:
            ``(program, key_to_deadline_promised)`` where the mapping
            gives the rearranged deadline promised to each page key.
        """
        if not self._reports:
            raise SimulationError("no reports to schedule from")
        estimator = DeadlineEstimator()
        for key, bucket in self._reports.items():
            for deadline in bucket:
                estimator.observe(key, deadline)
        estimates = estimator.estimates(self._quantile)
        instance, mapping = instance_from_expected_times(
            estimates, ratio=self._ratio
        )
        schedule = schedule_pamad(instance, self._num_channels)
        promised = {
            key: instance.page(page_id).expected_time
            for key, page_id in mapping.items()
        }
        self._last_mapping = mapping
        self._last_instance = instance
        return schedule.program, promised

    @property
    def page_id_of(self) -> Mapping:
        """Key -> page id mapping of the most recent rebuild."""
        return self._last_mapping


def run_adaptive_simulation(
    initial_deadlines: Mapping,
    num_channels: int,
    epochs: int = 12,
    accesses_per_epoch: int = 400,
    reports_per_epoch: int = 5,
    volatility: float = 0.25,
    rebuild_every: int = 1,
    seed: int = 0,
) -> list[EpochReport]:
    """Simulate drifting deadlines with periodic rescheduling.

    Args:
        initial_deadlines: Page key -> starting true deadline.
        num_channels: Fixed channel budget.
        epochs: Number of drift epochs to simulate.
        accesses_per_epoch: Sampled client accesses per epoch (measure).
        reports_per_epoch: Piggybacked reports per page per epoch.
        volatility: Drift step size (0 = static deadlines).
        rebuild_every: Rebuild period in epochs; ``0`` disables
            adaptation entirely (schedule once, never again).
        seed: RNG seed.

    Returns:
        One :class:`EpochReport` per epoch.
    """
    if epochs < 1:
        raise SimulationError(f"epochs must be >= 1, got {epochs}")
    rng = random.Random(seed)
    drift = DeadlineDrift(
        deadlines=dict(initial_deadlines), volatility=volatility
    )
    scheduler = AdaptiveScheduler(num_channels=num_channels)
    keys = list(drift.deadlines)

    def report_all() -> None:
        for key in keys:
            true = drift.deadlines[key]
            for _ in range(reports_per_epoch):
                scheduler.observe(key, true * rng.uniform(1.0, 1.3))

    report_all()
    program, _promised = scheduler.rebuild()
    mapping = dict(scheduler.page_id_of)

    reports: list[EpochReport] = []
    for epoch in range(epochs):
        rescheduled = False
        if epoch > 0:
            drift.step(rng)
            report_all()
            if rebuild_every and epoch % rebuild_every == 0:
                program, _promised = scheduler.rebuild()
                mapping = dict(scheduler.page_id_of)
                rescheduled = True

        misses = 0
        excess_total = 0.0
        for _ in range(accesses_per_epoch):
            key = rng.choice(keys)
            arrival = rng.random() * program.cycle_length
            wait = program.wait_time(mapping[key], arrival)
            excess = wait - drift.deadlines[key]
            if excess > 0:
                misses += 1
                excess_total += excess
        reports.append(
            EpochReport(
                epoch=epoch,
                miss_ratio=misses / accesses_per_epoch,
                average_excess=excess_total / accesses_per_epoch,
                rescheduled=rescheduled,
            )
        )
    return reports
