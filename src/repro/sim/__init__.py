"""Simulation substrate: event loop, client replay, on-demand and hybrid."""

from repro.sim.adaptive import (
    AdaptiveScheduler,
    DeadlineDrift,
    EpochReport,
    run_adaptive_simulation,
)
from repro.sim.cache import CachingResult, ClientCache, simulate_caching
from repro.sim.clients import (
    MeasurementResult,
    measure_program,
    replay_requests,
)
from repro.sim.estimator import DeadlineEstimator, ProbingCollector
from repro.sim.events import EventLoop
from repro.sim.faults import (
    DegradedProgram,
    FailureComparison,
    compare_failure_responses,
    fail_channels,
)
from repro.sim.hybrid import HybridConfig, HybridResult, simulate_hybrid
from repro.sim.metrics import StreamingStats, TimeWeightedStats
from repro.sim.multipage import (
    SetRequestResult,
    average_completion_time,
    completion_time,
    measure_set_requests,
    sample_page_sets,
)
from repro.sim.ondemand import OnDemandServer, OnDemandStats

__all__ = [
    "AdaptiveScheduler",
    "CachingResult",
    "ClientCache",
    "DeadlineDrift",
    "DeadlineEstimator",
    "DegradedProgram",
    "EpochReport",
    "EventLoop",
    "FailureComparison",
    "HybridConfig",
    "HybridResult",
    "MeasurementResult",
    "OnDemandServer",
    "OnDemandStats",
    "ProbingCollector",
    "SetRequestResult",
    "StreamingStats",
    "TimeWeightedStats",
    "average_completion_time",
    "compare_failure_responses",
    "completion_time",
    "fail_channels",
    "measure_program",
    "measure_set_requests",
    "replay_requests",
    "run_adaptive_simulation",
    "sample_page_sets",
    "simulate_caching",
    "simulate_hybrid",
]
