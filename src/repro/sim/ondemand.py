"""On-demand (pull) channel substrate.

The paper's motivation (Section 1): clients whose broadcast wait exceeds
their patience switch to an *on-demand* uplink channel, and "too often and
too many such actions could seriously congest the on-demand channels".
This module provides that substrate: a multi-server FCFS queue in which
each pull request occupies one server for one page-transmission time.

It is used by :mod:`repro.sim.hybrid` to reproduce the congestion argument
quantitatively (experiment EXT1), and it stands alone as a queueing
simulator (arrival processes are supplied by the caller).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Deque

from collections import deque

from repro.core.errors import SimulationError
from repro.sim.events import EventLoop
from repro.sim.metrics import StreamingStats, TimeWeightedStats

__all__ = ["OnDemandStats", "OnDemandServer"]


@dataclass(frozen=True)
class OnDemandStats:
    """Aggregate measurements of an on-demand channel.

    Attributes:
        served: Requests fully served.
        mean_response_time: Mean sojourn time (queueing + service).
        mean_queue_length: Time-averaged number of waiting requests.
        utilisation: Time-averaged fraction of busy servers.
        max_queue_length: Peak backlog observed.
    """

    served: int
    mean_response_time: float
    mean_queue_length: float
    utilisation: float
    max_queue_length: int


@dataclass
class _PullRequest:
    page_id: int
    submitted_at: float


class OnDemandServer:
    """A multi-server FCFS pull service attached to an event loop.

    Args:
        loop: The simulation's event loop (shared with other components).
        num_servers: Parallel on-demand channels (paper: a scarce resource).
        service_time: Time to transmit one page on a pull channel; the
            natural unit is 1.0 (one broadcast slot).
    """

    def __init__(
        self,
        loop: EventLoop,
        num_servers: int = 1,
        service_time: float = 1.0,
    ) -> None:
        if num_servers < 1:
            raise SimulationError(
                f"need at least one server, got {num_servers}"
            )
        if service_time <= 0:
            raise SimulationError(
                f"service_time must be positive, got {service_time}"
            )
        self._loop = loop
        self._num_servers = num_servers
        self._service_time = service_time
        self._queue: Deque[_PullRequest] = deque()
        self._busy = 0
        self._response = StreamingStats()
        self._queue_length = TimeWeightedStats()
        self._busy_servers = TimeWeightedStats()
        self._max_queue = 0

    @property
    def backlog(self) -> int:
        """Requests currently waiting (excluding those in service)."""
        return len(self._queue)

    @property
    def busy_servers(self) -> int:
        """Servers currently transmitting."""
        return self._busy

    def submit(self, page_id: int) -> None:
        """Enqueue a pull request at the current simulation time."""
        now = self._loop.now
        self._queue.append(_PullRequest(page_id=page_id, submitted_at=now))
        self._queue_length.observe(now, len(self._queue))
        self._try_dispatch()
        # Only requests still waiting after dispatch count as backlog: a
        # request taken straight into service never queued.
        self._max_queue = max(self._max_queue, len(self._queue))

    def _try_dispatch(self) -> None:
        while self._queue and self._busy < self._num_servers:
            request = self._queue.popleft()
            now = self._loop.now
            self._queue_length.observe(now, len(self._queue))
            self._busy_servers.observe(now, self._busy)
            self._busy += 1
            self._busy_servers.observe(now, self._busy)
            self._loop.schedule_after(
                self._service_time,
                lambda req=request: self._complete(req),
            )

    def _complete(self, request: _PullRequest) -> None:
        now = self._loop.now
        self._busy_servers.observe(now, self._busy)
        self._busy -= 1
        self._busy_servers.observe(now, self._busy)
        self._response.add(now - request.submitted_at)
        self._try_dispatch()

    def stats(self, horizon: float | None = None) -> OnDemandStats:
        """Snapshot the collected statistics.

        Args:
            horizon: Observation window end for the time-weighted averages;
                defaults to the loop's current time.
        """
        end = self._loop.now if horizon is None else horizon
        return OnDemandStats(
            served=self._response.count,
            mean_response_time=self._response.mean,
            mean_queue_length=self._queue_length.average_until(end),
            utilisation=(
                self._busy_servers.average_until(end) / self._num_servers
            ),
            max_queue_length=self._max_queue,
        )
