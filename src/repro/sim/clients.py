"""Monte-Carlo client measurement of broadcast programs (Section 5).

The paper evaluates every scheduler by replaying client requests
(Figure 4: 3000 per measurement) against the generated broadcast program
and averaging the delay beyond each request's expected time.  This module
is that measurement harness: seeded, single-pass, and reporting per-group
breakdowns alongside the headline AvgD.

The analytic model in :mod:`repro.core.delay` computes the same
expectation in closed form; ``tests/test_sim_clients.py`` asserts the two
agree within Monte-Carlo error, which validates both.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Mapping

from repro.core.errors import SimulationError
from repro.core.pages import ProblemInstance
from repro.core.program import BroadcastProgram
from repro.sim.metrics import StreamingStats
from repro.workload.requests import generate_requests

__all__ = [
    "MEASUREMENT_BACKENDS",
    "MeasurementResult",
    "measure_program",
    "measure_with_backend",
    "replay_requests",
]

#: Measurement backends sweep cells can opt into (see
#: :func:`measure_with_backend`).
MEASUREMENT_BACKENDS = ("scalar", "batch")


@dataclass(frozen=True)
class MeasurementResult:
    """Outcome of replaying a request stream against a program.

    Attributes:
        average_delay: Mean wait beyond the expected time (AvgD, the
            paper's Figure-5 metric).
        average_wait: Mean total wait (broadcast access time).
        miss_ratio: Fraction of requests that waited longer than their
            expected time.
        num_requests: Stream length.
        delay_stats: Full streaming statistics of the per-request delay.
        group_delay: Mean delay per group index (only groups that were
            actually requested appear).
    """

    average_delay: float
    average_wait: float
    miss_ratio: float
    num_requests: int
    delay_stats: StreamingStats
    group_delay: Mapping[int, float]

    def confidence_interval(self, z: float = 1.96) -> tuple[float, float]:
        """95% (by default) CI on the average delay."""
        return self.delay_stats.confidence_interval(z)


def replay_requests(
    program: BroadcastProgram,
    instance: ProblemInstance,
    requests,
) -> MeasurementResult:
    """Replay an explicit request iterable and collect delay statistics.

    Each request waits for the next appearance of its page on any channel;
    delay is the wait beyond the page's expected time (clamped at zero).

    Raises:
        SimulationError: If a request names a page missing from the
            instance or the program.
    """
    delay_stats = StreamingStats()
    wait_stats = StreamingStats()
    group_stats: dict[int, StreamingStats] = {}
    misses = 0

    for request in requests:
        page = instance.page(request.page_id)
        if program.broadcast_count(page.page_id) == 0:
            raise SimulationError(
                f"request for page {page.page_id} but the program never "
                "broadcasts it"
            )
        wait = program.wait_time(page.page_id, request.arrival)
        delay = max(0.0, wait - page.expected_time)
        if delay > 0:
            misses += 1
        delay_stats.add(delay)
        wait_stats.add(wait)
        group_stats.setdefault(
            page.group_index, StreamingStats()
        ).add(delay)

    if delay_stats.count == 0:
        raise SimulationError("empty request stream")
    return MeasurementResult(
        average_delay=delay_stats.mean,
        average_wait=wait_stats.mean,
        miss_ratio=misses / delay_stats.count,
        num_requests=delay_stats.count,
        delay_stats=delay_stats,
        group_delay={
            index: stats.mean for index, stats in sorted(group_stats.items())
        },
    )


def measure_program(
    program: BroadcastProgram,
    instance: ProblemInstance,
    num_requests: int = 3000,
    seed: int = 0,
    access_probabilities: Mapping[int, float] | None = None,
) -> MeasurementResult:
    """Measure a program with a fresh seeded request stream.

    Args:
        program: The broadcast program under test.
        instance: Pages, groups and expected times.
        num_requests: Paper default 3000.
        seed: RNG seed — identical seeds give identical measurements.
        access_probabilities: Optional non-uniform access model (EXT3).

    Returns:
        A :class:`MeasurementResult`.
    """
    rng = random.Random(seed)
    stream = generate_requests(
        instance,
        cycle_length=program.cycle_length,
        num_requests=num_requests,
        rng=rng,
        access_probabilities=access_probabilities,
    )
    return replay_requests(program, instance, stream)


def measure_with_backend(
    program: BroadcastProgram,
    instance: ProblemInstance,
    num_requests: int = 3000,
    seed: int = 0,
    access_probabilities: Mapping[int, float] | None = None,
    backend: str = "scalar",
):
    """Measure a program with the chosen backend.

    ``"scalar"`` is :func:`measure_program` — the reference loop the
    paper methodology is pinned to.  ``"batch"`` is
    :func:`repro.analysis.vectorized.batch_measure` — one vectorised
    ``searchsorted`` pass, an order of magnitude faster on big request
    streams.  Both replay the same request model (uniform page choice or
    the given access probabilities, arrivals uniform over the cycle) but
    draw from *different RNG streams*, so for one seed their statistics
    agree only in distribution; sweep manifests record which backend ran
    so results stay attributable.

    Returns:
        :class:`MeasurementResult` for ``"scalar"``,
        :class:`~repro.analysis.vectorized.BatchMeasurement` for
        ``"batch"`` — both expose ``average_delay``, ``average_wait``,
        ``miss_ratio`` and ``num_requests``.
    """
    if backend == "scalar":
        return measure_program(
            program,
            instance,
            num_requests=num_requests,
            seed=seed,
            access_probabilities=access_probabilities,
        )
    if backend == "batch":
        # Imported lazily: the analysis layer sits above repro.sim and
        # pulls in numpy, which serial measurement paths never need.
        from repro.analysis.vectorized import batch_measure

        return batch_measure(
            program,
            instance,
            num_requests=num_requests,
            seed=seed,
            access_probabilities=access_probabilities,
        )
    raise SimulationError(
        f"unknown measurement backend {backend!r}; choose from "
        f"{', '.join(MEASUREMENT_BACKENDS)}"
    )
