"""A minimal discrete-event simulation engine.

The on-demand and hybrid simulators (Sections 1 and 4 motivate both) need
ordered event processing: client arrivals, service completions, broadcast
ticks.  This engine is a deliberately small priority-queue kernel —
deterministic (FIFO among simultaneous events), introspectable, and with a
hard safety valve against runaway schedules.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

from repro.core.errors import SimulationError

__all__ = ["EventLoop"]


@dataclass(order=True)
class _ScheduledEvent:
    time: float
    sequence: int
    action: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventLoop:
    """A deterministic discrete-event loop.

    Events scheduled for the same time fire in scheduling order (FIFO), so
    simulations are reproducible run to run.
    """

    def __init__(self, max_events: int = 10_000_000) -> None:
        self._queue: list[_ScheduledEvent] = []
        self._sequence = itertools.count()
        self._now = 0.0
        self._processed = 0
        self._max_events = max_events

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def processed(self) -> int:
        """Number of events executed so far."""
        return self._processed

    @property
    def pending(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._queue)

    def schedule_at(
        self, time: float, action: Callable[[], None]
    ) -> _ScheduledEvent:
        """Schedule ``action`` at absolute simulation time ``time``.

        Returns a handle that :meth:`cancel` accepts.

        Raises:
            SimulationError: If ``time`` lies in the past.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time}; simulation time is {self._now}"
            )
        event = _ScheduledEvent(
            time=time, sequence=next(self._sequence), action=action
        )
        heapq.heappush(self._queue, event)
        return event

    def schedule_after(
        self, delay: float, action: Callable[[], None]
    ) -> _ScheduledEvent:
        """Schedule ``action`` after a non-negative delay from now."""
        if delay < 0:
            raise SimulationError(f"delay must be non-negative, got {delay}")
        return self.schedule_at(self._now + delay, action)

    def cancel(self, event: _ScheduledEvent) -> None:
        """Cancel a scheduled event (lazy removal)."""
        event.cancelled = True

    def run(self, until: float | None = None) -> float:
        """Process events in time order.

        Args:
            until: Stop once the next event would fire strictly after this
                time (the event stays queued); ``None`` drains the queue.

        Returns:
            The final simulation time.

        Raises:
            SimulationError: If more than ``max_events`` events fire
                (runaway self-scheduling loop).
        """
        while self._queue:
            event = self._queue[0]
            if event.cancelled:
                heapq.heappop(self._queue)
                continue
            if until is not None and event.time > until:
                break
            heapq.heappop(self._queue)
            self._now = event.time
            self._processed += 1
            if self._processed > self._max_events:
                raise SimulationError(
                    f"event budget of {self._max_events} exhausted at "
                    f"t={self._now}; likely a self-scheduling loop"
                )
            event.action()
        if until is not None and until > self._now:
            self._now = until
        return self._now
