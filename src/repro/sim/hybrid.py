"""Hybrid push/pull simulation (experiment EXT1).

Reproduces the paper's Section-1/Section-4 congestion argument end to end:
clients prefer the broadcast channel, but

* a client whose next-broadcast wait exceeds its patience (its page's
  expected time, optionally scaled) abandons the air and pulls the page
  from the on-demand server instead, and
* a client whose page is not broadcast at all (dropped by the
  :mod:`repro.baselines.drop` strategy) has no choice but to pull.

The on-demand server is a finite-capacity FCFS queue
(:mod:`repro.sim.ondemand`), so spilled demand shows up as queueing delay
and utilisation — exactly the degradation the paper argues PAMAD avoids by
keeping *every* page on the air with bounded extra delay.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.errors import SimulationError
from repro.core.pages import ProblemInstance
from repro.core.program import BroadcastProgram
from repro.sim.events import EventLoop
from repro.sim.metrics import StreamingStats
from repro.sim.ondemand import OnDemandServer, OnDemandStats

__all__ = ["HybridConfig", "HybridResult", "simulate_hybrid"]


@dataclass(frozen=True)
class HybridConfig:
    """Parameters of a hybrid push/pull simulation.

    Attributes:
        arrival_rate: Client arrivals per slot (Poisson process).
        horizon: Simulated time in slots.
        patience_factor: A client tolerates waits up to
            ``patience_factor * expected_time`` before switching to the
            on-demand channel (1.0 = the paper's impatience model).
        ondemand_servers: Parallel pull channels.
        ondemand_service_time: Slots to serve one pull request.
        seed: RNG seed for arrivals and page choice.
    """

    arrival_rate: float = 2.0
    horizon: float = 2000.0
    patience_factor: float = 1.0
    ondemand_servers: int = 1
    ondemand_service_time: float = 1.0
    seed: int = 0


@dataclass(frozen=True)
class HybridResult:
    """Outcome of a hybrid simulation.

    Attributes:
        total_clients: Clients that arrived within the horizon.
        broadcast_served: Clients served from the air within patience.
        spilled: Clients that pulled from the on-demand channel.
        spill_ratio: ``spilled / total_clients``.
        broadcast_wait: Streaming stats of broadcast waits (served-on-air
            clients only).
        ondemand: Queue statistics of the pull channel.
    """

    total_clients: int
    broadcast_served: int
    spilled: int
    spill_ratio: float
    broadcast_wait: StreamingStats
    ondemand: OnDemandStats


def simulate_hybrid(
    program: BroadcastProgram,
    instance: ProblemInstance,
    config: HybridConfig = HybridConfig(),
) -> HybridResult:
    """Run the hybrid push/pull system for the configured horizon.

    Clients arrive Poisson at ``config.arrival_rate``, each requesting a
    uniformly random page of ``instance``.  Pages absent from ``program``
    (dropped pages) always spill to the on-demand server; present pages
    spill only when the wait to their next broadcast exceeds the client's
    patience.

    Returns:
        A :class:`HybridResult` with broadcast and on-demand statistics.
    """
    if config.arrival_rate <= 0:
        raise SimulationError(
            f"arrival_rate must be positive, got {config.arrival_rate}"
        )
    if config.horizon <= 0:
        raise SimulationError(
            f"horizon must be positive, got {config.horizon}"
        )

    rng = random.Random(config.seed)
    loop = EventLoop()
    server = OnDemandServer(
        loop,
        num_servers=config.ondemand_servers,
        service_time=config.ondemand_service_time,
    )
    page_ids = [page.page_id for page in instance.pages()]
    broadcast_pages = program.page_ids()

    broadcast_wait = StreamingStats()
    counters = {"total": 0, "broadcast": 0, "spilled": 0}

    def client_arrives() -> None:
        counters["total"] += 1
        page = instance.page(rng.choice(page_ids))
        now = loop.now
        patience = config.patience_factor * page.expected_time
        if page.page_id in broadcast_pages:
            wait = program.wait_time(
                page.page_id, now % program.cycle_length
            )
            if wait <= patience:
                counters["broadcast"] += 1
                broadcast_wait.add(wait)
                return
        counters["spilled"] += 1
        server.submit(page.page_id)

    def schedule_next_arrival() -> None:
        gap = rng.expovariate(config.arrival_rate)
        when = loop.now + gap
        if when <= config.horizon:
            loop.schedule_at(
                when,
                lambda: (client_arrives(), schedule_next_arrival()),
            )

    schedule_next_arrival()
    loop.run()  # drain: lets the on-demand queue finish its backlog

    total = counters["total"]
    return HybridResult(
        total_clients=total,
        broadcast_served=counters["broadcast"],
        spilled=counters["spilled"],
        spill_ratio=counters["spilled"] / total if total else 0.0,
        broadcast_wait=broadcast_wait,
        ondemand=server.stats(horizon=config.horizon),
    )
