"""Multi-page requests (experiment EXT7).

The paper assumes "every access of a client is only one data page"
(Section 2).  Real clients often need a *set* of pages (a stock portfolio,
all alerts along a route); the natural metric becomes **completion time**
— the wait until the *last* needed page has been received — and a
schedule's quality for sets differs from its per-page quality because
waits for set members overlap.

This module measures completion times of page-set requests against any
broadcast program, both exactly (small sets, by sweeping arrivals) and by
Monte Carlo, and provides a set-request generator (correlated within a
group, or spread across groups).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from repro.core.errors import SimulationError
from repro.core.pages import ProblemInstance
from repro.core.program import BroadcastProgram
from repro.sim.metrics import StreamingStats

__all__ = [
    "completion_time",
    "average_completion_time",
    "SetRequestResult",
    "measure_set_requests",
    "sample_page_sets",
]


def completion_time(
    program: BroadcastProgram,
    page_ids: Sequence[int],
    arrival: float,
) -> float:
    """Wait until every page of the set has aired at least once.

    A client can only download one page per slot, but distinct pages
    occupy distinct slots on a schedule grid only if they are on the same
    channel; across channels two needed pages may air simultaneously.  We
    use the standard single-tuner model: the client downloads a needed
    page whenever one airs and it is not busy — since page transmissions
    are one slot long and the client is idle while waiting, conflicts only
    arise when two needed pages share a slot on different channels.  In
    that case the client catches one and waits for the other's next
    appearance.

    The implementation is exact for the common non-conflicting case and
    conservative (picks the page order greedily by next appearance) when
    slot conflicts occur.

    Raises:
        SimulationError: On an empty set or a page missing from the air.
    """
    if not page_ids:
        raise SimulationError("empty page set")
    remaining = set(page_ids)
    for page_id in remaining:
        if program.broadcast_count(page_id) == 0:
            raise SimulationError(
                f"page {page_id} is never broadcast"
            )
    time = arrival
    elapsed = 0.0
    cycle = program.cycle_length
    # Greedy: repeatedly grab the needed page that airs soonest; if two
    # air in the same slot, take the sooner-listed one and re-wait for
    # the rest (single tuner).
    while remaining:
        waits = {
            page_id: program.wait_time(page_id, time % cycle)
            for page_id in remaining
        }
        next_page = min(waits, key=lambda p: (waits[p], p))
        wait = waits[next_page]
        elapsed += wait
        time += wait
        remaining.remove(next_page)
        if remaining:
            # The tuner is busy for the slot it just downloaded; other
            # pages in this same slot are missed.
            elapsed += 1.0
            time += 1.0
    return elapsed


def average_completion_time(
    program: BroadcastProgram,
    page_ids: Sequence[int],
    samples_per_slot: int = 2,
) -> float:
    """Deterministic arrival-average of :func:`completion_time`."""
    cycle = program.cycle_length
    count = cycle * samples_per_slot
    total = sum(
        completion_time(program, page_ids, k / samples_per_slot)
        for k in range(count)
    )
    return total / count


def sample_page_sets(
    instance: ProblemInstance,
    set_size: int,
    num_sets: int,
    rng: random.Random,
    within_group: bool = False,
) -> list[list[int]]:
    """Draw random page sets for set-request experiments.

    Args:
        instance: The workload to draw from.
        set_size: Pages per request.
        num_sets: Number of sets to draw.
        rng: Seeded RNG.
        within_group: Draw every set from a single (random) group —
            models correlated needs like "all alerts on my route";
            ``False`` draws uniformly across all pages.
    """
    if set_size < 1:
        raise SimulationError(f"set_size must be >= 1, got {set_size}")
    all_pages = [page.page_id for page in instance.pages()]
    sets: list[list[int]] = []
    for _ in range(num_sets):
        if within_group:
            group = instance.groups[rng.randrange(instance.h)]
            population = [page.page_id for page in group.pages]
        else:
            population = all_pages
        size = min(set_size, len(population))
        sets.append(rng.sample(population, size))
    return sets


@dataclass(frozen=True)
class SetRequestResult:
    """Aggregate outcome of a set-request measurement.

    Attributes:
        mean_completion: Mean completion time over all sampled requests.
        stats: Full streaming statistics of completion times.
        set_size: Pages per request.
        num_requests: Requests measured.
    """

    mean_completion: float
    stats: StreamingStats
    set_size: int
    num_requests: int


def measure_set_requests(
    program: BroadcastProgram,
    instance: ProblemInstance,
    set_size: int = 3,
    num_requests: int = 500,
    seed: int = 0,
    within_group: bool = False,
) -> SetRequestResult:
    """Monte-Carlo completion-time measurement for random page sets."""
    rng = random.Random(seed)
    sets = sample_page_sets(
        instance, set_size, num_requests, rng, within_group=within_group
    )
    stats = StreamingStats()
    cycle = program.cycle_length
    for page_set in sets:
        arrival = rng.random() * cycle
        stats.add(completion_time(program, page_set, arrival))
    return SetRequestResult(
        mean_completion=stats.mean,
        stats=stats,
        set_size=set_size,
        num_requests=num_requests,
    )
