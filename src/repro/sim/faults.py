"""Removed one-shot channel-failure API (experiment EXT5).

.. deprecated::
    The deprecation period is over and the wrappers now *raise*.  This
    module was the static special case of the fault-trace API in
    :mod:`repro.resilience`: a single batch of channel failures at time
    zero and exactly two responses (carry on vs full reschedule).  Build
    a :class:`~repro.resilience.faultplan.FaultPlan` instead (see
    :func:`~repro.resilience.faultplan.static_failure_plan` for this
    exact shape) and replay it under a recovery policy with
    :func:`~repro.resilience.policies.replay_plan`, which also handles
    dynamic churn, lossy slots, throttling, and load shedding.

The function names remain importable so stale call sites fail with a
precise migration hint (:class:`~repro.core.errors.ReproError`) instead
of an anonymous ``ImportError``.  The value types re-exported here
(:class:`DegradedProgram`, :class:`FailureComparison`) are still live —
their home is :mod:`repro.resilience.degrade`.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.errors import ReproError
from repro.core.pages import ProblemInstance
from repro.core.program import BroadcastProgram
from repro.resilience.degrade import DegradedProgram, FailureComparison

__all__ = [
    "DegradedProgram",
    "fail_channels",
    "FailureComparison",
    "compare_failure_responses",
]


def fail_channels(
    program: BroadcastProgram,
    instance: ProblemInstance,
    failed: Sequence[int],
) -> DegradedProgram:
    """Removed; use :func:`repro.resilience.silence_channels`."""
    raise ReproError(
        "repro.sim.faults.fail_channels was deprecated and has been "
        "removed; use repro.resilience.silence_channels (or replay a "
        "FaultPlan via repro.resilience.replay_plan)"
    )


def compare_failure_responses(
    program: BroadcastProgram,
    instance: ProblemInstance,
    failure_sizes: Sequence[int],
) -> list[FailureComparison]:
    """Removed; use :func:`repro.resilience.compare_static_failure_sizes`."""
    raise ReproError(
        "repro.sim.faults.compare_failure_responses was deprecated and "
        "has been removed; use "
        "repro.resilience.compare_static_failure_sizes"
    )
