"""Channel-failure injection and recovery (experiment EXT5).

Broadcast infrastructure loses transmitters: interference, equipment
failure, reallocation of licensed spectrum.  This module answers the
operational question the paper's static model leaves open — *what happens
to the expected-time guarantees when ``k`` of the ``N`` channels go
silent, and how much does rescheduling recover?*

Two responses are modelled:

* **degraded** — keep broadcasting the old program on the surviving
  channels (the failed rows simply disappear).  Pages whose copies all
  lived on failed channels become unreachable; survivors keep their old
  slots, so gaps are unchanged for them.
* **reschedule** — regenerate the program with PAMAD on the surviving
  channel count (every page back on the air, delay spread evenly).

Comparing the two quantifies the value of failure-aware rescheduling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.delay import page_average_delay
from repro.core.errors import SimulationError
from repro.core.pages import ProblemInstance
from repro.core.pamad import schedule_pamad
from repro.core.program import BroadcastProgram

__all__ = ["DegradedProgram", "fail_channels", "FailureComparison", "compare_failure_responses"]


@dataclass(frozen=True)
class DegradedProgram:
    """The old schedule carried on by the surviving channels.

    Attributes:
        program: The surviving grid (failed rows removed; cycle length
            unchanged).
        failed_channels: The channels that went silent.
        lost_pages: Pages with no surviving appearance — unreachable on
            the air until a reschedule.
        average_delay: Mean excess wait over the *reachable* pages only
            (unreachable pages would make it infinite; they are reported
            separately because their clients leave the broadcast system).
    """

    program: BroadcastProgram
    failed_channels: tuple[int, ...]
    lost_pages: tuple[int, ...]
    average_delay: float


def fail_channels(
    program: BroadcastProgram,
    instance: ProblemInstance,
    failed: Sequence[int],
) -> DegradedProgram:
    """Silence the given channels of a program.

    Args:
        program: The schedule in operation when the failure hits.
        instance: Pages and expected times (for the delay accounting).
        failed: Channel indices that stop transmitting.

    Returns:
        A :class:`DegradedProgram` over the surviving channels.

    Raises:
        SimulationError: If all channels fail or an index is out of range.
    """
    failed_set = set(failed)
    for channel in failed_set:
        if not 0 <= channel < program.num_channels:
            raise SimulationError(
                f"channel {channel} out of range 0.."
                f"{program.num_channels - 1}"
            )
    survivors = [
        channel
        for channel in range(program.num_channels)
        if channel not in failed_set
    ]
    if not survivors:
        raise SimulationError("every channel failed; nothing left on air")

    degraded = BroadcastProgram(
        num_channels=len(survivors),
        cycle_length=program.cycle_length,
    )
    for new_row, old_row in enumerate(survivors):
        for slot in range(program.cycle_length):
            page = program.get(old_row, slot)
            if page is not None:
                degraded.assign(new_row, slot, page)

    lost = tuple(
        sorted(
            page.page_id
            for page in instance.pages()
            if degraded.broadcast_count(page.page_id) == 0
        )
    )
    reachable = [
        page
        for page in instance.pages()
        if page.page_id not in set(lost)
    ]
    if reachable:
        average = sum(
            page_average_delay(degraded, page.page_id, page.expected_time)
            for page in reachable
        ) / len(reachable)
    else:
        average = float("inf")
    return DegradedProgram(
        program=degraded,
        failed_channels=tuple(sorted(failed_set)),
        lost_pages=lost,
        average_delay=average,
    )


@dataclass(frozen=True)
class FailureComparison:
    """Degraded-vs-rescheduled outcome for one failure size.

    Attributes:
        failed_count: Channels lost.
        surviving_channels: Channels still on air.
        degraded_delay: Mean delay over reachable pages, old schedule.
        degraded_lost_pages: Pages unreachable under the old schedule.
        rescheduled_delay: Mean delay after a PAMAD reschedule (all pages
            reachable by construction).
    """

    failed_count: int
    surviving_channels: int
    degraded_delay: float
    degraded_lost_pages: int
    rescheduled_delay: float


def compare_failure_responses(
    program: BroadcastProgram,
    instance: ProblemInstance,
    failure_sizes: Sequence[int],
) -> list[FailureComparison]:
    """Sweep failure sizes, comparing carry-on vs reschedule.

    Failures take the *highest-numbered* channels first (deterministic,
    and SUSC packs urgent groups into low channels — so this is the
    optimistic case for the degraded response; random failures would only
    look worse).

    Args:
        program: The pre-failure schedule.
        instance: The workload.
        failure_sizes: Numbers of channels to fail (each < num_channels).
    """
    rows: list[FailureComparison] = []
    for count in failure_sizes:
        if not 0 < count < program.num_channels:
            raise SimulationError(
                f"cannot fail {count} of {program.num_channels} channels"
            )
        failed = list(
            range(program.num_channels - count, program.num_channels)
        )
        degraded = fail_channels(program, instance, failed)
        rescheduled = schedule_pamad(
            instance, program.num_channels - count
        )
        rows.append(
            FailureComparison(
                failed_count=count,
                surviving_channels=program.num_channels - count,
                degraded_delay=degraded.average_delay,
                degraded_lost_pages=len(degraded.lost_pages),
                rescheduled_delay=rescheduled.average_delay,
            )
        )
    return rows
