"""Deprecated one-shot channel-failure API (experiment EXT5).

.. deprecated::
    This module is the *static special case* of the fault-trace API in
    :mod:`repro.resilience`: a single batch of channel failures at time
    zero and exactly two responses (carry on vs full reschedule).  New
    code should build a :class:`~repro.resilience.faultplan.FaultPlan`
    (see :func:`~repro.resilience.faultplan.static_failure_plan` for this
    exact shape) and replay it under a recovery policy with
    :func:`~repro.resilience.policies.replay_plan`, which also handles
    dynamic churn, lossy slots, throttling, and load shedding.

The original entry points remain as thin wrappers so existing callers
keep working; each emits a :class:`DeprecationWarning`.
"""

from __future__ import annotations

import warnings
from typing import Sequence

from repro.core.pages import ProblemInstance
from repro.core.program import BroadcastProgram
from repro.resilience.degrade import (
    DegradedProgram,
    FailureComparison,
    compare_static_failure_sizes,
    silence_channels,
)
from repro.resilience.faultplan import static_failure_plan

__all__ = [
    "DegradedProgram",
    "fail_channels",
    "FailureComparison",
    "compare_failure_responses",
]


def fail_channels(
    program: BroadcastProgram,
    instance: ProblemInstance,
    failed: Sequence[int],
) -> DegradedProgram:
    """Silence the given channels of a program (deprecated wrapper).

    Equivalent to applying the failure batch of
    :func:`~repro.resilience.faultplan.static_failure_plan` and carrying
    on; use :func:`repro.resilience.silence_channels` directly.
    """
    warnings.warn(
        "repro.sim.faults.fail_channels is deprecated; use "
        "repro.resilience.silence_channels (or replay a FaultPlan)",
        DeprecationWarning,
        stacklevel=2,
    )
    failed_list = list(failed)
    if failed_list:
        # Round-trip through the fault-trace API: the static plan *is*
        # the legacy failure model, and its validation (range checks,
        # duplicate collapse) now lives there.
        plan = static_failure_plan(program.num_channels, failed_list)
        failed_list = [event.channel for event in plan.structural_events()]
    return silence_channels(program, instance, failed_list)


def compare_failure_responses(
    program: BroadcastProgram,
    instance: ProblemInstance,
    failure_sizes: Sequence[int],
) -> list[FailureComparison]:
    """Sweep one-shot failure sizes (deprecated wrapper).

    Use :func:`repro.resilience.compare_static_failure_sizes`, or replay
    a churn :class:`~repro.resilience.faultplan.FaultPlan` under the
    ``carry_on`` and ``reschedule_full`` policies for the dynamic
    generalisation.
    """
    warnings.warn(
        "repro.sim.faults.compare_failure_responses is deprecated; use "
        "repro.resilience.compare_static_failure_sizes",
        DeprecationWarning,
        stacklevel=2,
    )
    return compare_static_failure_sizes(program, instance, failure_sizes)
