"""Client-side caching over broadcast programs (experiment EXT9).

Mobile clients in the broadcast-disks literature (the paper's refs [1]
and [3]) cache pages as they fly past on the air: a cache hit answers a
request instantly, a miss waits for the next broadcast.  Two classic
eviction policies are implemented:

* **LRU** — evict the least recently used/seen page (the default any
  systems person reaches for);
* **PIX** (Acharya et al.) — evict the page with the smallest
  ``access_probability / broadcast_frequency`` ratio.  The insight:
  caching a page the server broadcasts *often* is wasted cache space,
  because the air re-delivers it quickly anyway.  PIX is the
  broadcast-specific policy that beats LRU under skewed schedules.

The simulation model: each client monitors one broadcast channel while
idle (single-tuner hardware), folding every page it sees into its cache;
requests arrive over time, hit the cache or wait for the page on any
channel (the client consults the index for misses), and missed pages are
inserted afterwards.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Mapping

from repro.core.errors import SimulationError
from repro.core.pages import ProblemInstance
from repro.core.program import BroadcastProgram
from repro.sim.metrics import StreamingStats

__all__ = ["ClientCache", "CachingResult", "simulate_caching"]

_POLICIES = ("lru", "pix")


class ClientCache:
    """A fixed-capacity page cache with LRU or PIX eviction.

    Args:
        capacity: Maximum pages held (0 disables caching).
        policy: ``"lru"`` or ``"pix"``.
        pix_scores: Required for PIX — per page,
            ``access_probability / broadcast_frequency`` (higher = more
            worth caching).
    """

    def __init__(
        self,
        capacity: int,
        policy: str = "lru",
        pix_scores: Mapping[int, float] | None = None,
    ) -> None:
        if capacity < 0:
            raise SimulationError(
                f"capacity must be >= 0, got {capacity}"
            )
        if policy not in _POLICIES:
            raise SimulationError(
                f"unknown policy {policy!r}; choose from {_POLICIES}"
            )
        if policy == "pix" and pix_scores is None:
            raise SimulationError("PIX needs pix_scores")
        self._capacity = capacity
        self._policy = policy
        self._pix_scores = pix_scores or {}
        # page_id -> last touch time (LRU bookkeeping; harmless for PIX).
        self._entries: dict[int, float] = {}

    def __contains__(self, page_id: int) -> bool:
        return page_id in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def touch(self, page_id: int, now: float) -> None:
        """Record a use of a cached page (LRU recency update)."""
        if page_id in self._entries:
            self._entries[page_id] = now

    def insert(self, page_id: int, now: float) -> None:
        """Add a page, evicting per policy if the cache is full."""
        if self._capacity == 0:
            return
        if page_id in self._entries:
            self._entries[page_id] = now
            return
        if len(self._entries) >= self._capacity:
            if self._policy == "lru":
                victim = min(self._entries, key=self._entries.get)
            else:  # pix: evict the least cache-worthy page...
                victim = min(
                    self._entries,
                    key=lambda pid: self._pix_scores.get(pid, 0.0),
                )
                # ...but never in favour of a less worthy newcomer.
                if self._pix_scores.get(
                    page_id, 0.0
                ) <= self._pix_scores.get(victim, 0.0):
                    return
            del self._entries[victim]
        self._entries[page_id] = now


@dataclass(frozen=True)
class CachingResult:
    """Aggregate outcome of a caching simulation.

    Attributes:
        policy: Eviction policy simulated.
        capacity: Cache capacity per client.
        hit_ratio: Fraction of requests answered from cache.
        average_wait: Mean wait per request (hits wait zero).
        uncached_wait: Mean wait the same request stream would have had
            with no cache (the baseline the hit ratio is buying against).
        num_requests: Requests simulated across all clients.
    """

    policy: str
    capacity: int
    hit_ratio: float
    average_wait: float
    uncached_wait: float
    num_requests: int


def simulate_caching(
    program: BroadcastProgram,
    instance: ProblemInstance,
    access_probabilities: Mapping[int, float],
    capacity: int,
    policy: str = "lru",
    num_clients: int = 20,
    requests_per_client: int = 100,
    mean_think_time: float = 30.0,
    seed: int = 0,
) -> CachingResult:
    """Simulate cache-equipped clients against a broadcast program.

    Each client monitors one (randomly assigned) channel while idle and
    caches what it sees; requests draw pages from
    ``access_probabilities`` with exponential think times between them.

    Args:
        program: The broadcast program on air.
        instance: Pages and groups.
        access_probabilities: The request skew (PIX scores derive from it).
        capacity: Cache slots per client.
        policy: ``"lru"`` or ``"pix"``.
        num_clients: Independent clients simulated.
        requests_per_client: Requests each client issues.
        mean_think_time: Mean slots between a client's requests.
        seed: RNG seed.
    """
    if mean_think_time <= 0:
        raise SimulationError(
            f"mean_think_time must be positive, got {mean_think_time}"
        )
    rng = random.Random(seed)
    cycle = program.cycle_length
    pix_scores = {
        page.page_id: (
            access_probabilities.get(page.page_id, 0.0)
            / max(program.broadcast_count(page.page_id), 1)
        )
        for page in instance.pages()
    }
    page_ids = list(access_probabilities)
    weights = [access_probabilities[pid] for pid in page_ids]

    hits = 0
    wait_stats = StreamingStats()
    uncached_stats = StreamingStats()
    total_requests = 0

    for _client in range(num_clients):
        cache = ClientCache(
            capacity, policy=policy, pix_scores=pix_scores
        )
        channel = rng.randrange(program.num_channels)
        now = rng.random() * cycle
        last_monitor = now
        for _request in range(requests_per_client):
            now += rng.expovariate(1.0 / mean_think_time)
            # Fold in everything the monitored channel aired while idle
            # (bounded by one full cycle — beyond that it repeats).
            start = int(last_monitor) + 1
            end = int(now)
            for slot in range(start, min(end, start + cycle) + 1):
                seen = program.get(channel, slot % cycle)
                if seen is not None:
                    cache.insert(seen, float(slot))
            last_monitor = now

            (page_id,) = rng.choices(page_ids, weights=weights, k=1)
            total_requests += 1
            wait = program.wait_time(page_id, now % cycle)
            uncached_stats.add(wait)
            if page_id in cache:
                hits += 1
                cache.touch(page_id, now)
                wait_stats.add(0.0)
            else:
                wait_stats.add(wait)
                now += wait  # the client waits for the broadcast
                last_monitor = now
                cache.insert(page_id, now)

    return CachingResult(
        policy=policy,
        capacity=capacity,
        hit_ratio=hits / total_requests if total_requests else 0.0,
        average_wait=wait_stats.mean,
        uncached_wait=uncached_stats.mean,
        num_requests=total_requests,
    )
