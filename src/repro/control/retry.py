"""Client-side retries with idempotent request ids.

A dropped control-plane connection mid-request is *ambiguous*: the
request may have been applied just before the transport died, or never
arrived at all.  Blind resends would double-apply mutation batches.
This layer closes the loop from both ends:

* :class:`RetryPolicy` — deterministic, seeded exponential backoff with
  jitter.  The delay sequence is a pure function of ``(seed, attempt)``,
  so a chaos test's retry timing is replayable like everything else.
* :class:`RetryingControlPlaneClient` — wraps a reconnecting
  :class:`~repro.control.plane.ControlPlaneClient`.  Every
  ``MutationBatch`` without a ``request_id`` is stamped with a
  deterministic one (``"<client_id>-<n>"``) *before* the first send, so
  a resend after :class:`~repro.core.errors.ControlPlaneDisconnected`
  carries the same id and the server's dedup window returns the
  original response instead of re-applying the events — exactly-once
  effect under at-least-once delivery.

Only transport failures (``ControlPlaneDisconnected``, ``OSError``)
are retried.  Structural failures — an :class:`~repro.api.ApiError`
response, a codec rejection — pass straight through: retrying a bad
request cannot make it good.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass
from typing import Awaitable, Callable

from repro.api.types import MutationBatch
from repro.control.plane import ControlPlaneClient
from repro.core.errors import ControlPlaneDisconnected, ReproError

__all__ = [
    "RetryPolicy",
    "RetryingControlPlaneClient",
]


@dataclass(frozen=True)
class RetryPolicy:
    """Seeded exponential backoff: deterministic delays, bounded tries.

    Attributes:
        attempts: Total tries per request (first send included).
        base_delay: Backoff before the first retry, in seconds.
        multiplier: Exponential growth factor per retry.
        max_delay: Ceiling on any single backoff.
        jitter: Fraction of each delay randomised away (0 = none,
            0.5 = delays land in [50%, 100%] of nominal).
        seed: Names the jitter sequence; equal seeds give equal delays.
    """

    attempts: int = 4
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ReproError(
                f"attempts must be >= 1, got {self.attempts}"
            )
        if self.base_delay < 0 or self.max_delay < 0:
            raise ReproError(
                "base_delay and max_delay must be >= 0, got "
                f"{self.base_delay}/{self.max_delay}"
            )
        if self.multiplier < 1.0:
            raise ReproError(
                f"multiplier must be >= 1.0, got {self.multiplier}"
            )
        if not 0.0 <= self.jitter < 1.0:
            raise ReproError(
                f"jitter must be in [0, 1), got {self.jitter}"
            )

    def delay(self, attempt: int) -> float:
        """Backoff before retry ``attempt`` (0-based), jittered.

        A pure function of ``(seed, attempt)`` — two clients with equal
        policies back off identically.
        """
        nominal = min(
            self.max_delay, self.base_delay * self.multiplier**attempt
        )
        if not self.jitter:
            return nominal
        rng = random.Random(f"{self.seed}:{attempt}")
        return nominal * (1.0 - self.jitter * rng.random())


class RetryingControlPlaneClient:
    """A reconnecting, retrying wrapper over the stream client.

    Args:
        connect: Async factory producing a fresh
            :class:`ControlPlaneClient` (e.g.
            ``lambda: ControlPlaneClient.connect_unix(path)``).  Called
            lazily on first use and after every transport failure.
        policy: Backoff/attempt budget.
        client_id: Prefix of the generated ``request_id``s; two clients
            talking to one plane must use distinct ids.
    """

    def __init__(
        self,
        connect: Callable[[], Awaitable[ControlPlaneClient]],
        *,
        policy: RetryPolicy | None = None,
        client_id: str = "client",
    ) -> None:
        if not client_id:
            raise ReproError("client_id must be non-empty")
        self._connect = connect
        self.policy = policy if policy is not None else RetryPolicy()
        self.client_id = client_id
        self._client: ControlPlaneClient | None = None
        self._sequence = 0
        self.stats = {"requests": 0, "retries": 0, "reconnects": 0}

    def _stamp(self, message: object) -> object:
        """Give a ``MutationBatch`` its idempotency id, if missing."""
        if isinstance(message, MutationBatch) and not message.request_id:
            self._sequence += 1
            return MutationBatch(
                service=message.service,
                events=message.events,
                request_id=f"{self.client_id}-{self._sequence}",
            )
        return message

    async def _connected(self) -> ControlPlaneClient:
        if self._client is None:
            self._client = await self._connect()
            self.stats["reconnects"] += 1
        return self._client

    async def _drop_connection(self) -> None:
        client = self._client
        self._client = None
        if client is not None:
            try:
                await client.close()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def request(self, message: object) -> object:
        """Send one typed request, retrying transport failures.

        The message is stamped once, so every attempt is byte-identical
        on the wire; the server's dedup window makes the retries safe.

        Raises:
            ControlPlaneDisconnected: When every attempt failed at the
                transport layer.
        """
        stamped = self._stamp(message)
        self.stats["requests"] += 1
        failure: Exception | None = None
        for attempt in range(self.policy.attempts):
            if attempt:
                self.stats["retries"] += 1
                await asyncio.sleep(self.policy.delay(attempt - 1))
            try:
                client = await self._connected()
                return await client.request(stamped)
            except (ControlPlaneDisconnected, OSError) as error:
                failure = error
                await self._drop_connection()
        raise ControlPlaneDisconnected(
            f"request failed after {self.policy.attempts} attempts: "
            f"{failure}"
        ) from failure

    async def close(self) -> None:
        await self._drop_connection()
