"""Write-ahead journal for the control plane — crash durability.

The journal is an append-only NDJSON file.  Line one is a meta header::

    {"compactions":0,"journal_version":1,"kind":"meta"}

and every later line is one journaled request record::

    {"frame":{...api envelope...},"seq":7,"sha":"<16 hex>"}

where ``frame`` is exactly the versioned envelope
:func:`repro.api.encode` produces (so the journal speaks the same
canonical codec as the wire), ``seq`` is a contiguous 1-based sequence
number and ``sha`` is the first 16 hex digits of the SHA-256 of the
record's canonical frame line.  Records are written *before* the
request is dispatched (write-ahead), so an accepted mutation survives a
crash at any point after its ``append`` returns.

Durability knobs and guarantees:

* **fsync policy** — ``"always"`` (fsync every append; survives
  SIGKILL and power loss), ``"batch"`` (fsync every
  ``fsync_batch`` appends and on close; bounded loss window) or
  ``"never"`` (flush to the OS only; survives process death, not
  power loss).
* **Torn-tail truncation** — :meth:`Journal.open` validates the file
  line by line (JSON shape, checksum, seq contiguity).  The first
  invalid record ends the durable prefix: everything from it onward is
  truncated away, because an interrupted final write is the expected
  crash artifact.  Corruption is only tolerated at the tail — a valid
  prefix is never discarded.
* **Snapshot + compaction** — :meth:`Journal.compact` atomically
  rewrites the journal as an equivalent *snapshot* request stream
  (temp file, fsync, ``os.replace``), restarting sequence numbers and
  bumping the header's ``compactions`` counter.  The control plane
  builds that stream with
  :meth:`~repro.control.plane.ControlPlane.snapshot_requests`: one
  ``CreateServiceRequest`` plus one coalesced ``MutationBatch`` per
  live service — byte-smaller, state-identical on replay.

Recovery is :meth:`repro.control.plane.ControlPlane.recover`: replay
the journaled prefix through the (deterministic) dispatcher and the
rebuilt sessions are byte-identical to the pre-crash ones.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import IO, Iterable, Mapping, Sequence

from repro.api.codec import decode, encode
from repro.core.errors import JournalError, ReproError

__all__ = [
    "FSYNC_POLICIES",
    "JOURNAL_VERSION",
    "Journal",
]

#: Current on-disk journal format version.
JOURNAL_VERSION = 1

#: Supported fsync policies, strongest first.
FSYNC_POLICIES = ("always", "batch", "never")


def _canonical(payload: Mapping) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _frame_checksum(frame: Mapping) -> str:
    return hashlib.sha256(
        (_canonical(frame) + "\n").encode("utf-8")
    ).hexdigest()[:16]


class Journal:
    """An open write-ahead journal bound to one NDJSON file.

    Construct through :meth:`open` (which validates and truncates the
    existing file) rather than directly.  The instance keeps the
    decoded valid prefix in memory for :meth:`replay` and holds an
    append handle positioned at the end of that prefix.
    """

    def __init__(
        self,
        path: Path,
        handle: IO[bytes],
        *,
        fsync: str,
        fsync_batch: int,
        compactions: int,
        next_seq: int,
        messages: list[object],
        stats: dict[str, int],
    ) -> None:
        self.path = path
        self._handle: IO[bytes] | None = handle
        self.fsync = fsync
        self.fsync_batch = fsync_batch
        self.compactions = compactions
        self._next_seq = next_seq
        self._messages = messages
        self._stats = stats
        self._unsynced = 0

    # ------------------------------------------------------------------
    # Opening and validation
    # ------------------------------------------------------------------

    @classmethod
    def open(
        cls,
        path: str | Path,
        *,
        fsync: str = "always",
        fsync_batch: int = 16,
    ) -> "Journal":
        """Open (creating if absent) and validate a journal file.

        The file is read line by line; the first torn or corrupt record
        ends the durable prefix and the file is truncated to it.  A
        fresh file gets its meta header written immediately.

        Raises:
            JournalError: When the file is not a journal at all (bad
                header) or declares a newer ``journal_version``.
        """
        if fsync not in FSYNC_POLICIES:
            raise JournalError(
                f"unknown fsync policy {fsync!r}; choose from "
                f"{', '.join(FSYNC_POLICIES)}"
            )
        if fsync_batch < 1:
            raise JournalError(
                f"fsync_batch must be >= 1, got {fsync_batch}"
            )
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        stats = {
            "records": 0,
            "appended": 0,
            "fsyncs": 0,
            "truncated_bytes": 0,
        }
        messages: list[object] = []
        compactions = 0
        next_seq = 1
        valid_bytes = 0
        if target.exists() and target.stat().st_size > 0:
            raw = target.read_bytes()
            offset = 0
            header_seen = False
            for line in raw.splitlines(keepends=True):
                if not line.endswith(b"\n"):
                    if not header_seen:
                        raise JournalError(
                            f"{target} is not a control-plane journal "
                            "(missing meta header)"
                        )
                    break  # torn final write: no newline ever landed
                record = cls._parse_record(line)
                if record is None:
                    if not header_seen:
                        # Torn-tail truncation never applies to the
                        # header line: refusing beats destroying a file
                        # that was never a journal to begin with.
                        raise JournalError(
                            f"{target} is not a control-plane journal "
                            "(missing meta header)"
                        )
                    break
                if not header_seen:
                    if "journal_version" not in record:
                        raise JournalError(
                            f"{target} is not a control-plane journal "
                            "(missing meta header)"
                        )
                    version = record.get("journal_version")
                    if version != JOURNAL_VERSION:
                        raise JournalError(
                            f"unsupported journal_version {version!r}; "
                            f"this build writes version {JOURNAL_VERSION}"
                        )
                    compactions = int(record.get("compactions", 0))
                    header_seen = True
                else:
                    if record.get("seq") != next_seq:
                        break  # sequence gap: treat as torn tail
                    try:
                        messages.append(decode(record["frame"]))
                    except (ReproError, KeyError, TypeError):
                        break
                    next_seq += 1
                    stats["records"] += 1
                offset += len(line)
            valid_bytes = offset
            if valid_bytes < len(raw):
                stats["truncated_bytes"] = len(raw) - valid_bytes
                with target.open("r+b") as fixer:
                    fixer.truncate(valid_bytes)
                    fixer.flush()
                    os.fsync(fixer.fileno())
        handle = target.open("ab")
        journal = cls(
            target,
            handle,
            fsync=fsync,
            fsync_batch=fsync_batch,
            compactions=compactions,
            next_seq=next_seq,
            messages=messages,
            stats=stats,
        )
        if valid_bytes == 0:
            journal._write_header()
        return journal

    @staticmethod
    def _parse_record(line: bytes) -> dict | None:
        """One journal line as a dict, or ``None`` when torn/corrupt."""
        try:
            record = json.loads(line.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            return None
        if not isinstance(record, dict):
            return None
        if "journal_version" in record:
            return record
        frame = record.get("frame")
        if not isinstance(frame, dict):
            return None
        if record.get("sha") != _frame_checksum(frame):
            return None
        if not isinstance(record.get("seq"), int):
            return None
        return record

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------

    def append(self, message: object) -> int:
        """Journal one typed request; returns its sequence number.

        The record is durable (to the configured fsync policy) before
        this method returns — callers dispatch *after* appending, the
        write-ahead contract.
        """
        handle = self._require_handle()
        frame = encode(message)
        record = {
            "frame": frame,
            "seq": self._next_seq,
            "sha": _frame_checksum(frame),
        }
        handle.write((_canonical(record) + "\n").encode("utf-8"))
        handle.flush()
        self._unsynced += 1
        if self.fsync == "always" or (
            self.fsync == "batch" and self._unsynced >= self.fsync_batch
        ):
            os.fsync(handle.fileno())
            self._stats["fsyncs"] += 1
            self._unsynced = 0
        seq = self._next_seq
        self._next_seq += 1
        self._messages.append(message)
        self._stats["records"] += 1
        self._stats["appended"] += 1
        return seq

    def _write_header(self) -> None:
        handle = self._require_handle()
        header = {
            "compactions": self.compactions,
            "journal_version": JOURNAL_VERSION,
            "kind": "meta",
        }
        handle.write((_canonical(header) + "\n").encode("utf-8"))
        handle.flush()
        if self.fsync != "never":
            os.fsync(handle.fileno())
            self._stats["fsyncs"] += 1

    def _require_handle(self) -> IO[bytes]:
        if self._handle is None:
            raise JournalError(f"journal {self.path} is closed")
        return self._handle

    # ------------------------------------------------------------------
    # Reading back
    # ------------------------------------------------------------------

    def replay(self) -> tuple[object, ...]:
        """The journaled typed messages, in append order."""
        return tuple(self._messages)

    def __len__(self) -> int:
        return len(self._messages)

    def stats(self) -> dict[str, int]:
        """Counters: records, appended, fsyncs, truncated_bytes."""
        return dict(self._stats)

    def fingerprint(self) -> str:
        """Stable digest of the journaled request stream."""
        digest = hashlib.sha256()
        for message in self._messages:
            digest.update((_canonical(encode(message)) + "\n").encode())
        return digest.hexdigest()[:16]

    # ------------------------------------------------------------------
    # Snapshot + compaction
    # ------------------------------------------------------------------

    def compact(self, snapshot: Sequence[object] | Iterable[object]) -> int:
        """Atomically rewrite the journal as ``snapshot``.

        ``snapshot`` is a request stream whose replay rebuilds the same
        live state the current journal replays to (the plane produces
        it via ``snapshot_requests()``).  The rewrite lands in a temp
        file first and is published with ``os.replace``, so a crash
        mid-compaction leaves either the old or the new journal intact,
        never a mix.  Sequence numbers restart at 1 and the header's
        ``compactions`` counter increments.

        Returns the number of records in the compacted journal.
        """
        handle = self._require_handle()
        handle.flush()
        messages = list(snapshot)
        self.compactions += 1
        temp = self.path.with_name(self.path.name + ".compact")
        with temp.open("wb") as writer:
            header = {
                "compactions": self.compactions,
                "journal_version": JOURNAL_VERSION,
                "kind": "meta",
            }
            writer.write((_canonical(header) + "\n").encode("utf-8"))
            for seq, message in enumerate(messages, start=1):
                frame = encode(message)
                record = {
                    "frame": frame,
                    "seq": seq,
                    "sha": _frame_checksum(frame),
                }
                writer.write(
                    (_canonical(record) + "\n").encode("utf-8")
                )
            writer.flush()
            os.fsync(writer.fileno())
        handle.close()
        os.replace(temp, self.path)
        self._handle = self.path.open("ab")
        self._next_seq = len(messages) + 1
        self._messages = messages
        self._stats["records"] = len(messages)
        self._stats["fsyncs"] += 1
        self._unsynced = 0
        return len(messages)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Flush, fsync (unless policy ``never``) and close the file."""
        if self._handle is None:
            return
        self._handle.flush()
        if self.fsync != "never" and self._unsynced:
            os.fsync(self._handle.fileno())
            self._stats["fsyncs"] += 1
            self._unsynced = 0
        self._handle.close()
        self._handle = None

    @property
    def closed(self) -> bool:
        return self._handle is None

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
