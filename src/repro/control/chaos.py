"""Seeded fault injection for the control plane — the chaos harness.

Two layers, both deterministic under a seed (the same stance as
:class:`repro.resilience.FaultPlan`: a chaos run is named by its
arguments, so every failure is replayable):

* :class:`ChaosPolicy` — transport-level faults.  Plugged into
  :class:`~repro.control.plane.ControlPlaneServer`, it decides per
  response whether to deliver it, drop the connection *before* the
  response, deliver a *partial* response then drop, or delay the write.
  Dropping after dispatch is the nasty case: the request was applied
  but the client cannot know — exactly the ambiguity the retry layer's
  idempotent request ids plus the server's dedup window resolve.
* :func:`run_chaos_session` — process-level faults.  Drives a scripted
  message sequence through a journal-backed
  :class:`~repro.control.plane.ControlPlane` and, at chosen points,
  kill-restarts the plane: the in-memory dispatcher is discarded
  (optionally with torn garbage appended to the journal file, the
  artifact of dying mid-write) and a fresh plane is rebuilt with
  :meth:`ControlPlane.recover`.  The harness's determinism contract —
  asserted by the hypothesis properties in
  ``tests/test_control_chaos.py`` — is that for *any* kill schedule,
  the final service manifests are byte-identical to the fault-free
  run's.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from repro.control.journal import Journal
from repro.control.plane import ControlPlane
from repro.core.errors import ReproError

__all__ = [
    "CHAOS_ACTIONS",
    "ChaosAction",
    "ChaosOutcome",
    "ChaosPolicy",
    "run_chaos_session",
]

#: Transport fault kinds a :class:`ChaosPolicy` can inject.
CHAOS_ACTIONS = ("deliver", "drop_before", "drop_partial", "delay")


@dataclass(frozen=True)
class ChaosAction:
    """One per-response decision of a :class:`ChaosPolicy`.

    Attributes:
        kind: One of :data:`CHAOS_ACTIONS`.
        fraction: For ``drop_partial``, the fraction of the response
            delivered before the cut (always strictly less than the
            whole frame).
        delay: For ``delay``, seconds to stall before writing.
    """

    kind: str
    fraction: float = 0.5
    delay: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in CHAOS_ACTIONS:
            raise ReproError(
                f"unknown chaos action {self.kind!r}; choose from "
                f"{', '.join(CHAOS_ACTIONS)}"
            )
        if not 0.0 < self.fraction <= 1.0:
            raise ReproError(
                f"fraction must be in (0, 1], got {self.fraction}"
            )
        if self.delay < 0.0:
            raise ReproError(f"delay must be >= 0, got {self.delay}")


class ChaosPolicy:
    """A seeded per-response fault schedule for the server transport.

    The decision for response index ``i`` is a pure function of
    ``(seed, i)`` — two servers with equal policies inject identical
    fault sequences regardless of timing.

    Args:
        seed: Names the fault sequence.
        drop_before: Probability the connection dies before the
            response is written (request already applied).
        drop_partial: Probability only a prefix of the response lands
            before the connection dies.
        delay: Probability the response is delayed by ``delay_seconds``.
        delay_seconds: Stall length for delayed responses.
        window: Half-open ``(lo, hi)`` range of response indices the
            policy may fault; outside it everything delivers.  ``hi``
            of ``None`` means unbounded.  Sparing index 0 (the service
            creation) keeps retries unambiguous — only ``MutationBatch``
            carries an idempotency id.
    """

    def __init__(
        self,
        seed: int = 0,
        *,
        drop_before: float = 0.0,
        drop_partial: float = 0.0,
        delay: float = 0.0,
        delay_seconds: float = 0.001,
        window: tuple[int, int | None] = (1, None),
    ) -> None:
        for name, rate in (
            ("drop_before", drop_before),
            ("drop_partial", drop_partial),
            ("delay", delay),
        ):
            if not 0.0 <= rate <= 1.0:
                raise ReproError(
                    f"{name} must be a probability, got {rate}"
                )
        if drop_before + drop_partial + delay > 1.0:
            raise ReproError(
                "fault probabilities must sum to <= 1.0"
            )
        self.seed = seed
        self.drop_before = drop_before
        self.drop_partial = drop_partial
        self.delay = delay
        self.delay_seconds = delay_seconds
        self.window = window
        self.injected: dict[str, int] = {
            kind: 0 for kind in CHAOS_ACTIONS
        }

    def next_action(self, index: int) -> ChaosAction:
        """The (deterministic) fault decision for response ``index``."""
        lo, hi = self.window
        if index < lo or (hi is not None and index >= hi):
            self.injected["deliver"] += 1
            return ChaosAction(kind="deliver")
        rng = random.Random(f"{self.seed}:{index}")
        roll = rng.random()
        if roll < self.drop_before:
            action = ChaosAction(kind="drop_before")
        elif roll < self.drop_before + self.drop_partial:
            action = ChaosAction(
                kind="drop_partial",
                fraction=0.1 + 0.8 * rng.random(),
            )
        elif roll < self.drop_before + self.drop_partial + self.delay:
            action = ChaosAction(
                kind="delay", delay=self.delay_seconds
            )
        else:
            action = ChaosAction(kind="deliver")
        self.injected[action.kind] += 1
        return action


@dataclass
class ChaosOutcome:
    """What a :func:`run_chaos_session` run produced.

    Attributes:
        responses: Typed response per fed message, in order (``None``
            for the message in flight when a kill struck, whose
            response was lost with the process).
        manifests: The finished services' manifests as canonical JSON
            byte strings, in finish order — the byte-identity payload
            chaos properties compare against the fault-free run.
        recoveries: How many kill-restart cycles ran.
        journal_stats: The final journal's counters.
    """

    responses: list[object]
    manifests: list[bytes]
    recoveries: int
    journal_stats: dict[str, int] = field(default_factory=dict)


def final_manifest_bytes(plane: ControlPlane) -> list[bytes]:
    """Canonical JSON bytes of every finished service manifest."""
    import json

    return [
        json.dumps(
            dict(manifest.manifest), sort_keys=True, indent=2
        ).encode("utf-8")
        for manifest in plane.finished_manifests
    ]


def run_chaos_session(
    messages: Sequence[object],
    journal_path: str | Path,
    *,
    kill_after: Sequence[int] = (),
    torn_dispatch: Sequence[int] = (),
    torn_tail: bytes = b"",
    fsync: str = "always",
) -> ChaosOutcome:
    """Feed ``messages`` through a journal-backed plane with crashes.

    ``kill_after`` lists 0-based message indices; *before* dispatching
    message ``i`` with ``i`` in the set, the plane is killed: the
    journal handle is dropped where it stands, ``torn_tail`` bytes are
    appended to the journal file (simulating a write torn by the
    crash), and a fresh plane is recovered from the journal.  Killing
    at ``len(messages)`` crashes after the last message instead.  The
    kill therefore lands at an arbitrary *journaled prefix* — exactly
    the durability contract's quantifier.

    ``torn_dispatch`` indices exercise the sharper write-ahead case:
    message ``i`` *is* appended to the journal, but the plane dies
    before dispatch completes and nobody sees a response
    (``responses[i]`` is ``None``).  Recovery replays the appended
    request, so its effects survive the crash — the reason the append
    happens first.

    Queries lost to a crash are not retried (they are read-only); the
    chaos properties compare ``manifests``, which is rebuilt state, not
    response traffic.
    """
    path = Path(journal_path)
    kills = sorted(set(int(k) for k in kill_after))
    torn = set(int(k) for k in torn_dispatch)
    for k in [*kills, *torn]:
        if not 0 <= k <= len(messages):
            raise ReproError(
                f"kill point {k} outside 0..{len(messages)}"
            )
    journal = Journal.open(path, fsync=fsync)
    plane = ControlPlane(journal)
    responses: list[object] = []
    recoveries = 0

    def crash_and_recover() -> tuple[Journal, ControlPlane]:
        nonlocal recoveries
        journal.close()
        if torn_tail:
            with path.open("ab") as broken:
                broken.write(torn_tail)
        reopened = Journal.open(path, fsync=fsync)
        recoveries += 1
        return reopened, ControlPlane.recover(reopened)

    for index, message in enumerate(messages):
        if index in kills:
            journal, plane = crash_and_recover()
        if index in torn:
            # Write-ahead landed; the crash eats the dispatch and the
            # response.  Recovery replays the journaled request.
            journal.append(message)
            responses.append(None)
            journal, plane = crash_and_recover()
            continue
        responses.append(plane.handle(message))
    if len(messages) in kills:
        journal, plane = crash_and_recover()
    manifests = final_manifest_bytes(plane)
    stats = journal.stats()
    journal.close()
    return ChaosOutcome(
        responses=responses,
        manifests=manifests,
        recoveries=recoveries,
        journal_stats=stats,
    )
