"""One hosted service: the typed-API surface over a live runtime.

A :class:`ServiceSession` binds together everything a named service on
the control plane owns:

* a private :class:`~repro.engine.facade.BroadcastEngine` (fresh cache
  and telemetry per service, the same isolation :meth:`engine.live`
  relies on for byte-identical replay);
* a :class:`~repro.live.service.LiveBroadcastService` driven through
  its online stepping surface (``start`` / ``offer`` / ``finish``);
* a :class:`~repro.control.remediation.RemediationEngine` stepped after
  every event;
* a running SHA-256 over the canonical event stream — the *stream
  fingerprint* recorded in the manifest, the analogue of a trace
  fingerprint for sessions that were never a trace object;
* a running SHA-256 over the canonical *request* stream (the create
  request plus every accepted mutation batch) — the durability trail
  recorded in the manifest's ``control.durability`` block (schema v6),
  which recovery from a write-ahead journal reproduces byte-for-byte.

The session answers the typed requests (:class:`MutationBatch`,
:class:`SloQuery`, :class:`ErrorBudgetQuery`, :class:`FinishService`)
with typed responses; the plane in :mod:`repro.control.plane` is a thin
dispatcher over these methods.
"""

from __future__ import annotations

import hashlib
import json

from repro.api.codec import encode_line
from repro.api.types import (
    CreateServiceRequest,
    ErrorBudgetReport,
    MutationBatch,
    MutationBatchResult,
    ServiceCreated,
    ServiceManifest,
    SloQuery,
    SloVerdict,
)
from repro.control.remediation import RemediationEngine, plan_stats
from repro.core.errors import ReproError
from repro.engine.facade import BroadcastEngine
from repro.engine.telemetry import RunManifest, describe_instance
from repro.live.catalog import LiveCatalog
from repro.live.mutations import MutationTrace
from repro.live.service import LiveBroadcastService

__all__ = ["ServiceSession"]


class ServiceSession:
    """A named live service hosted on the control plane."""

    def __init__(self, request: CreateServiceRequest) -> None:
        self.request = request
        self.engine = BroadcastEngine()
        self._cache_before = self.engine.cache.stats()
        self._telemetry_before = self.engine.telemetry.snapshot()
        self.live = LiveBroadcastService(
            dict(request.catalog),
            MutationTrace(
                horizon=request.horizon,
                events=(),
                meta={"generator": "control"},
            ),
            budget=request.budget,
            engine=self.engine,
            admission=request.admission,
            queue_limit=request.queue_limit,
            slo_window=request.slo_window,
            target_miss_rate=request.target_miss_rate,
            replan_cooldown=request.replan_cooldown,
            coalesce_window=request.coalesce_window,
        )
        self.remediation = RemediationEngine(
            request.name, self.live, request.remediation
        )
        self._initial_instance = LiveCatalog(
            dict(request.catalog)
        ).to_instance()
        self._stream = hashlib.sha256()
        self._events_streamed = 0
        self._events: list[object] = []
        self._requests = hashlib.sha256()
        self._requests.update(encode_line(request).encode("utf-8"))
        self._requests_accepted = 1
        self.finished = False
        self.manifest: RunManifest | None = None
        self.live.start()

    def events_streamed(self) -> tuple:
        """Every event applied so far, in order (the snapshot source)."""
        return tuple(self._events)

    # ------------------------------------------------------------------
    # Requests
    # ------------------------------------------------------------------

    def created(self) -> ServiceCreated:
        """The :class:`ServiceCreated` response for this session."""
        required = self.live.catalog.required_channels()
        assert self.live.program is not None
        return ServiceCreated(
            service=self.request.name,
            budget=self.live.budget,
            required_channels=required,
            algorithm="susc" if required <= self.live.budget else "pamad",
            cycle_length=self.live.program.cycle_length,
            pages=len(self.live.catalog),
        )

    def apply_batch(self, batch: MutationBatch) -> MutationBatchResult:
        """Stream one batch of events through the service.

        The whole batch is validated against the session clock and the
        horizon before any event is applied, so a bad batch is rejected
        atomically instead of leaving the service half-mutated.
        """
        if self.finished:
            raise ReproError(
                f"service {self.request.name!r} is already finished"
            )
        for event in batch.events:
            if event.time < self.live.now:
                raise ReproError(
                    f"event at t={event.time} is in the past; the "
                    f"session clock is at t={self.live.now}"
                )
            if event.time >= self.request.horizon:
                raise ReproError(
                    f"event at t={event.time} is beyond the service "
                    f"horizon {self.request.horizon}"
                )
        counters_before = dict(self.live.counters)
        admission_before = dict(self.live.admission.counters)
        records_before = len(self.remediation.records)
        for event in batch.events:
            self.live.offer(event)
            self.remediation.step()
            self._stream.update(
                json.dumps(event.to_dict(), sort_keys=True).encode("utf-8")
            )
            self._events_streamed += 1
            self._events.append(event)
        # Digest the *logical* batch (request_id stripped): the
        # durability fingerprint identifies what was applied, not the
        # retry metadata it happened to arrive with.
        self._requests.update(
            encode_line(
                MutationBatch(service=batch.service, events=batch.events)
            ).encode("utf-8")
        )
        self._requests_accepted += 1

        def counter_delta(name: str) -> int:
            return self.live.counters[name] - counters_before[name]

        def admission_delta(name: str) -> int:
            return (
                self.live.admission.counters[name]
                - admission_before[name]
            )

        return MutationBatchResult(
            service=self.request.name,
            applied=len(batch.events),
            admitted=admission_delta("admitted"),
            queued=admission_delta("queued"),
            rejected=admission_delta("rejected"),
            listeners=counter_delta("listeners"),
            misses=counter_delta("misses"),
            replans=(
                counter_delta("full_replans")
                + counter_delta("fastpath_replans")
            ),
            remediations=len(self.remediation.records) - records_before,
        )

    def slo_query(self, query: SloQuery) -> SloVerdict:
        """Answer "is this deadline achievable under this budget?".

        The candidate load is the committed catalog, plus the admission
        queue's pending inserts (capacity already promised to them),
        plus ``query.pages`` hypothetical pages at the queried deadline.
        The verdict is Theorem 3.1 in exact arithmetic; when the budget
        falls short, ``predicted_delay`` prices the best PAMAD
        compromise at the budget via the Eq. 2/3/5/7 model.
        """
        candidate = self.live.catalog.pages()
        queued_pages = 0
        for event in self.live.admission.queued:
            if event.page_id not in candidate:
                candidate[event.page_id] = event.expected_time
                queued_pages += 1
        next_id = max(candidate) + 1
        for offset in range(query.pages):
            candidate[next_id + offset] = query.expected_time
        required, predicted_delay, _ = plan_stats(
            candidate, self.live.budget
        )
        achievable = required <= self.live.budget
        return SloVerdict(
            service=self.request.name,
            achievable=achievable,
            required_channels=required,
            budget=self.live.budget,
            headroom=self.live.budget - required,
            channel_load=sum(1.0 / t for t in candidate.values()),
            predicted_delay=predicted_delay,
            queued_pages=queued_pages,
            reason="fits-budget" if achievable else "exceeds-budget",
        )

    def error_budget(self) -> ErrorBudgetReport:
        """Per-deadline-class error-budget breakdown from the tracker."""
        slo = self.live.slo
        target = slo.target_miss_rate
        per_class: dict[str, dict[str, float]] = {}
        for expected, stats in slo.per_class().items():
            if target > 0:
                remaining = 1.0 - stats["miss_rate"] / target
            else:
                remaining = 1.0 if stats["misses"] == 0 else -1.0
            per_class[str(expected)] = {
                "listeners": stats["listeners"],
                "misses": stats["misses"],
                "miss_rate": round(stats["miss_rate"], 6),
                "budget_remaining": round(remaining, 6),
            }
        return ErrorBudgetReport(
            service=self.request.name,
            listeners=slo.listeners,
            misses=slo.misses,
            miss_rate=slo.miss_rate,
            rolling_miss_rate=slo.rolling_miss_rate,
            target_miss_rate=target,
            window=slo.window,
            per_class=per_class,
        )

    def finish(self) -> ServiceManifest:
        """Close the session: final report plus the v6 manifest."""
        if self.finished:
            raise ReproError(
                f"service {self.request.name!r} is already finished"
            )
        report = self.live.finish()
        self.finished = True
        control_block = {
            **self.remediation.as_dict(),
            "stream": {
                "events": self._events_streamed,
                "fingerprint": self._stream.hexdigest()[:16],
            },
            # Schema v6: the durability trail.  A deterministic function
            # of the accepted request stream, so a session recovered
            # from a write-ahead journal reproduces it byte-for-byte.
            "durability": {
                "requests": self._requests_accepted,
                "fingerprint": self._requests.hexdigest()[:16],
            },
        }
        remediations = len(self.remediation.records)
        manifest = self.engine.control_manifest(
            instance=self._initial_instance,
            parameters={
                "request": self.request.to_dict(),
                "events_streamed": self._events_streamed,
            },
            channels=(self.live.budget,),
            results={
                "miss_rate": report.slo["miss_rate"],
                "listeners": report.counters["listeners"],
                "mutations": report.counters["mutations"],
                "full_replans": report.counters["full_replans"],
                "remediations": remediations,
                "remediations_applied": control_block["applied"],
                "final_valid": report.final_valid,
            },
            service=report.as_dict(),
            control=control_block,
            cache_before=self._cache_before,
            telemetry_before=self._telemetry_before,
        )
        self.manifest = manifest
        return ServiceManifest(
            service=self.request.name,
            manifest=manifest.to_dict(),
            summary={
                "horizon": report.horizon,
                "budget": report.budget,
                "listeners": report.counters["listeners"],
                "miss_rate": report.slo["miss_rate"],
                "remediations": remediations,
                "final_valid": report.final_valid,
            },
        )
