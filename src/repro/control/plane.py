"""The control plane: typed dispatch plus an asyncio NDJSON server.

Layering, innermost out:

* :class:`ControlPlane` — a synchronous dispatcher mapping each
  :mod:`repro.api` request object to a response object.  All service
  state lives here; the class is directly testable with no sockets or
  event loop involved.  Optionally backed by a
  :class:`~repro.control.journal.Journal`: every state-mutating request
  is appended (write-ahead) before it is dispatched, and
  :meth:`ControlPlane.recover` replays a journaled prefix through the
  deterministic dispatcher to rebuild byte-identical session state
  after a crash.  ``MutationBatch`` requests carrying a ``request_id``
  are deduplicated inside a bounded window, so an ambiguous retry never
  double-applies.
* :class:`ControlPlaneServer` — the asyncio shell: newline-delimited
  JSON frames (see :func:`repro.api.encode_line`) over a UNIX or TCP
  socket, one request → one response per line, stdlib ``asyncio`` only.
  Requests are handled strictly in arrival order on the event-loop
  thread, so a scripted session replays deterministically regardless of
  how clients interleave.  Hardened: per-connection read timeouts, a
  max-frame-size limit answered with a ``bad-request`` :class:`ApiError`
  instead of unbounded buffering, a UTF-8 guard on inbound frames, and
  a shutdown drain that closes *every* open connection (idle ones
  included).  A seeded chaos policy (:mod:`repro.control.chaos`) can be
  plugged in to drop/delay/partial responses for fault-injection tests.
* :class:`ControlPlaneClient` — the matching stream client; a dropped
  connection raises the typed
  :class:`~repro.core.errors.ControlPlaneDisconnected` so the retry
  layer (:mod:`repro.control.retry`) can tell transport faults from
  structural errors.
* :func:`run_scripted_session` — the CI/CLI entry point: stand up a
  plane on a UNIX socket, replay a message script over a real
  connection, tear the plane down, return the typed responses.
"""

from __future__ import annotations

import asyncio
import hashlib
from collections import OrderedDict
from pathlib import Path
from typing import TYPE_CHECKING, Sequence

from repro.api.codec import decode_line, encode_line
from repro.api.types import (
    Ack,
    ApiError,
    CreateServiceRequest,
    ErrorBudgetQuery,
    FederationCreate,
    FinishService,
    ListServices,
    MutationBatch,
    ServiceList,
    ServiceManifest,
    ShardReport,
    Shutdown,
    SloQuery,
)
from repro.control.session import ServiceSession
from repro.core.errors import ControlPlaneDisconnected, ReproError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.control.chaos import ChaosPolicy
    from repro.control.journal import Journal

__all__ = [
    "ControlPlane",
    "ControlPlaneClient",
    "ControlPlaneServer",
    "run_scripted_session",
]

#: Request types that mutate plane state and therefore hit the journal.
_MUTATING_TYPES = (
    CreateServiceRequest,
    MutationBatch,
    FinishService,
    Shutdown,
)


class ControlPlane:
    """Synchronous request dispatcher over named service sessions.

    Args:
        journal: Optional write-ahead journal.  When set, every
            state-mutating request (``CreateServiceRequest``,
            ``MutationBatch``, ``FinishService``, ``Shutdown``) is
            appended *before* dispatch, so an accepted request survives
            a crash at any later point; queries are never journaled.
        dedup_window: How many ``(service, request_id)`` responses to
            retain for duplicate suppression.  A retransmitted
            ``MutationBatch`` whose id is still inside the window gets
            the original response back without re-applying its events.
    """

    def __init__(
        self,
        journal: "Journal | None" = None,
        *,
        dedup_window: int = 256,
    ) -> None:
        if dedup_window < 1:
            raise ReproError(
                f"dedup_window must be >= 1, got {dedup_window}"
            )
        self._sessions: dict[str, ServiceSession] = {}
        self.closing = False
        self.journal = journal
        self.dedup_window = dedup_window
        self._dedup: OrderedDict[tuple[str, str], object] = OrderedDict()
        self._replaying = False
        #: Manifests of every finished service, in finish order.  Kept
        #: so recovery (which replays `FinishService` requests whose
        #: responses nobody is reading) still surfaces the manifests.
        self.finished_manifests: list[ServiceManifest] = []

    @property
    def services(self) -> tuple[str, ...]:
        """Names of the hosted services, sorted."""
        return tuple(sorted(self._sessions))

    def session(self, name: str) -> ServiceSession | None:
        """The session behind ``name``, or ``None``."""
        return self._sessions.get(name)

    # ------------------------------------------------------------------
    # Durability: recovery, snapshots, compaction
    # ------------------------------------------------------------------

    @classmethod
    def recover(
        cls,
        journal: "Journal",
        *,
        dedup_window: int = 256,
    ) -> "ControlPlane":
        """Rebuild a plane from a journal's durable prefix.

        Every journaled request is replayed through the normal
        dispatcher (which is deterministic), so the recovered sessions
        — catalogs, programs, SLO windows, remediation trails, stream
        fingerprints — are byte-identical to the pre-crash state the
        journal covers.  Replay does not re-append to the journal; new
        requests handled after recovery do.

        Responses produced during replay are discarded, but manifests
        of services finished by replayed ``FinishService`` /
        ``Shutdown`` requests accumulate in ``finished_manifests``.
        """
        plane = cls(dedup_window=dedup_window)
        plane._replaying = True
        try:
            for message in journal.replay():
                plane.handle(message)
        finally:
            plane._replaying = False
        plane.journal = journal
        return plane

    def snapshot_requests(self) -> list[object]:
        """An equivalent request stream for the current live state.

        For each open service, in creation order: its original
        ``CreateServiceRequest`` plus one coalesced ``MutationBatch`` of
        every event streamed so far.  Replaying the stream through a
        fresh plane rebuilds identical service state (dispatch is
        per-event, so batch boundaries are not load-bearing); finished
        services and the dedup window are deliberately dropped — this
        is the snapshot a compacted journal stores.
        """
        if self.closing:
            raise ReproError(
                "cannot snapshot a control plane that is shutting down"
            )
        snapshot: list[object] = []
        for name, session in self._sessions.items():
            snapshot.append(session.request)
            events = session.events_streamed()
            if events:
                snapshot.append(
                    MutationBatch(service=name, events=events)
                )
        return snapshot

    def compact_journal(self) -> int:
        """Compact the attached journal to a snapshot of live state.

        Returns the compacted record count.  The dedup window is
        cleared: a compaction is a barrier — callers must not compact
        with ambiguous retries still in flight.
        """
        if self.journal is None:
            raise ReproError(
                "no journal attached to this control plane"
            )
        count = self.journal.compact(self.snapshot_requests())
        self._dedup.clear()
        return count

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def handle(self, message: object) -> object:
        """Dispatch one typed request; never raises.

        Order of operations for mutating requests: duplicate check
        first (a dedup hit answers from the window without touching the
        journal), then the write-ahead append, then dispatch.
        Structural errors (:class:`~repro.core.errors.ReproError`) map
        to ``bad-request`` :class:`ApiError` responses; anything else is
        reported as ``internal`` so one poisoned request cannot take
        down the plane.  A journal append failure is reported as
        ``internal`` *without* dispatching — durability before effects.
        """
        dedup_key: tuple[str, str] | None = None
        if isinstance(message, MutationBatch) and message.request_id:
            dedup_key = (message.service, message.request_id)
            cached = self._dedup.get(dedup_key)
            if cached is not None:
                self._dedup.move_to_end(dedup_key)
                return cached
        if (
            self.journal is not None
            and not self._replaying
            and isinstance(message, _MUTATING_TYPES)
        ):
            try:
                self.journal.append(message)
            except OSError as error:  # pragma: no cover - disk faults
                return ApiError(
                    code="internal",
                    message=f"journal append failed: {error}",
                )
        try:
            response = self._dispatch(message)
        except ReproError as error:
            response = ApiError(code="bad-request", message=str(error))
        except Exception as error:  # pragma: no cover - defensive
            response = ApiError(
                code="internal",
                message=f"{type(error).__name__}: {error}",
            )
        if dedup_key is not None:
            self._dedup[dedup_key] = response
            while len(self._dedup) > self.dedup_window:
                self._dedup.popitem(last=False)
        return response

    def handle_line(self, line: str) -> str:
        """Decode one wire frame, dispatch it, encode the response."""
        try:
            message = decode_line(line)
        except ReproError as error:
            return encode_line(
                ApiError(code="bad-request", message=str(error))
            )
        return encode_line(self.handle(message))

    def _dispatch(self, message: object) -> object:
        if isinstance(message, CreateServiceRequest):
            if message.name in self._sessions:
                return ApiError(
                    code="duplicate-service",
                    message=(
                        f"a service named {message.name!r} already exists"
                    ),
                )
            session = ServiceSession(message)
            self._sessions[message.name] = session
            return session.created()
        if isinstance(message, MutationBatch):
            session = self._sessions.get(message.service)
            if session is None:
                return self._unknown(message.service)
            return session.apply_batch(message)
        if isinstance(message, SloQuery):
            session = self._sessions.get(message.service)
            if session is None:
                return self._unknown(message.service)
            return session.slo_query(message)
        if isinstance(message, ErrorBudgetQuery):
            session = self._sessions.get(message.service)
            if session is None:
                return self._unknown(message.service)
            return session.error_budget()
        if isinstance(message, FinishService):
            session = self._sessions.get(message.service)
            if session is None:
                return self._unknown(message.service)
            response = session.finish()
            self.finished_manifests.append(response)
            del self._sessions[message.service]
            return response
        if isinstance(message, FederationCreate):
            return self._plan_federation(message)
        if isinstance(message, ListServices):
            return ServiceList(services=self.services)
        if isinstance(message, Shutdown):
            # Open services are finished (and their manifests built)
            # before the plane reports itself closed.
            for name in self.services:
                session = self._sessions.pop(name)
                if not session.finished:
                    self.finished_manifests.append(session.finish())
            self.closing = True
            return Ack(message="shutting-down")
        return ApiError(
            code="bad-request",
            message=(
                f"{type(message).__name__} is not a request the control "
                "plane accepts"
            ),
        )

    @staticmethod
    def _plan_federation(message: FederationCreate) -> object:
        # A pure planning probe: partition the catalog on the ring and
        # judge each shard against Theorem 3.1.  No session is created
        # and nothing is journaled, so probing is free and replay-safe.
        from repro.federation.admission import required_channels_of
        from repro.federation.ring import ShardRing, partition_catalog

        groups = len(set(message.catalog.values()))
        if message.shards > groups:
            return ApiError(
                code="bad-request",
                message=(
                    f"cannot spread {groups} ladder group(s) over "
                    f"{message.shards} shard(s) without splitting a "
                    "group"
                ),
            )
        ring = ShardRing(message.shards, seed=message.seed)
        partitions = partition_catalog(message.catalog, ring)
        entries = []
        requirements = []
        for shard in ring.shards:
            catalog = partitions[shard]
            histogram: dict[int, int] = {}
            for expected in catalog.values():
                histogram[expected] = histogram.get(expected, 0) + 1
            required = required_channels_of(histogram)
            requirements.append(required)
            entries.append(
                {
                    "shard": shard,
                    "pages": len(catalog),
                    "required_channels": required,
                    "channel_load": round(
                        sum(1.0 / t for t in catalog.values()), 6
                    ),
                }
            )
        budget = (
            max(requirements) if message.budget is None else message.budget
        )
        return ShardReport(
            name=message.name,
            shards=message.shards,
            budget=budget,
            ring_fingerprint=ring.fingerprint(),
            entries=tuple(entries),
            feasible=all(r <= budget for r in requirements),
        )

    @staticmethod
    def _unknown(name: str) -> ApiError:
        return ApiError(
            code="unknown-service",
            message=f"no service named {name!r} on this control plane",
        )


class ControlPlaneServer:
    """Asyncio NDJSON transport around a :class:`ControlPlane`.

    Args:
        plane: The dispatcher to serve (a fresh one by default).
        read_timeout: Seconds a connection may sit idle between frames
            before the server closes it (``None`` = no timeout).
        max_frame_bytes: Longest accepted request line.  An overlong
            frame is answered with a ``bad-request`` :class:`ApiError`
            and the connection is closed — the stream cannot be resynced
            mid-line, but the client gets a structured reason first.
        chaos: Optional :class:`~repro.control.chaos.ChaosPolicy`;
            when set, each response consults it and may be dropped,
            truncated or delayed (seeded fault injection for tests).
    """

    def __init__(
        self,
        plane: ControlPlane | None = None,
        *,
        read_timeout: float | None = None,
        max_frame_bytes: int = 1_048_576,
        chaos: "ChaosPolicy | None" = None,
    ) -> None:
        if max_frame_bytes < 1024:
            raise ReproError(
                f"max_frame_bytes must be >= 1024, got {max_frame_bytes}"
            )
        self.plane = plane if plane is not None else ControlPlane()
        self.read_timeout = read_timeout
        self.max_frame_bytes = max_frame_bytes
        self.chaos = chaos
        self._closed = asyncio.Event()
        self._writers: set[asyncio.StreamWriter] = set()
        self._requests_served = 0

    async def wait_closed(self) -> None:
        """Block until the plane has processed a ``Shutdown``."""
        await self._closed.wait()

    async def _client(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        self._writers.add(writer)
        try:
            while not self.plane.closing:
                try:
                    line = await asyncio.wait_for(
                        reader.readline(), self.read_timeout
                    )
                except asyncio.TimeoutError:
                    break  # idle past the read timeout: drop the client
                except ValueError:
                    # StreamReader limit overrun: the frame exceeds
                    # max_frame_bytes and the line buffer is poisoned.
                    # Answer with a structured error, then close.
                    await self._respond(
                        writer,
                        encode_line(
                            ApiError(
                                code="bad-request",
                                message=(
                                    "frame exceeds the "
                                    f"{self.max_frame_bytes}-byte limit"
                                ),
                            )
                        ),
                    )
                    break
                if not line:
                    break
                try:
                    text = line.decode("utf-8")
                except UnicodeDecodeError:
                    delivered = await self._respond(
                        writer,
                        encode_line(
                            ApiError(
                                code="bad-request",
                                message="frame is not valid UTF-8",
                            )
                        ),
                    )
                    if not delivered:
                        break
                    continue
                response = self.plane.handle_line(text)
                delivered = await self._respond(writer, response)
                if self.plane.closing:
                    self._drain_connections()
                    self._closed.set()
                    break
                if not delivered:
                    break
        except (ConnectionError, OSError):  # pragma: no cover - races
            pass
        finally:
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass
            if self.plane.closing:
                self._closed.set()

    async def _respond(
        self, writer: asyncio.StreamWriter, response: str
    ) -> bool:
        """Write one response frame, via the chaos policy when present.

        Returns ``True`` when the full frame was delivered; ``False``
        when the chaos policy dropped or truncated it (the caller then
        closes the connection, as a real transport fault would).
        """
        payload = response.encode("utf-8")
        self._requests_served += 1
        if self.chaos is not None:
            action = self.chaos.next_action(self._requests_served - 1)
            if action.kind == "drop_before":
                return False
            if action.kind == "drop_partial":
                cut = max(1, int(len(payload) * action.fraction))
                writer.write(payload[: min(cut, len(payload) - 1)])
                await writer.drain()
                return False
            if action.kind == "delay":
                await asyncio.sleep(action.delay)
        writer.write(payload)
        await writer.drain()
        return True

    def _drain_connections(self) -> None:
        """Close every open connection (the shutdown drain).

        Without this, idle clients would linger until their next read;
        with it, a ``Shutdown`` tears the whole transport down
        promptly.
        """
        for writer in list(self._writers):
            writer.close()

    async def start_unix(self, path: str | Path) -> asyncio.AbstractServer:
        """Bind a UNIX-socket listener; returns the asyncio server."""
        return await asyncio.start_unix_server(
            self._client, path=str(path), limit=self.max_frame_bytes
        )

    async def start_tcp(
        self, host: str, port: int
    ) -> asyncio.AbstractServer:
        """Bind a TCP listener; returns the asyncio server."""
        return await asyncio.start_server(
            self._client, host, port, limit=self.max_frame_bytes
        )

    async def serve_unix(self, path: str | Path) -> None:
        """Serve on a UNIX socket until a ``Shutdown`` request arrives."""
        server = await self.start_unix(path)
        await self._serve(server)

    async def serve_tcp(self, host: str, port: int) -> None:
        """Serve on TCP until a ``Shutdown`` request arrives."""
        server = await self.start_tcp(host, port)
        await self._serve(server)

    async def _serve(self, server: asyncio.AbstractServer) -> None:
        async with server:
            await self.wait_closed()


class ControlPlaneClient:
    """Line-oriented client for a running control plane."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        self._reader = reader
        self._writer = writer

    @classmethod
    async def connect_unix(cls, path: str | Path) -> "ControlPlaneClient":
        reader, writer = await asyncio.open_unix_connection(str(path))
        return cls(reader, writer)

    @classmethod
    async def connect_tcp(
        cls, host: str, port: int
    ) -> "ControlPlaneClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def request(self, message: object) -> object:
        """Send one typed request; await and decode its response.

        Raises:
            ControlPlaneDisconnected: When the transport drops before a
                complete response arrives.  The request's outcome is
                ambiguous — it may have been applied — which is what
                the retry layer's idempotent request ids resolve.
        """
        try:
            self._writer.write(encode_line(message).encode("utf-8"))
            await self._writer.drain()
            line = await self._reader.readline()
        except (ConnectionError, OSError) as error:
            raise ControlPlaneDisconnected(
                f"control plane connection failed mid-request: {error}"
            ) from error
        if not line or not line.endswith(b"\n"):
            raise ControlPlaneDisconnected(
                "control plane closed the connection mid-request"
            )
        return decode_line(line.decode("utf-8"))

    async def close(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover
            pass


def run_scripted_session(
    messages: Sequence[object],
    socket_path: str | Path,
    *,
    plane: ControlPlane | None = None,
) -> list[object]:
    """Replay a message script against a real control plane.

    Stands up a :class:`ControlPlaneServer` on ``socket_path`` (UNIX
    socket), connects a client, sends every message in order, and
    returns the typed responses (one per message, in order).  When the
    script does not end with :class:`~repro.api.types.Shutdown`, one is
    sent implicitly so the server always winds down; its ``Ack`` is not
    included in the returned list.

    ``plane`` substitutes a pre-built dispatcher — a journal-backed or
    freshly recovered one — for the default empty plane.

    This is the CI smoke path and the CLI's ``serve --session`` mode:
    everything — framing, codecs, dispatch, session state — runs exactly
    as it would for a long-lived deployment, just against a scripted
    client.
    """

    async def _run() -> list[object]:
        server = ControlPlaneServer(plane)
        bound = await server.start_unix(socket_path)
        async with bound:
            client = await ControlPlaneClient.connect_unix(socket_path)
            responses: list[object] = []
            try:
                for message in messages:
                    responses.append(await client.request(message))
                if not (
                    messages and isinstance(messages[-1], Shutdown)
                ):
                    await client.request(Shutdown())
            finally:
                await client.close()
            await server.wait_closed()
        return responses

    return asyncio.run(_run())
