"""The control plane: typed dispatch plus an asyncio NDJSON server.

Layering, innermost out:

* :class:`ControlPlane` — a synchronous dispatcher mapping each
  :mod:`repro.api` request object to a response object.  All service
  state lives here; the class is directly testable with no sockets or
  event loop involved.
* :class:`ControlPlaneServer` — the asyncio shell: newline-delimited
  JSON frames (see :func:`repro.api.encode_line`) over a UNIX or TCP
  socket, one request → one response per line, stdlib ``asyncio`` only.
  Requests are handled strictly in arrival order on the event-loop
  thread, so a scripted session replays deterministically regardless of
  how clients interleave.
* :class:`ControlPlaneClient` — the matching stream client.
* :func:`run_scripted_session` — the CI/CLI entry point: stand up a
  plane on a UNIX socket, replay a message script over a real
  connection, tear the plane down, return the typed responses.
"""

from __future__ import annotations

import asyncio
from pathlib import Path
from typing import Sequence

from repro.api.codec import decode_line, encode_line
from repro.api.types import (
    Ack,
    ApiError,
    CreateServiceRequest,
    ErrorBudgetQuery,
    FinishService,
    ListServices,
    MutationBatch,
    ServiceList,
    Shutdown,
    SloQuery,
)
from repro.control.session import ServiceSession
from repro.core.errors import ReproError

__all__ = [
    "ControlPlane",
    "ControlPlaneClient",
    "ControlPlaneServer",
    "run_scripted_session",
]


class ControlPlane:
    """Synchronous request dispatcher over named service sessions."""

    def __init__(self) -> None:
        self._sessions: dict[str, ServiceSession] = {}
        self.closing = False

    @property
    def services(self) -> tuple[str, ...]:
        """Names of the hosted services, sorted."""
        return tuple(sorted(self._sessions))

    def session(self, name: str) -> ServiceSession | None:
        """The session behind ``name``, or ``None``."""
        return self._sessions.get(name)

    def handle(self, message: object) -> object:
        """Dispatch one typed request; never raises.

        Structural errors (:class:`~repro.core.errors.ReproError`) map
        to ``bad-request`` :class:`ApiError` responses; anything else is
        reported as ``internal`` so one poisoned request cannot take
        down the plane.
        """
        try:
            return self._dispatch(message)
        except ReproError as error:
            return ApiError(code="bad-request", message=str(error))
        except Exception as error:  # pragma: no cover - defensive
            return ApiError(
                code="internal",
                message=f"{type(error).__name__}: {error}",
            )

    def handle_line(self, line: str) -> str:
        """Decode one wire frame, dispatch it, encode the response."""
        try:
            message = decode_line(line)
        except ReproError as error:
            return encode_line(
                ApiError(code="bad-request", message=str(error))
            )
        return encode_line(self.handle(message))

    def _dispatch(self, message: object) -> object:
        if isinstance(message, CreateServiceRequest):
            if message.name in self._sessions:
                return ApiError(
                    code="duplicate-service",
                    message=(
                        f"a service named {message.name!r} already exists"
                    ),
                )
            session = ServiceSession(message)
            self._sessions[message.name] = session
            return session.created()
        if isinstance(message, MutationBatch):
            session = self._sessions.get(message.service)
            if session is None:
                return self._unknown(message.service)
            return session.apply_batch(message)
        if isinstance(message, SloQuery):
            session = self._sessions.get(message.service)
            if session is None:
                return self._unknown(message.service)
            return session.slo_query(message)
        if isinstance(message, ErrorBudgetQuery):
            session = self._sessions.get(message.service)
            if session is None:
                return self._unknown(message.service)
            return session.error_budget()
        if isinstance(message, FinishService):
            session = self._sessions.get(message.service)
            if session is None:
                return self._unknown(message.service)
            response = session.finish()
            del self._sessions[message.service]
            return response
        if isinstance(message, ListServices):
            return ServiceList(services=self.services)
        if isinstance(message, Shutdown):
            # Open services are finished (and their manifests built)
            # before the plane reports itself closed.
            for name in self.services:
                session = self._sessions.pop(name)
                if not session.finished:
                    session.finish()
            self.closing = True
            return Ack(message="shutting-down")
        return ApiError(
            code="bad-request",
            message=(
                f"{type(message).__name__} is not a request the control "
                "plane accepts"
            ),
        )

    @staticmethod
    def _unknown(name: str) -> ApiError:
        return ApiError(
            code="unknown-service",
            message=f"no service named {name!r} on this control plane",
        )


class ControlPlaneServer:
    """Asyncio NDJSON transport around a :class:`ControlPlane`."""

    def __init__(self, plane: ControlPlane | None = None) -> None:
        self.plane = plane if plane is not None else ControlPlane()
        self._closed = asyncio.Event()

    async def _client(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            while not self.plane.closing:
                line = await reader.readline()
                if not line:
                    break
                response = self.plane.handle_line(
                    line.decode("utf-8")
                )
                writer.write(response.encode("utf-8"))
                await writer.drain()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass
            if self.plane.closing:
                self._closed.set()

    async def start_unix(self, path: str | Path) -> asyncio.AbstractServer:
        """Bind a UNIX-socket listener; returns the asyncio server."""
        return await asyncio.start_unix_server(
            self._client, path=str(path)
        )

    async def start_tcp(
        self, host: str, port: int
    ) -> asyncio.AbstractServer:
        """Bind a TCP listener; returns the asyncio server."""
        return await asyncio.start_server(self._client, host, port)

    async def serve_unix(self, path: str | Path) -> None:
        """Serve on a UNIX socket until a ``Shutdown`` request arrives."""
        server = await self.start_unix(path)
        await self._serve(server)

    async def serve_tcp(self, host: str, port: int) -> None:
        """Serve on TCP until a ``Shutdown`` request arrives."""
        server = await self.start_tcp(host, port)
        await self._serve(server)

    async def _serve(self, server: asyncio.AbstractServer) -> None:
        async with server:
            await self._closed.wait()


class ControlPlaneClient:
    """Line-oriented client for a running control plane."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        self._reader = reader
        self._writer = writer

    @classmethod
    async def connect_unix(cls, path: str | Path) -> "ControlPlaneClient":
        reader, writer = await asyncio.open_unix_connection(str(path))
        return cls(reader, writer)

    @classmethod
    async def connect_tcp(
        cls, host: str, port: int
    ) -> "ControlPlaneClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def request(self, message: object) -> object:
        """Send one typed request; await and decode its response."""
        self._writer.write(encode_line(message).encode("utf-8"))
        await self._writer.drain()
        line = await self._reader.readline()
        if not line:
            raise ReproError(
                "control plane closed the connection mid-request"
            )
        return decode_line(line.decode("utf-8"))

    async def close(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover
            pass


def run_scripted_session(
    messages: Sequence[object],
    socket_path: str | Path,
) -> list[object]:
    """Replay a message script against a real control plane.

    Stands up a :class:`ControlPlaneServer` on ``socket_path`` (UNIX
    socket), connects a client, sends every message in order, and
    returns the typed responses (one per message, in order).  When the
    script does not end with :class:`~repro.api.types.Shutdown`, one is
    sent implicitly so the server always winds down; its ``Ack`` is not
    included in the returned list.

    This is the CI smoke path and the CLI's ``serve --session`` mode:
    everything — framing, codecs, dispatch, session state — runs exactly
    as it would for a long-lived deployment, just against a scripted
    client.
    """

    async def _run() -> list[object]:
        server = ControlPlaneServer()
        bound = await server.start_unix(socket_path)
        async with bound:
            client = await ControlPlaneClient.connect_unix(socket_path)
            responses: list[object] = []
            try:
                for message in messages:
                    responses.append(await client.request(message))
                if not (
                    messages and isinstance(messages[-1], Shutdown)
                ):
                    await client.request(Shutdown())
            finally:
                await client.close()
            await server._closed.wait()
        return responses

    return asyncio.run(_run())
