"""Auto-remediation: the detector → proposer → verifier loop.

The live service already reacts to SLO pressure with corrective
re-plans, but a re-plan cannot help when the *load itself* is the
problem: a catalog whose Theorem-3.1 requirement sits above the channel
budget will keep missing deadlines no matter how often it is re-planned.
The control plane closes that loop here:

* **Detector** — watches each service's counters for two breach shapes:
  a *sustained* deadline-miss streak (consecutive missed listeners, not
  just a rolling-rate blip) and *re-plan churn* (full re-plans piling up
  inside a sliding window, the signature of a catalog thrashing at the
  edge of the budget).
* **Proposer** — puts forward up to four candidate actions, in the
  fixed :data:`~repro.api.types.REMEDIATION_ACTIONS` order: relax the
  worst-missing deadline class one rung up the ladder (``retune``), drop
  pages of that class (``shed``), grow the channel budget
  (``add_channel``, bounded), or rebuild the program from scratch
  (``full_replan``).
* **Verifier** — judges every candidate against the paper's own delay
  model *and* a reallocation budget.  A candidate passes only when the
  Eq. 2/3/5/7 predicted delay of its re-planned catalog is zero (the SLO
  is structurally restored) or strictly below the current model delay,
  **and** its estimated page movement stays within the policy's
  ``max_pages_moved`` (the Dynamic-Windows-with-Reallocation idea:
  recovery actions are only acceptable when they move few pages, so
  fixes stay cheap under churn).

The cheapest passing candidate (fewest pages moved, proposal order as
the tie-break) is applied through the live service's own machinery, and
the whole decision — trigger evidence, every candidate with its verdict,
the applied action — is recorded as a
:class:`~repro.api.types.RemediationRecord` bound for the manifest's v6
``control`` block.

Everything here is a pure function of the event stream: detector state
advances only on counter deltas, proposals are derived from the catalog
and SLO tables, and no wall clock is consulted — the determinism
contract of the control plane's byte-identical replay.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Mapping, Sequence

from repro.api.types import (
    RemediationCandidate,
    RemediationPolicy,
    RemediationRecord,
)
from repro.core.frequencies import pamad_frequencies_for
from repro.core.intmath import ceil_div
from repro.live.catalog import LiveCatalog

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.live.service import LiveBroadcastService

__all__ = ["RemediationEngine", "plan_stats"]

#: Strict-improvement tolerance for the model-delay comparison.
_DELAY_EPS = 1e-9


def _grouped(catalog: Mapping[int, int]) -> tuple[list[int], list[int]]:
    """Group a ``page_id -> expected_time`` map into (sizes, times)."""
    by_time: dict[int, int] = {}
    for expected in catalog.values():
        by_time[expected] = by_time.get(expected, 0) + 1
    times = sorted(by_time)
    return [by_time[t] for t in times], times


def plan_stats(
    catalog: Mapping[int, int], budget: int
) -> tuple[int, float, int]:
    """Judge a candidate catalog against a channel budget.

    Returns ``(required_channels, predicted_delay, cycle_length)``:
    the exact Theorem-3.1 requirement, the Eq. 2/3/5/7 model delay of
    the plan the budget affords (0.0 when the budget covers the
    requirement — a valid program exists), and that plan's major-cycle
    length.  Works on raw vectors; no :class:`ProblemInstance` is built,
    so probing candidates stays cheap.
    """
    required = LiveCatalog(catalog).required_channels()
    sizes, times = _grouped(catalog)
    if required <= budget:
        t_h = times[-1]
        frequencies = [ceil_div(t_h, t) for t in times]
        slots = sum(s * p for s, p in zip(frequencies, sizes))
        return required, 0.0, ceil_div(slots, budget)
    assignment = pamad_frequencies_for(sizes, times, budget)
    return (
        required,
        assignment.predicted_delay,
        assignment.cycle_length(sizes),
    )


class RemediationEngine:
    """Per-service detector → proposer → verifier loop.

    Args:
        name: The service the loop watches (stamped into records).
        live: The hosted :class:`~repro.live.service.
            LiveBroadcastService`; the engine reads its counters and
            applies passing actions through its repair machinery.
        policy: The :class:`~repro.api.types.RemediationPolicy`.
    """

    def __init__(
        self,
        name: str,
        live: "LiveBroadcastService",
        policy: RemediationPolicy,
    ) -> None:
        self.name = name
        self.live = live
        self.policy = policy
        self.records: list[RemediationRecord] = []
        self.extra_channels = 0
        self._last_attempt = -math.inf
        self._miss_streak = 0
        self._seen_listeners = 0
        self._seen_misses = 0
        self._seen_replans = 0
        self._replan_times: list[float] = []

    # ------------------------------------------------------------------
    # Detector
    # ------------------------------------------------------------------

    def _sync(self, now: float) -> None:
        """Fold the service's counter deltas into detector state.

        The control plane feeds events one at a time, so the listener
        delta per step is 0 or 1 and the consecutive-miss streak is
        exact: a served listener resets it, a missed one extends it.
        """
        listeners = self.live.counters["listeners"]
        misses = self.live.counters["misses"]
        delta_l = listeners - self._seen_listeners
        delta_m = misses - self._seen_misses
        if delta_l > 0:
            if delta_m == delta_l:
                self._miss_streak += delta_l
            else:
                self._miss_streak = delta_m
        self._seen_listeners = listeners
        self._seen_misses = misses
        replans = self.live.counters["full_replans"]
        if replans > self._seen_replans:
            self._replan_times.extend([now] * (replans - self._seen_replans))
            self._seen_replans = replans
        cutoff = now - self.policy.churn_window
        self._replan_times = [t for t in self._replan_times if t >= cutoff]

    def step(self) -> RemediationRecord | None:
        """Advance the detector; remediate when a breach is sustained.

        Called after every event the control plane feeds the service.
        Returns the record when a detector fired (whether or not any
        candidate passed verification), else ``None``.
        """
        now = self.live.now
        self._sync(now)
        if not self.policy.enabled:
            return None
        if now - self._last_attempt < self.policy.cooldown:
            return None
        trigger: str | None = None
        evidence: dict[str, object] = {}
        if self._miss_streak >= self.policy.miss_streak:
            trigger = "sustained-miss"
            evidence = {
                "miss_streak": self._miss_streak,
                "threshold": self.policy.miss_streak,
            }
        elif len(self._replan_times) >= self.policy.churn_threshold:
            trigger = "replan-churn"
            evidence = {
                "replans_in_window": len(self._replan_times),
                "window": self.policy.churn_window,
                "threshold": self.policy.churn_threshold,
            }
        if trigger is None:
            return None
        record = self._remediate(trigger, evidence, now)
        self.records.append(record)
        self._last_attempt = now
        self._miss_streak = 0
        self._replan_times.clear()
        # The applied action's own re-plan must not read as churn.
        self._seen_replans = self.live.counters["full_replans"]
        return record

    # ------------------------------------------------------------------
    # Proposer
    # ------------------------------------------------------------------

    def _worst_class(self, catalog: Mapping[int, int]) -> int:
        """The catalog deadline class most in breach of its SLO.

        Ranked by per-class miss rate (then miss count, then tightness)
        over classes that still have pages in the catalog; with no
        listener evidence yet, the tightest class carries the most load
        per page and is the default suspect.
        """
        live_times = set(catalog.values())
        ranked = sorted(
            (
                (stats["miss_rate"], stats["misses"], -expected, expected)
                for expected, stats in self.live.slo.per_class().items()
                if expected in live_times
            ),
            reverse=True,
        )
        if ranked:
            return ranked[0][3]
        return min(live_times)

    def _judge(
        self,
        required: int,
        budget: int,
        delay: float,
        current_delay: float,
        moved: int,
    ) -> tuple[bool, str]:
        """The verifier: delay model first, reallocation budget second."""
        if moved > self.policy.max_pages_moved:
            return False, "exceeds-move-budget"
        if required <= budget and delay == 0.0:
            return True, "restores-slo"
        if delay < current_delay - _DELAY_EPS:
            return True, "improves-delay"
        return False, "no-improvement"

    def _remediate(
        self, trigger: str, evidence: dict, now: float
    ) -> RemediationRecord:
        live = self.live
        catalog = live.catalog.pages()
        budget = live.budget
        total = len(catalog)
        current_required, current_delay, current_cycle = plan_stats(
            catalog, budget
        )
        worst = self._worst_class(catalog)
        ladder = sorted(set(catalog.values()))
        candidates: list[RemediationCandidate] = []

        retune_to: int | None = None
        retune_pages: list[int] = []
        if self.policy.allow_retune:
            rung = ladder.index(worst)
            # One rung up the divisibility ladder; the top class doubles
            # (2*t_h keeps every divisibility relation intact).
            retune_to = (
                ladder[rung + 1] if rung + 1 < len(ladder) else worst * 2
            )
            retune_pages = sorted(
                p for p, t in catalog.items() if t == worst
            )
            cand = dict(catalog)
            for page in retune_pages:
                cand[page] = retune_to
            required, delay, cycle = plan_stats(cand, budget)
            moved = total if cycle != current_cycle else len(retune_pages)
            passed, reason = self._judge(
                required, budget, delay, current_delay, moved
            )
            candidates.append(
                RemediationCandidate(
                    action="retune",
                    detail={
                        "expected_time": worst,
                        "new_expected_time": retune_to,
                        "pages": len(retune_pages),
                    },
                    required_channels=required,
                    budget=budget,
                    predicted_delay=delay,
                    pages_moved=moved,
                    move_budget=self.policy.max_pages_moved,
                    passed=passed,
                    reason=reason,
                )
            )

        shed_pages: list[int] = []
        if self.policy.allow_shed:
            # Shed highest page ids of the worst class until the load
            # fits the budget (never the whole catalog); when the load
            # already fits, shed one page to relieve SLO pressure.
            cand = dict(catalog)
            for page in sorted(
                (p for p, t in catalog.items() if t == worst),
                reverse=True,
            ):
                if len(cand) == 1:
                    break
                del cand[page]
                shed_pages.append(page)
                if LiveCatalog(cand).required_channels() <= budget:
                    break
            if shed_pages:
                required, delay, _ = plan_stats(cand, budget)
                # Removals only clear the shed pages' own cells.
                moved = len(shed_pages)
                passed, reason = self._judge(
                    required, budget, delay, current_delay, moved
                )
            else:
                required, delay = current_required, current_delay
                moved, passed, reason = 0, False, "nothing-to-shed"
            candidates.append(
                RemediationCandidate(
                    action="shed",
                    detail={
                        "expected_time": worst,
                        "pages": list(shed_pages),
                    },
                    required_channels=required,
                    budget=budget,
                    predicted_delay=delay,
                    pages_moved=moved,
                    move_budget=self.policy.max_pages_moved,
                    passed=passed,
                    reason=reason,
                )
            )

        if self.policy.allow_add_channel:
            # Growing the budget re-plans everything and lets the
            # admission queue drain, so judge the catalog plus its
            # queued inserts at the grown budget.
            cand = dict(catalog)
            for event in live.admission.queued:
                if event.page_id not in cand:
                    cand[event.page_id] = event.expected_time
            required, delay, _ = plan_stats(cand, budget + 1)
            if self.extra_channels >= self.policy.max_extra_channels:
                passed, reason = False, "channel-cap"
            else:
                passed, reason = self._judge(
                    required, budget + 1, delay, current_delay, total
                )
            candidates.append(
                RemediationCandidate(
                    action="add_channel",
                    detail={
                        "channels": budget + 1,
                        "queued_inserts": len(live.admission.queued),
                    },
                    required_channels=required,
                    budget=budget + 1,
                    predicted_delay=delay,
                    pages_moved=total,
                    move_budget=self.policy.max_pages_moved,
                    passed=passed,
                    reason=reason,
                )
            )

        required, delay, _ = plan_stats(catalog, budget)
        passed, reason = self._judge(
            required, budget, delay, current_delay, total
        )
        candidates.append(
            RemediationCandidate(
                action="full_replan",
                detail={},
                required_channels=required,
                budget=budget,
                predicted_delay=delay,
                pages_moved=total,
                move_budget=self.policy.max_pages_moved,
                passed=passed,
                reason=reason,
            )
        )

        applied = self._pick(candidates)
        applied_detail: Mapping[str, object] = {}
        if applied is not None:
            applied_detail = applied.detail
            self._apply(applied, retune_pages, retune_to, shed_pages)
        live._record(
            "remediation",
            trigger=trigger,
            candidates=len(candidates),
            applied=None if applied is None else applied.action,
        )
        return RemediationRecord(
            service=self.name,
            time=now,
            trigger=trigger,
            evidence=evidence,
            candidates=tuple(candidates),
            applied=None if applied is None else applied.action,
            applied_detail=applied_detail,
        )

    @staticmethod
    def _pick(
        candidates: Sequence[RemediationCandidate],
    ) -> RemediationCandidate | None:
        """Cheapest passing candidate; proposal order breaks ties."""
        passing = [
            (candidate.pages_moved, order, candidate)
            for order, candidate in enumerate(candidates)
            if candidate.passed
        ]
        if not passing:
            return None
        return min(passing)[2]

    # ------------------------------------------------------------------
    # Apply
    # ------------------------------------------------------------------

    def _apply(
        self,
        candidate: RemediationCandidate,
        retune_pages: list[int],
        retune_to: int | None,
        shed_pages: list[int],
    ) -> None:
        """Apply a verified action through the service's own machinery."""
        live = self.live
        if candidate.action == "retune":
            assert retune_to is not None
            for page in retune_pages:
                live.catalog.retune(page, retune_to)
            live._full_replan("remediate-retune")
        elif candidate.action == "shed":
            for page in shed_pages:
                live.catalog.remove(page)
                live._apply_remove(page)
        elif candidate.action == "add_channel":
            live.budget += 1
            live.admission.budget += 1
            self.extra_channels += 1
            live._full_replan("remediate-add-channel")
        else:  # full_replan
            live._full_replan("remediate-full-replan")
        # A removal or relaxation may have opened room for queued
        # inserts; the grown budget certainly did.
        live._drain_queue()
        # Judge the remediated program on its own observations.
        live.slo.reset_window()

    # ------------------------------------------------------------------
    # Manifest block
    # ------------------------------------------------------------------

    def as_dict(self) -> dict:
        """The remediation half of the manifest's ``control`` block."""
        triggers: dict[str, int] = {}
        applied = 0
        for record in self.records:
            triggers[record.trigger] = triggers.get(record.trigger, 0) + 1
            if record.applied is not None:
                applied += 1
        return {
            "policy": self.policy.to_dict(),
            "records": [record.to_dict() for record in self.records],
            "applied": applied,
            "extra_channels": self.extra_channels,
            "triggers": dict(sorted(triggers.items())),
        }
