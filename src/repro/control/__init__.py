"""repro.control — the broadcast control plane.

The long-running half of the serving system: an asyncio server that
hosts multiple named :class:`~repro.live.service.LiveBroadcastService`
instances, speaks the typed :mod:`repro.api` protocol over
newline-delimited JSON (UNIX or TCP socket, stdlib only), answers
structural SLO queries from Theorem-3.1 load accounting, and closes the
loop on sustained SLO breaches with the detector → proposer → verifier
remediation engine.  Durable: a write-ahead journal makes every
accepted mutation crash-survivable, and recovery replays the journaled
prefix into byte-identical session state.

Entry points:

* :class:`ControlPlane` — synchronous typed dispatch (testable without
  sockets), optionally journal-backed, with server-side request-id
  dedup; :meth:`ControlPlane.recover` — rebuild from a journal;
  :class:`ControlPlaneServer` / :class:`ControlPlaneClient` — the
  hardened asyncio transport (read timeouts, frame-size limits,
  shutdown drain); :func:`run_scripted_session` — replay a message
  script end-to-end over a real socket.
* :class:`Journal` — the append-only NDJSON write-ahead log (per-line
  checksums, torn-tail truncation, fsync policies, snapshot
  compaction).
* :class:`RetryingControlPlaneClient` / :class:`RetryPolicy` — seeded
  backoff retries with idempotent request ids (exactly-once effect
  under at-least-once delivery).
* :class:`ChaosPolicy` / :func:`run_chaos_session` — seeded fault
  injection: dropped/partial/delayed responses, kill-restart at
  arbitrary journal prefixes.
* :class:`ServiceSession` — one hosted service (live runtime +
  remediation + manifest emission).
* :class:`RemediationEngine` — the auto-remediation loop, reusable
  against any live service.

The CLI front end is ``repro-air serve`` (``--journal`` / ``--recover``
for durability).
"""

from repro.control.chaos import (
    ChaosAction,
    ChaosOutcome,
    ChaosPolicy,
    run_chaos_session,
)
from repro.control.journal import Journal
from repro.control.plane import (
    ControlPlane,
    ControlPlaneClient,
    ControlPlaneServer,
    run_scripted_session,
)
from repro.control.remediation import RemediationEngine, plan_stats
from repro.control.retry import RetryingControlPlaneClient, RetryPolicy
from repro.control.session import ServiceSession

__all__ = [
    "ChaosAction",
    "ChaosOutcome",
    "ChaosPolicy",
    "ControlPlane",
    "ControlPlaneClient",
    "ControlPlaneServer",
    "Journal",
    "RemediationEngine",
    "RetryPolicy",
    "RetryingControlPlaneClient",
    "ServiceSession",
    "plan_stats",
    "run_chaos_session",
    "run_scripted_session",
]
