"""repro.control — the broadcast control plane.

The long-running half of the serving system: an asyncio server that
hosts multiple named :class:`~repro.live.service.LiveBroadcastService`
instances, speaks the typed :mod:`repro.api` protocol over
newline-delimited JSON (UNIX or TCP socket, stdlib only), answers
structural SLO queries from Theorem-3.1 load accounting, and closes the
loop on sustained SLO breaches with the detector → proposer → verifier
remediation engine.

Entry points:

* :class:`ControlPlane` — synchronous typed dispatch (testable without
  sockets); :class:`ControlPlaneServer` / :class:`ControlPlaneClient` —
  the asyncio transport; :func:`run_scripted_session` — replay a
  message script end-to-end over a real socket.
* :class:`ServiceSession` — one hosted service (live runtime +
  remediation + manifest emission).
* :class:`RemediationEngine` — the auto-remediation loop, reusable
  against any live service.

The CLI front end is ``repro-air serve``.
"""

from repro.control.plane import (
    ControlPlane,
    ControlPlaneClient,
    ControlPlaneServer,
    run_scripted_session,
)
from repro.control.remediation import RemediationEngine, plan_stats
from repro.control.session import ServiceSession

__all__ = [
    "ControlPlane",
    "ControlPlaneClient",
    "ControlPlaneServer",
    "RemediationEngine",
    "ServiceSession",
    "plan_stats",
    "run_scripted_session",
]
