"""Scheduler registry — the public plugin API of the engine.

Every scheduler in the system is a plain callable with the *normalized*
signature ``(instance, num_channels) -> ScheduleResult``: it consumes a
:class:`~repro.core.pages.ProblemInstance` and a channel count and
returns an object exposing at least ``program``, ``average_delay`` and
``meta``.  The registry maps public names (and aliases, e.g. the common
``"mpb"`` spelling of ``"m-pb"``) onto those callables, and is the single
source of truth for the CLI's ``--algorithm`` choices, the sweep
harness, and :class:`~repro.engine.facade.BroadcastEngine`.

Third-party schedulers plug in without touching library code::

    from repro.engine import register_scheduler

    def schedule_mine(instance, num_channels):
        ...  # return anything with program / average_delay / meta
    register_scheduler("mine", schedule_mine, aliases=("my-sched",))

Registered callables should be module-level functions when the parallel
sweep executor is used with a process pool (they must be picklable); the
executor falls back to serial execution otherwise.
"""

from __future__ import annotations

from typing import (
    Callable,
    Iterator,
    Mapping,
    Protocol,
    Sequence,
    runtime_checkable,
)

from repro.baselines.broadcast_disks import schedule_broadcast_disks
from repro.baselines.flat import schedule_flat
from repro.baselines.mpb import schedule_mpb
from repro.baselines.online import schedule_online
from repro.baselines.opt import schedule_opt
from repro.core.errors import ReproError
from repro.core.pages import ProblemInstance
from repro.core.pamad import schedule_pamad
from repro.core.program import BroadcastProgram

__all__ = [
    "ScheduleResult",
    "Scheduler",
    "SchedulerRegistry",
    "default_registry",
    "register_scheduler",
    "get_scheduler",
    "available_schedulers",
    "schedule_susc_entry",
]


@runtime_checkable
class ScheduleResult(Protocol):
    """What every scheduler returns: a program plus its headline metrics.

    All concrete schedule types (:class:`~repro.core.susc.SuscSchedule`,
    :class:`~repro.core.pamad.PamadSchedule`, the baselines) satisfy this
    protocol; engine code never needs to know which scheduler produced a
    result.

    Attributes:
        program: The generated broadcast program.
        average_delay: Analytic AvgD of the generated program.
        meta: Scheduler-specific diagnostics (frequencies, window misses,
            orbit flags, ...) as a plain mapping — JSON-friendly, suitable
            for run manifests.
    """

    program: BroadcastProgram
    average_delay: float

    @property
    def meta(self) -> Mapping[str, object]: ...


Scheduler = Callable[[ProblemInstance, int], ScheduleResult]


def schedule_susc_entry(
    instance: ProblemInstance, num_channels: int | None = None
) -> ScheduleResult:
    """SUSC under the normalized registry signature.

    ``num_channels=None`` uses the Theorem-3.1 minimum (SUSC's natural
    operating point); fewer channels raise
    :class:`~repro.core.errors.InsufficientChannelsError` as usual.
    """
    from repro.core.susc import schedule_susc

    return schedule_susc(instance, num_channels=num_channels)


class SchedulerRegistry:
    """A mutable name → scheduler mapping with an alias table.

    Lookups are case-insensitive and alias-aware; listings are always
    sorted so CLI choices and error messages are stable across dict
    orderings and registration order.
    """

    def __init__(self) -> None:
        self._entries: dict[str, Scheduler] = {}
        self._aliases: dict[str, str] = {}

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------

    def register(
        self,
        name: str,
        fn: Scheduler,
        *,
        aliases: Sequence[str] = (),
        replace: bool = False,
    ) -> Scheduler:
        """Register ``fn`` under ``name`` (plus optional aliases).

        Args:
            name: Public registry name (stored lower-case).
            fn: Scheduler with the normalized ``(instance, channels)``
                signature.
            aliases: Alternative spellings resolving to ``name``.
            replace: Allow overwriting an existing name/alias; without it
                collisions raise :class:`~repro.core.errors.ReproError`.

        Returns:
            ``fn`` unchanged, so ``register`` works as a decorator via
            ``functools.partial``.
        """
        key = self._normalize(name)
        if not key:
            raise ReproError("scheduler name must be non-empty")
        if not callable(fn):
            raise ReproError(f"scheduler {name!r} is not callable: {fn!r}")
        if not replace and (key in self._entries or key in self._aliases):
            raise ReproError(
                f"scheduler name {name!r} is already registered; pass "
                "replace=True to overwrite"
            )
        self._aliases.pop(key, None)
        self._entries[key] = fn
        for alias in aliases:
            self.alias(alias, key, replace=replace)
        return fn

    def alias(self, alias: str, target: str, *, replace: bool = False) -> None:
        """Map ``alias`` onto the registered name ``target``."""
        alias_key = self._normalize(alias)
        target_key = self._normalize(target)
        if target_key not in self._entries:
            raise ReproError(
                f"cannot alias {alias!r} to unknown scheduler {target!r}"
            )
        if not replace and (
            alias_key in self._entries or alias_key in self._aliases
        ):
            raise ReproError(
                f"scheduler name {alias!r} is already registered; pass "
                "replace=True to overwrite"
            )
        self._aliases[alias_key] = target_key

    def unregister(self, name: str) -> None:
        """Remove a scheduler and every alias pointing at it."""
        key = self.resolve(name)
        del self._entries[key]
        self._aliases = {
            alias: target
            for alias, target in self._aliases.items()
            if target != key
        }

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    @staticmethod
    def _normalize(name: str) -> str:
        return name.strip().lower()

    def resolve(self, name: str) -> str:
        """Return the canonical registry name for ``name`` (alias-aware)."""
        key = self._normalize(name)
        key = self._aliases.get(key, key)
        if key not in self._entries:
            raise ReproError(
                f"unknown scheduler {name!r}; choose from "
                f"{', '.join(self.names())}"
            )
        return key

    def get(self, name: str) -> Scheduler:
        """Look up a scheduler by name or alias (case-insensitive)."""
        return self._entries[self.resolve(name)]

    def names(self) -> tuple[str, ...]:
        """All canonical scheduler names, sorted."""
        return tuple(sorted(self._entries))

    def aliases(self) -> Mapping[str, str]:
        """The alias → canonical-name table (sorted copy)."""
        return dict(sorted(self._aliases.items()))

    def items(self) -> list[tuple[str, Scheduler]]:
        """(name, scheduler) pairs in sorted name order."""
        return [(name, self._entries[name]) for name in self.names()]

    def __contains__(self, name: object) -> bool:
        if not isinstance(name, str):
            return False
        key = self._normalize(name)
        return key in self._entries or key in self._aliases

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        return len(self._entries)

    def __getitem__(self, name: str) -> Scheduler:
        return self.get(name)


def _builtin_registry() -> SchedulerRegistry:
    registry = SchedulerRegistry()
    registry.register("pamad", schedule_pamad)
    registry.register("m-pb", schedule_mpb, aliases=("mpb",))
    registry.register("opt", schedule_opt)
    registry.register("flat", schedule_flat)
    registry.register("disks", schedule_broadcast_disks)
    registry.register("online", schedule_online)
    registry.register("susc", schedule_susc_entry)
    return registry


_DEFAULT_REGISTRY = _builtin_registry()


def default_registry() -> SchedulerRegistry:
    """The process-wide registry used by the default engine and the CLI."""
    return _DEFAULT_REGISTRY


def register_scheduler(
    name: str,
    fn: Scheduler,
    *,
    aliases: Sequence[str] = (),
    replace: bool = False,
    registry: SchedulerRegistry | None = None,
) -> Scheduler:
    """Register a scheduler in the (default) registry — the plugin API.

    This replaces the old pattern of mutating
    ``repro.analysis.sweep.SCHEDULERS`` directly; see the module
    docstring for an example.
    """
    return (registry or _DEFAULT_REGISTRY).register(
        name, fn, aliases=aliases, replace=replace
    )


def get_scheduler(
    name: str, registry: SchedulerRegistry | None = None
) -> Scheduler:
    """Look up a scheduler by registry name or alias (case-insensitive).

    Raises:
        ReproError: For unknown names, listing the registered names in
            sorted order (stable across dict orderings).
    """
    return (registry or _DEFAULT_REGISTRY).get(name)


def available_schedulers(
    registry: SchedulerRegistry | None = None,
) -> tuple[str, ...]:
    """Sorted canonical names of every registered scheduler."""
    return (registry or _DEFAULT_REGISTRY).names()
