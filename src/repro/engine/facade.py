"""BroadcastEngine — the single entry point for plan/schedule/evaluate/sweep.

Every workflow in the repo (CLI subcommands, the experiment registry,
the sweep harness, benchmarks) goes through this facade.  It composes
the three engine services:

* the **scheduler registry** (:mod:`repro.engine.registry`) — public
  plugin API, alias-aware name resolution;
* the **program cache** (:mod:`repro.engine.cache`) — memoised
  scheduling keyed by instance fingerprints, with hit/miss accounting;
* the **observability layer** (:mod:`repro.engine.telemetry`) —
  counters, stage timers, and a structured JSON run manifest emitted by
  every call.

Sweeps additionally fan their (scheduler × channel-count) grid across a
:mod:`concurrent.futures` pool (:mod:`repro.engine.executor`) with
deterministic result ordering and automatic serial fallback.

Typical use::

    from repro.engine import BroadcastEngine

    engine = BroadcastEngine(workers=4)
    schedule = engine.schedule(instance, "pamad", channels=13)
    result = engine.sweep(instance, algorithms=("pamad", "m-pb", "opt"))
    print(result.manifest.to_json())
"""

from __future__ import annotations

import threading
import time
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping, Sequence

from repro.core.backend import active_backend
from repro.core.bounds import ChannelPlan, minimum_channels, plan_channels
from repro.core.errors import ReproError
from repro.core.pages import ProblemInstance
from repro.engine.cache import (
    CachedSchedule,
    CacheStats,
    ProgramCache,
    program_key,
)
from repro.engine.executor import (
    EXECUTOR_MODES,
    CellFailure,
    CellSpec,
    ExecutionPolicy,
    SweepPoint,
    default_channel_points,
    run_cells,
)
from repro.engine.registry import (
    ScheduleResult,
    SchedulerRegistry,
    default_registry,
)
from repro.engine.telemetry import (
    RunManifest,
    Telemetry,
    describe_instance,
)
from repro.sim.clients import MeasurementResult, measure_program

__all__ = [
    "BroadcastEngine",
    "EngineEvaluation",
    "FederationResult",
    "LiveServiceResult",
    "ResilienceResult",
    "SweepResult",
    "default_engine",
]


# Renamed keyword arguments (the PR-6 keyword unification: every
# engine workflow takes ``trace=``, ``policy=`` and ``manifest_path=``).
# Each legacy alias warns once per process, not once per call, so a
# tight loop over an old call site stays readable.
_WARNED_ALIASES: set[str] = set()
_ALIAS_LOCK = threading.Lock()


def _warn_alias(method: str, old: str, new: str) -> None:
    key = f"{method}:{old}"
    with _ALIAS_LOCK:
        if key in _WARNED_ALIASES:
            return
        _WARNED_ALIASES.add(key)
    warnings.warn(
        f"BroadcastEngine.{method}({old}=...) is deprecated; "
        f"pass {new}= instead",
        DeprecationWarning,
        stacklevel=3,
    )


def _write_manifest_path(
    manifest: RunManifest, manifest_path: str | Path | None
) -> None:
    """Write ``manifest`` as JSON when a ``manifest_path=`` was given."""
    if manifest_path is None:
        return
    path = Path(manifest_path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(manifest.to_json() + "\n", encoding="utf-8")


def _serial_executor_block() -> dict:
    """The executor manifest block for operations that never pool."""
    return {
        "mode": "serial",
        "workers": 1,
        "fallback": False,
        "retries": 0,
        "cell_failures": 0,
        "breaker_trips": 0,
        "timeouts": 0,
        "chunk_size": 1,
        "measure_backend": "scalar",
        "short_circuited": 0,
        "transport": "inline",
        "harvested": 0,
        "compute_backend": active_backend(),
    }


@dataclass(frozen=True)
class EngineEvaluation:
    """Outcome of :meth:`BroadcastEngine.evaluate` — schedule + replay."""

    algorithm: str
    channels: int
    schedule: ScheduleResult
    measurement: MeasurementResult
    manifest: RunManifest


@dataclass(frozen=True)
class ResilienceResult:
    """Outcome of :meth:`BroadcastEngine.resilience`.

    Attributes:
        plan: The fault plan that was replayed.
        outcomes: One :class:`~repro.resilience.policies.ReplayOutcome`
            per policy, in the order the policies were given.
        manifest: The run manifest (operation ``"resilience"``).
    """

    plan: object
    outcomes: tuple
    manifest: RunManifest

    def __iter__(self):
        return iter(self.outcomes)

    def __len__(self) -> int:
        return len(self.outcomes)


@dataclass(frozen=True)
class LiveServiceResult:
    """Outcome of :meth:`BroadcastEngine.live`.

    Attributes:
        report: The runtime's :class:`~repro.live.service.LiveReport`
            (program, catalog, counters, decisions, event log).
        baseline: The Longest-Wait-First pull replay of the same trace
            (a :class:`~repro.live.baseline.PullOutcome`), or ``None``
            when the baseline was skipped.
        manifest: The run manifest (operation ``"live"``, schema v6 with
            the ``service`` block filled in).  Emitted deterministically:
            ``created_at`` is pinned to ``0.0`` and wall-clock timings
            are dropped, so identical runs produce byte-identical
            manifests.
    """

    report: object
    baseline: object | None
    manifest: RunManifest


@dataclass(frozen=True)
class FederationResult:
    """Outcome of :meth:`BroadcastEngine.federate`.

    Attributes:
        report: The federation's
            :class:`~repro.federation.service.FederationReport` (ring
            placement, global admission trail, drift rebalances,
            per-shard summaries).
        manifest: The run manifest (operation ``"federate"``, schema v7
            with the ``federation`` block filled in).  Emitted
            deterministically — ``created_at`` pinned, timings dropped —
            so fixed-seed federated replays are byte-identical.
    """

    report: object
    manifest: RunManifest


@dataclass(frozen=True)
class SweepResult:
    """Outcome of :meth:`BroadcastEngine.sweep`.

    Iterating or indexing a ``SweepResult`` yields its points, so it is
    a drop-in for the old bare ``list[SweepPoint]`` in most call sites.
    Cells whose scheduler crashed (after retries / breaker handling in
    the executor) are excluded from ``points`` and reported as
    structured :class:`~repro.engine.executor.CellFailure` entries in
    ``failures``.
    """

    points: tuple[SweepPoint, ...]
    manifest: RunManifest
    failures: tuple[CellFailure, ...] = ()

    def __iter__(self):
        return iter(self.points)

    def __len__(self) -> int:
        return len(self.points)

    def __getitem__(self, index):
        return self.points[index]


@dataclass
class BroadcastEngine:
    """The cached, parallel, observable scheduling facade.

    Attributes:
        registry: Scheduler name → callable registry (defaults to the
            process-wide registry, so plugins registered via
            :func:`repro.engine.register_scheduler` are visible).
        cache: Program cache shared by every call on this engine.
        telemetry: Counter/timer accumulator snapshotted into manifests.
        workers: Default pool width for sweeps (1 = serial).
        executor: Default pool flavour: ``"process"``, ``"thread"`` or
            ``"serial"``.
        execution: Hardening knobs applied to every sweep — per-cell
            timeout (pool modes), bounded retries with exponential
            backoff, and the per-algorithm circuit breaker (see
            :class:`~repro.engine.executor.ExecutionPolicy`).
        manifest_dir: When set, every manifest is additionally written to
            ``<manifest_dir>/run-<id>.json``.
        keep_manifests: Upper bound on the in-memory manifest history.
    """

    registry: SchedulerRegistry = field(default_factory=default_registry)
    cache: ProgramCache = field(default_factory=ProgramCache)
    telemetry: Telemetry = field(default_factory=Telemetry)
    workers: int = 1
    executor: str = "process"
    execution: ExecutionPolicy = field(default_factory=ExecutionPolicy)
    manifest_dir: str | Path | None = None
    keep_manifests: int = 64

    def __post_init__(self) -> None:
        if self.executor not in EXECUTOR_MODES:
            raise ReproError(
                f"unknown executor mode {self.executor!r}; choose from "
                f"{', '.join(EXECUTOR_MODES)}"
            )
        self._manifests: list[RunManifest] = []
        self._run_counter = 0
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Manifest plumbing
    # ------------------------------------------------------------------

    @property
    def manifests(self) -> tuple[RunManifest, ...]:
        """Manifests of every call on this engine, oldest first."""
        return tuple(self._manifests)

    @property
    def last_manifest(self) -> RunManifest | None:
        return self._manifests[-1] if self._manifests else None

    def cache_stats(self) -> CacheStats:
        """Lifetime cache accounting for this engine."""
        return self.cache.stats()

    def _next_run_id(self) -> int:
        with self._lock:
            self._run_counter += 1
            return self._run_counter

    def _emit_manifest(
        self,
        *,
        operation: str,
        instance: ProblemInstance,
        parameters: Mapping[str, object],
        schedulers: Sequence[str],
        channels: Sequence[int],
        executor: Mapping[str, object],
        cache_before: CacheStats,
        telemetry_before: Mapping[str, dict],
        results: Mapping[str, object],
        service: Mapping[str, object] | None = None,
        control: Mapping[str, object] | None = None,
        federation: Mapping[str, object] | None = None,
        deterministic: bool = False,
    ) -> RunManifest:
        cache_total = self.cache.stats()
        run_share = Telemetry.delta(self.telemetry.snapshot(), telemetry_before)
        manifest = RunManifest(
            run_id=self._next_run_id(),
            operation=operation,
            # Deterministic operations pin the timestamp and drop the
            # wall-clock timers so identical inputs serialise to
            # byte-identical manifests (the live replay contract).
            created_at=0.0 if deterministic else time.time(),
            instance=describe_instance(instance),
            parameters=dict(parameters),
            schedulers=tuple(schedulers),
            channels=tuple(channels),
            executor=dict(executor),
            cache_run=cache_total.delta(cache_before),
            cache_total=cache_total,
            timings={} if deterministic else run_share["timers"],
            counters=run_share["counters"],
            results=dict(results),
            service=dict(service or {}),
            control=dict(control or {}),
            federation=dict(federation or {}),
        )
        with self._lock:
            self._manifests.append(manifest)
            if len(self._manifests) > self.keep_manifests:
                del self._manifests[: -self.keep_manifests]
        if self.manifest_dir is not None:
            directory = Path(self.manifest_dir)
            directory.mkdir(parents=True, exist_ok=True)
            path = directory / f"run-{manifest.run_id:04d}.json"
            path.write_text(manifest.to_json() + "\n")
        return manifest

    # ------------------------------------------------------------------
    # Cached scheduling core
    # ------------------------------------------------------------------

    def _resolve_channels(
        self, instance: ProblemInstance, channels: int | None
    ) -> int:
        if channels is None:
            return minimum_channels(instance)
        if channels < 1:
            raise ReproError(f"channels must be >= 1, got {channels}")
        return channels

    def _schedule_cached(
        self, instance: ProblemInstance, algorithm: str, channels: int
    ) -> tuple[ScheduleResult, float, bool]:
        """Schedule through the cache.

        Returns:
            ``(schedule, elapsed_seconds, hit)`` where ``elapsed_seconds``
            is the original scheduling wall time (replayed on hits).
        """
        name = self.registry.resolve(algorithm)
        scheduler = self.registry.get(name)
        key = program_key(instance, name, channels, scheduler)
        entry = self.cache.get(key)
        if entry is not None:
            self.telemetry.incr("cache.hits")
            return entry.schedule, entry.elapsed_seconds, True
        self.telemetry.incr("cache.misses")
        started = time.perf_counter()
        with self.telemetry.timer("schedule"):
            schedule = scheduler(instance, channels)
        elapsed = time.perf_counter() - started
        self.cache.put(key, CachedSchedule(schedule, elapsed))
        return schedule, elapsed, False

    # ------------------------------------------------------------------
    # Public workflow
    # ------------------------------------------------------------------

    def plan(
        self, instance: ProblemInstance, available: int = 1
    ) -> ChannelPlan:
        """Theorem-3.1 capacity analysis (manifested, never cached)."""
        cache_before = self.cache.stats()
        telemetry_before = self.telemetry.snapshot()
        with self.telemetry.timer("plan"):
            plan = plan_channels(instance, available=available)
        self._emit_manifest(
            operation="plan",
            instance=instance,
            parameters={"available": available},
            schedulers=(),
            channels=(available,),
            executor=_serial_executor_block(),
            cache_before=cache_before,
            telemetry_before=telemetry_before,
            results={
                "required": plan.required,
                "sufficient": plan.sufficient,
                "load": plan.load,
                "utilisation": plan.utilisation,
            },
        )
        return plan

    def schedule(
        self,
        instance: ProblemInstance,
        algorithm: str,
        channels: int | None = None,
    ) -> ScheduleResult:
        """Run (or fetch from cache) one scheduler on one channel count.

        Args:
            instance: The workload.
            algorithm: Registry name or alias (``"susc"``, ``"pamad"``,
                ``"mpb"``, ...).
            channels: ``N_real``; defaults to the Theorem-3.1 minimum.

        Returns:
            The scheduler's native result — always a
            :class:`~repro.engine.registry.ScheduleResult`.  Cache hits
            return the identical object.
        """
        resolved = self._resolve_channels(instance, channels)
        name = self.registry.resolve(algorithm)
        cache_before = self.cache.stats()
        telemetry_before = self.telemetry.snapshot()
        schedule, elapsed, hit = self._schedule_cached(
            instance, name, resolved
        )
        self._emit_manifest(
            operation="schedule",
            instance=instance,
            parameters={"algorithm": name, "channels": resolved},
            schedulers=(name,),
            channels=(resolved,),
            executor=_serial_executor_block(),
            cache_before=cache_before,
            telemetry_before=telemetry_before,
            results={
                "cache_hit": hit,
                "elapsed_seconds": round(elapsed, 6),
                "cycle_length": schedule.program.cycle_length,
                "average_delay": schedule.average_delay,
                "meta": dict(schedule.meta),
            },
        )
        return schedule

    def evaluate(
        self,
        instance: ProblemInstance,
        algorithm: str,
        channels: int | None = None,
        num_requests: int = 3000,
        seed: int = 0,
        access_probabilities: Mapping[int, float] | None = None,
    ) -> EngineEvaluation:
        """Schedule (cached) then Monte-Carlo measure one configuration."""
        resolved = self._resolve_channels(instance, channels)
        name = self.registry.resolve(algorithm)
        cache_before = self.cache.stats()
        telemetry_before = self.telemetry.snapshot()
        schedule, _, hit = self._schedule_cached(instance, name, resolved)
        with self.telemetry.timer("measure"):
            measurement = measure_program(
                schedule.program,
                instance,
                num_requests=num_requests,
                seed=seed,
                access_probabilities=access_probabilities,
            )
        manifest = self._emit_manifest(
            operation="evaluate",
            instance=instance,
            parameters={
                "algorithm": name,
                "channels": resolved,
                "num_requests": num_requests,
                "seed": seed,
            },
            schedulers=(name,),
            channels=(resolved,),
            executor=_serial_executor_block(),
            cache_before=cache_before,
            telemetry_before=telemetry_before,
            results={
                "cache_hit": hit,
                "analytic_delay": schedule.average_delay,
                "simulated_delay": measurement.average_delay,
                "miss_ratio": measurement.miss_ratio,
            },
        )
        return EngineEvaluation(
            algorithm=name,
            channels=resolved,
            schedule=schedule,
            measurement=measurement,
            manifest=manifest,
        )

    def sweep(
        self,
        instance: ProblemInstance,
        algorithms: Sequence[str] = ("pamad", "m-pb", "opt"),
        channel_points: Sequence[int] | None = None,
        num_requests: int = 3000,
        seed: int = 0,
        workers: int | None = None,
        executor: str | None = None,
        policy: ExecutionPolicy | None = None,
        manifest_path: str | Path | None = None,
        execution: ExecutionPolicy | None = None,
    ) -> SweepResult:
        """Measure AvgD over a (scheduler × channel-count) grid.

        The grid fans across a worker pool when ``workers > 1``; cells
        are seeded individually (``seed * 1_000_003 + channels * 101 +
        column``, the historical formula), so parallel, serial and
        repeated runs all produce bit-identical points.

        Args:
            instance: The workload (e.g. a Figure-3 paper instance).
            algorithms: Registry names/aliases to compare.
            channel_points: Channel counts; defaults to
                :func:`default_channel_points` up to the Theorem-3.1
                minimum.
            num_requests: Monte-Carlo stream length per cell.
            seed: Base RNG seed.
            workers: Pool width for this call (default: the engine's).
            executor: Pool flavour for this call (default: the engine's).
            policy: Hardening policy for this call (default: the
                engine's ``execution`` attribute).
            manifest_path: When set, also write this call's manifest
                JSON to the path.
            execution: Deprecated alias for ``policy`` (warns once).

        Returns:
            A :class:`SweepResult` with points ordered by
            (channel count, algorithm order) and the run manifest.
        """
        if execution is not None:
            _warn_alias("sweep", "execution", "policy")
            if policy is None:
                policy = execution
        if channel_points is None:
            channel_points = default_channel_points(
                minimum_channels(instance)
            )
        pool_width = self.workers if workers is None else workers
        pool_mode = self.executor if executor is None else executor
        names = [self.registry.resolve(name) for name in algorithms]
        schedulers = [(name, self.registry.get(name)) for name in names]
        cache_before = self.cache.stats()
        telemetry_before = self.telemetry.snapshot()

        specs: list[CellSpec] = []
        keys: list[tuple] = []
        with self.telemetry.timer("sweep.prepare"):
            for channels in channel_points:
                for order, (name, scheduler) in enumerate(schedulers):
                    key = program_key(instance, name, channels, scheduler)
                    entry = self.cache.get(key)
                    self.telemetry.incr(
                        "cache.hits" if entry is not None else "cache.misses"
                    )
                    keys.append(key)
                    specs.append(
                        CellSpec(
                            algorithm=name,
                            scheduler=scheduler,
                            channels=channels,
                            instance=instance,
                            num_requests=num_requests,
                            seed=seed * 1_000_003 + channels * 101 + order,
                            cached=entry,
                        )
                    )

        with self.telemetry.timer("sweep.execute"):
            outcomes, report = run_cells(
                specs,
                workers=pool_width,
                mode=pool_mode,
                policy=self.execution if policy is None else policy,
                telemetry=self.telemetry,
            )

        points: list[SweepPoint] = []
        failures: list[CellFailure] = []
        for key, cell in zip(keys, outcomes):
            if isinstance(cell, CellFailure):
                failures.append(cell)
                continue
            points.append(cell.point)
            if cell.schedule is not None:
                self.cache.put(
                    key, CachedSchedule(cell.schedule, cell.elapsed_seconds)
                )
                self.telemetry.record_timing(
                    "schedule", cell.elapsed_seconds
                )
        self.telemetry.incr("sweep.cells", len(specs))

        executor_block = report.as_dict()
        executor_block["workers"] = max(1, pool_width)
        manifest = self._emit_manifest(
            operation="sweep",
            instance=instance,
            parameters={
                "algorithms": list(names),
                "channel_points": [int(c) for c in channel_points],
                "num_requests": num_requests,
                "seed": seed,
            },
            schedulers=names,
            channels=[int(c) for c in channel_points],
            executor=executor_block,
            cache_before=cache_before,
            telemetry_before=telemetry_before,
            results={
                "cells": len(points),
                "failed_cells": len(failures),
                "failures": [f.as_dict() for f in failures],
                "total_schedule_seconds": round(
                    sum(p.elapsed_seconds for p in points), 6
                ),
            },
        )
        _write_manifest_path(manifest, manifest_path)
        return SweepResult(
            points=tuple(points),
            manifest=manifest,
            failures=tuple(failures),
        )

    def resilience(
        self,
        instance: ProblemInstance,
        trace=None,
        policies: Sequence[object] | None = None,
        num_listeners: int = 400,
        seed: int = 0,
        manifest_path: str | Path | None = None,
        plan=None,
    ) -> ResilienceResult:
        """Replay a fault plan under recovery policies (manifested).

        Args:
            instance: The workload being broadcast.
            trace: A :class:`~repro.resilience.faultplan.FaultPlan` —
                the fault timeline to replay.
            policies: Policy objects or registry names (see
                :func:`repro.resilience.make_policy`); defaults to one of
                each built-in policy.
            num_listeners: Sampled client listens per replay.
            seed: Base RNG seed for the listener streams.
            manifest_path: When set, also write this call's manifest
                JSON to the path.
            plan: Deprecated keyword alias for ``trace`` (warns once).

        Returns:
            A :class:`ResilienceResult`; its manifest (operation
            ``"resilience"``) records the plan fingerprint/provenance and
            one result row per policy.
        """
        from repro.resilience.policies import (
            default_policies,
            make_policy,
            replay_plan,
        )

        if plan is not None:
            if trace is not None:
                raise ReproError(
                    "pass the fault timeline as trace= only; plan= is "
                    "its deprecated alias"
                )
            _warn_alias("resilience", "plan", "trace")
            trace = plan
        if trace is None:
            raise ReproError(
                "resilience() needs a fault timeline: pass trace="
            )
        plan = trace

        if policies is None:
            chosen = default_policies()
        else:
            chosen = tuple(
                make_policy(p) if isinstance(p, str) else p
                for p in policies
            )
        cache_before = self.cache.stats()
        telemetry_before = self.telemetry.snapshot()
        outcomes = []
        with self.telemetry.timer("resilience.replay"):
            for policy in chosen:
                outcomes.append(
                    replay_plan(
                        instance,
                        plan,
                        policy,
                        num_listeners=num_listeners,
                        seed=seed,
                    )
                )
        self.telemetry.incr("resilience.replays", len(outcomes))

        manifest = self._emit_manifest(
            operation="resilience",
            instance=instance,
            parameters={
                "policies": [p.name for p in chosen],
                "num_listeners": num_listeners,
                "seed": seed,
                "plan": {
                    "fingerprint": plan.fingerprint(),
                    "num_channels": plan.num_channels,
                    "horizon": plan.horizon,
                    "events": len(plan.events),
                    "meta": dict(plan.meta),
                },
            },
            schedulers=(),
            channels=(plan.num_channels,),
            executor=_serial_executor_block(),
            cache_before=cache_before,
            telemetry_before=telemetry_before,
            results={
                "policies": [outcome.as_dict() for outcome in outcomes],
            },
        )
        _write_manifest_path(manifest, manifest_path)
        return ResilienceResult(
            plan=plan, outcomes=tuple(outcomes), manifest=manifest
        )

    def control_manifest(
        self,
        *,
        instance: ProblemInstance,
        parameters: Mapping[str, object],
        channels: Sequence[int],
        results: Mapping[str, object],
        service: Mapping[str, object],
        control: Mapping[str, object],
        cache_before: CacheStats,
        telemetry_before: Mapping[str, dict],
    ) -> RunManifest:
        """Emit the deterministic manifest of a control-plane session.

        The :mod:`repro.control` plane hosts one private engine per
        service (every full re-plan flows through this engine's cache
        and telemetry) and closes the session by emitting one
        operation-``"control"`` manifest through this hook.  Like
        :meth:`live`, the manifest is deterministic — ``created_at``
        pinned to ``0.0``, wall-clock timers dropped — so replaying an
        identical scripted session produces byte-identical output.  The
        ``control`` block carries the remediation policy and the
        detector→proposer→verifier decision trail, and (schema v6)
        the session's durability trail.
        """
        return self._emit_manifest(
            operation="control",
            instance=instance,
            parameters=parameters,
            schedulers=("susc", "pamad"),
            channels=channels,
            executor=_serial_executor_block(),
            cache_before=cache_before,
            telemetry_before=telemetry_before,
            results=results,
            service=service,
            control=control,
            deterministic=True,
        )

    def live(
        self,
        initial: ProblemInstance | Mapping[int, int],
        trace,
        *,
        budget: int | None = None,
        admission: bool = True,
        queue_limit: int = 16,
        slo_window: int = 64,
        target_miss_rate: float = 0.05,
        replan_cooldown: int = 8,
        self_check: bool = False,
        baseline: bool = True,
        batch_listeners: bool = False,
        slo_exact: bool = False,
        coalesce_window: int = 0,
        manifest_path: str | Path | None = None,
    ) -> "LiveServiceResult":
        """Replay a mutation trace through the live runtime (manifested).

        Runs a :class:`~repro.live.service.LiveBroadcastService` on this
        engine — full re-plans go through the program cache and land in
        this engine's telemetry — then optionally replays the same trace
        through the Longest-Wait-First pull baseline for comparison.

        The manifest (operation ``"live"``, schema v6) is emitted
        *deterministically*: ``created_at`` is pinned, wall-clock timers
        are dropped, and every remaining field is a pure function of the
        inputs, so two replays of the same trace on fresh engines are
        byte-identical.

        Args:
            initial: Catalog on air at ``t=0`` — a
                :class:`~repro.core.pages.ProblemInstance` or a plain
                ``page_id -> expected_time`` mapping.
            trace: A :class:`~repro.live.mutations.MutationTrace`.
            budget: Channel budget; defaults to the Theorem-3.1
                requirement of the initial catalog.
            admission: Toggle SLO admission control (the EXT11 arms).
            queue_limit: Admission queue capacity.
            slo_window: Rolling miss-rate window width.
            target_miss_rate: Rolling miss-rate threshold that triggers
                a corrective re-plan.
            replan_cooldown: Minimum slots between SLO-triggered
                re-plans.
            self_check: Validate the program after every applied
                mutation (slow; meant for tests).
            baseline: Also replay the trace through the pull baseline.
            batch_listeners: Replay listener runs vectorised (see
                :class:`~repro.live.service.LiveBroadcastService`); the
                ``service.counters.batched_listeners`` manifest field
                records how many arrivals took the batched path.
            slo_exact: Bit-identical SLO wait accumulation in batched
                mode.
            coalesce_window: Mutation-coalescing window in slots
                (``0`` = event-by-event); ``service.counters.
                events_coalesced`` / ``replans_avoided`` account for it.
            manifest_path: When set, also write this call's manifest
                JSON to the path.

        Returns:
            A :class:`LiveServiceResult`.
        """
        from repro.live.baseline import replay_pull_lwf
        from repro.live.catalog import LiveCatalog
        from repro.live.service import LiveBroadcastService

        instance = (
            initial
            if isinstance(initial, ProblemInstance)
            else LiveCatalog(initial).to_instance()
        )
        cache_before = self.cache.stats()
        telemetry_before = self.telemetry.snapshot()
        service = LiveBroadcastService(
            initial,
            trace,
            budget=budget,
            engine=self,
            admission=admission,
            queue_limit=queue_limit,
            slo_window=slo_window,
            target_miss_rate=target_miss_rate,
            replan_cooldown=replan_cooldown,
            self_check=self_check,
            batch_listeners=batch_listeners,
            slo_exact=slo_exact,
            coalesce_window=coalesce_window,
        )
        with self.telemetry.timer("live.replay"):
            report = service.run()
        pull = (
            replay_pull_lwf(initial, trace, budget=report.budget)
            if baseline
            else None
        )

        service_block = report.as_dict()
        service_block["baseline"] = pull.as_dict() if pull else None
        manifest = self._emit_manifest(
            operation="live",
            instance=instance,
            parameters={
                "budget": report.budget,
                "admission": admission,
                "queue_limit": queue_limit,
                "slo_window": slo_window,
                "target_miss_rate": target_miss_rate,
                "replan_cooldown": replan_cooldown,
                "batch_listeners": batch_listeners,
                "coalesce_window": coalesce_window,
                "trace": {
                    "fingerprint": trace.fingerprint(),
                    "horizon": trace.horizon,
                    "events": len(trace.events),
                    "meta": dict(trace.meta),
                },
            },
            schedulers=("susc", "pamad"),
            channels=(report.budget,),
            executor=_serial_executor_block(),
            cache_before=cache_before,
            telemetry_before=telemetry_before,
            results={
                "miss_rate": report.slo["miss_rate"],
                "listeners": report.counters["listeners"],
                "mutations": report.counters["mutations"],
                "incremental_repairs": report.counters[
                    "incremental_repairs"
                ],
                "full_replans": report.counters["full_replans"],
                "rejected": report.admission["rejected"],
                "final_valid": report.final_valid,
                "baseline_miss_rate": (
                    pull.as_dict()["miss_rate"] if pull else None
                ),
            },
            service=service_block,
            deterministic=True,
        )
        _write_manifest_path(manifest, manifest_path)
        return LiveServiceResult(
            report=report, baseline=pull, manifest=manifest
        )

    def federate(
        self,
        initial: ProblemInstance | Mapping[int, int],
        trace,
        *,
        shards: int = 2,
        budget: int | None = None,
        seed: int = 0,
        rebalance_threshold: float = 0.0,
        max_pages_moved: int = 4,
        admission: bool = True,
        queue_limit: int = 16,
        slo_window: int = 64,
        target_miss_rate: float = 0.05,
        replan_cooldown: int = 8,
        batch_listeners: bool = False,
        router: str = "columnar",
        workers: int | None = None,
        mode: str | None = None,
        pool=None,
        manifest_path: str | Path | None = None,
    ) -> "FederationResult":
        """Replay a trace across N station shards (manifested, v9).

        Routes the global trace through a
        :class:`~repro.federation.service.FederatedBroadcastService` —
        group-aware consistent-hash placement, federation-wide
        Theorem-3.1 admission, bounded drift rebalancing — and replays
        every shard, fanning across the engine's executor when
        ``workers > 1``.  Shard replays are pure, so the report is
        identical for every worker count and mode.

        The manifest (operation ``"federate"``, schema v9 with the
        ``federation`` block and its ``transport`` field) is emitted
        deterministically, like :meth:`live`: fixed inputs produce
        byte-identical documents.  The router is deliberately *not*
        recorded anywhere in the manifest: the columnar and sequential
        routers are required to produce byte-identical documents, and
        CI diffs the two to prove it.

        Args:
            initial: Catalog on air at ``t=0`` (instance or mapping);
                must span at least ``shards`` distinct ladder groups.
            trace: The global :class:`~repro.live.mutations.
                MutationTrace` to route and replay.
            shards: Station shard count.
            budget: *Per-shard* channel budget; defaults to the maximum
                Theorem-3.1 requirement over the initial partitions.
            seed: Ring placement seed.
            rebalance_threshold: Drift trigger as a multiple of the
                federation's mean fractional load (``0`` disables).
            max_pages_moved: Reallocation budget per rebalance trigger.
            admission: Toggle the global admission controller (shard
                services inherit the flag).
            queue_limit: Global FIFO insert-queue capacity.
            slo_window / target_miss_rate / replan_cooldown /
            batch_listeners: Forwarded to every shard's live service.
            router: Listener-routing implementation — ``"columnar"``
                (vectorised, the default) or ``"sequential"`` (the
                per-event reference); reports are byte-identical.
            workers: Fan-out width; defaults to the engine's
                ``workers`` attribute.
            mode: Executor mode; defaults to the engine's ``executor``
                when pooling, ``"serial"`` otherwise.
            pool: Optional persistent
                :class:`~repro.engine.executor.TaskPool` whose warm
                workers replay the shards (overrides workers/mode).
            manifest_path: When set, also write this call's manifest
                JSON to the path.

        Returns:
            A :class:`FederationResult`.
        """
        from repro.federation.service import FederatedBroadcastService
        from repro.live.catalog import LiveCatalog

        instance = (
            initial
            if isinstance(initial, ProblemInstance)
            else LiveCatalog(initial).to_instance()
        )
        cache_before = self.cache.stats()
        telemetry_before = self.telemetry.snapshot()
        workers = self.workers if workers is None else workers
        if mode is None:
            mode = self.executor if workers > 1 else "serial"
        service = FederatedBroadcastService(
            initial,
            trace,
            shards=shards,
            budget=budget,
            seed=seed,
            rebalance_threshold=rebalance_threshold,
            max_pages_moved=max_pages_moved,
            admission=admission,
            queue_limit=queue_limit,
            slo_window=slo_window,
            target_miss_rate=target_miss_rate,
            replan_cooldown=replan_cooldown,
            batch_listeners=batch_listeners,
            router=router,
        )
        with self.telemetry.timer("federate.replay"):
            report = service.run(
                workers=workers,
                mode=mode,
                policy=self.execution,
                telemetry=self.telemetry,
                pool=pool,
            )
        federation_block = report.as_dict()
        manifest = self._emit_manifest(
            operation="federate",
            instance=instance,
            parameters={
                "shards": shards,
                "budget": report.budget,
                "seed": seed,
                "rebalance_threshold": rebalance_threshold,
                "max_pages_moved": max_pages_moved,
                "admission": admission,
                "queue_limit": queue_limit,
                "batch_listeners": batch_listeners,
                "trace": {
                    "fingerprint": trace.fingerprint(),
                    "horizon": trace.horizon,
                    "events": len(trace.events),
                    "meta": dict(trace.meta),
                },
            },
            schedulers=("susc", "pamad"),
            channels=(report.budget,),
            executor=dict(report.executor),
            cache_before=cache_before,
            telemetry_before=telemetry_before,
            results={
                "shards": report.shards,
                "listeners": report.listeners,
                "misses": report.misses,
                "miss_rate": report.miss_rate(),
                "mutations": report.counters["mutations"],
                "full_replans": report.counters["full_replans"],
                "pages_moved": report.pages_moved,
                "rejected": federation_block["admission"]["rejected"],
                "final_valid": report.final_valid,
            },
            federation=federation_block,
            deterministic=True,
        )
        _write_manifest_path(manifest, manifest_path)
        return FederationResult(report=report, manifest=manifest)


_DEFAULT_ENGINE: BroadcastEngine | None = None
_DEFAULT_ENGINE_LOCK = threading.Lock()


def default_engine() -> BroadcastEngine:
    """The process-wide engine behind the legacy helpers and the CLI.

    Lazily constructed; shares the process-wide scheduler registry, so
    plugins registered via :func:`repro.engine.register_scheduler` are
    immediately sweepable.
    """
    global _DEFAULT_ENGINE
    with _DEFAULT_ENGINE_LOCK:
        if _DEFAULT_ENGINE is None:
            _DEFAULT_ENGINE = BroadcastEngine()
        return _DEFAULT_ENGINE
