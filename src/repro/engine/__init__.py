"""repro.engine — the cached, parallel, observable scheduling facade.

This package is the production face of the library: every entry point
(CLI, experiment registry, sweep harness, benchmarks) drives scheduling
through :class:`BroadcastEngine` instead of re-wiring
plan → schedule → validate → measure by hand.

* :mod:`repro.engine.registry` — the public scheduler plugin API
  (:func:`register_scheduler`, :func:`get_scheduler`, alias table).
* :mod:`repro.engine.cache` — memoised scheduling keyed by canonical
  instance fingerprints, with hit/miss accounting.
* :mod:`repro.engine.executor` — (scheduler × channels) sweep cells
  fanned across a :mod:`concurrent.futures` pool, deterministically.
* :mod:`repro.engine.telemetry` — counters, stage timers, and the
  structured JSON run manifest emitted by every engine call.
* :mod:`repro.engine.facade` — :class:`BroadcastEngine` itself.
"""

from repro.engine.cache import (
    CachedSchedule,
    CacheStats,
    ProgramCache,
    instance_fingerprint,
    program_key,
)
from repro.engine.executor import (
    EXECUTOR_MODES,
    CellFailure,
    ExecutionPolicy,
    ExecutionReport,
    SweepPoint,
    TaskPool,
    default_channel_points,
)
from repro.engine.facade import (
    BroadcastEngine,
    EngineEvaluation,
    FederationResult,
    LiveServiceResult,
    ResilienceResult,
    SweepResult,
    default_engine,
)
from repro.engine.registry import (
    ScheduleResult,
    Scheduler,
    SchedulerRegistry,
    available_schedulers,
    default_registry,
    get_scheduler,
    register_scheduler,
)
from repro.engine.telemetry import (
    MANIFEST_VERSION,
    RunManifest,
    Telemetry,
    describe_instance,
)

__all__ = [
    "BroadcastEngine",
    "CacheStats",
    "CachedSchedule",
    "CellFailure",
    "EXECUTOR_MODES",
    "EngineEvaluation",
    "ExecutionPolicy",
    "ExecutionReport",
    "FederationResult",
    "LiveServiceResult",
    "MANIFEST_VERSION",
    "ProgramCache",
    "ResilienceResult",
    "RunManifest",
    "ScheduleResult",
    "Scheduler",
    "SchedulerRegistry",
    "SweepPoint",
    "SweepResult",
    "TaskPool",
    "Telemetry",
    "available_schedulers",
    "default_channel_points",
    "default_engine",
    "default_registry",
    "describe_instance",
    "get_scheduler",
    "instance_fingerprint",
    "program_key",
    "register_scheduler",
]
