"""Program cache — memoised scheduling keyed by instance fingerprints.

Scheduling is deterministic: the same instance, scheduler and channel
count always produce the same program.  Sweeps and experiment grids
re-visit identical (instance, scheduler, channels) cells constantly —
e.g. a repeated ``FIG5D`` run, or ``evaluate`` after ``schedule`` — so
the engine memoises schedule results behind a canonical *fingerprint*
and counts hits/misses for the run manifest.

The fingerprint covers everything the program depends on: group sizes,
expected times, the page-id layout, the canonical scheduler name (plus
the callable's identity, so re-registering a name under ``replace=True``
does not serve stale programs), and the channel count.  Measurement
results are *not* cached — they are cheap relative to search-based
schedulers (OPT especially) and depend on seeds the caller controls.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.pages import ProblemInstance

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.engine.registry import ScheduleResult, Scheduler

__all__ = [
    "instance_fingerprint",
    "program_key",
    "CachedSchedule",
    "CacheStats",
    "ProgramCache",
]


def instance_fingerprint(instance: ProblemInstance) -> str:
    """A short canonical digest of an instance's schedulable content.

    Two instances with the same group sizes, expected times and page-id
    layout are interchangeable for every scheduler in the library; the
    digest folds all three so cached programs (which embed page ids) are
    never served to a differently-numbered instance.
    """
    payload = repr(
        (
            instance.group_sizes,
            instance.expected_times,
            tuple(page.page_id for page in instance.pages()),
        )
    ).encode()
    return hashlib.sha256(payload).hexdigest()[:16]


def program_key(
    instance: ProblemInstance,
    scheduler_name: str,
    channels: int,
    scheduler: "Scheduler | None" = None,
) -> tuple:
    """The cache key for one (instance, scheduler, channels) cell."""
    identity = (
        f"{getattr(scheduler, '__module__', '')}."
        f"{getattr(scheduler, '__qualname__', repr(scheduler))}"
        if scheduler is not None
        else ""
    )
    return (
        instance_fingerprint(instance),
        scheduler_name,
        identity,
        int(channels),
    )


@dataclass(frozen=True)
class CachedSchedule:
    """One cache entry: the schedule plus the wall time it originally took.

    ``elapsed_seconds`` is replayed into :class:`SweepPoint` rows on cache
    hits, which keeps repeated sweeps bit-identical (a hit costs ~0s but
    *reports* the true scheduling cost, which is the quantity the
    OPT-is-slow analyses care about).
    """

    schedule: "ScheduleResult"
    elapsed_seconds: float


@dataclass(frozen=True)
class CacheStats:
    """A point-in-time snapshot of cache accounting."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    entries: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def delta(self, earlier: "CacheStats") -> "CacheStats":
        """Accounting accrued since ``earlier`` (entries stay absolute)."""
        return CacheStats(
            hits=self.hits - earlier.hits,
            misses=self.misses - earlier.misses,
            evictions=self.evictions - earlier.evictions,
            entries=self.entries,
        )

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "entries": self.entries,
            "hit_ratio": round(self.hit_ratio, 4),
        }


@dataclass
class ProgramCache:
    """A bounded, thread-safe LRU cache of schedule results.

    Attributes:
        max_entries: Eviction threshold; ``0`` disables caching entirely
            (every lookup is a miss, nothing is stored).
    """

    max_entries: int = 256
    _data: "OrderedDict[tuple, CachedSchedule]" = field(
        default_factory=OrderedDict, repr=False
    )
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)
    _hits: int = 0
    _misses: int = 0
    _evictions: int = 0

    def get(self, key: tuple) -> CachedSchedule | None:
        """Look up a cell, counting the hit/miss and refreshing LRU order."""
        with self._lock:
            entry = self._data.get(key)
            if entry is None:
                self._misses += 1
                return None
            self._data.move_to_end(key)
            self._hits += 1
            return entry

    def put(self, key: tuple, entry: CachedSchedule) -> None:
        """Insert a cell, evicting the least-recently-used past the bound."""
        if self.max_entries <= 0:
            return
        with self._lock:
            self._data[key] = entry
            self._data.move_to_end(key)
            while len(self._data) > self.max_entries:
                self._data.popitem(last=False)
                self._evictions += 1

    def stats(self) -> CacheStats:
        """A consistent snapshot of the counters."""
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                entries=len(self._data),
            )

    def clear(self) -> None:
        """Drop every entry (the counters keep accumulating)."""
        with self._lock:
            self._data.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key: object) -> bool:
        with self._lock:
            return key in self._data
