"""Observability layer: counters, stage timers and JSON run manifests.

Every :class:`~repro.engine.facade.BroadcastEngine` call produces a
:class:`RunManifest` — a structured, JSON-serialisable record of what
ran (operation, scheduler(s), channels, instance fingerprint), how it
ran (executor mode, worker count, per-stage timings) and what the cache
did (hits/misses for the run and for the engine's lifetime).  Manifests
are the machine-readable audit trail of an engine process: the CLI can
write them next to results, and regression tooling can diff them.

Manifest schema (``manifest_version`` 9)::

    {
      "manifest_version": 9,
      "run_id": 3,                      # per-engine monotonic counter
      "operation": "sweep",             # plan | schedule | evaluate |
                                        #   sweep | resilience | live |
                                        #   control | federate
      "created_at": 1754512345.123,     # unix seconds (0.0 when the
                                        #   operation pins determinism)
      "instance": {
        "fingerprint": "a1b2...",       # canonical digest (cache key part)
        "groups": 8, "pages": 1000,
        "group_sizes": [...], "expected_times": [...]
      },
      "parameters": {...},              # operation-specific inputs
      "schedulers": ["pamad", "m-pb"],  # canonical registry names
      "channels": [1, 2, 4],            # count(s) the run touched
      "executor": {
        "mode": "process", "workers": 4, "fallback": false,
        "retries": 0,                   # cell re-executions performed
        "cell_failures": 0,             # cells that produced no result
        "breaker_trips": 0,             # per-algorithm circuits opened
        "timeouts": 0,                  # per-future timeout expiries
        "chunk_size": 1,                # cells per pool future (v4)
        "measure_backend": "scalar",    # scalar | batch (v4)
        "short_circuited": 0,           # cells never submitted (v4)
        "transport": "shm",             # shm | pickle | inline (v8)
        "harvested": 0,                 # cells saved from timed-out
                                        #   chunks (v8)
        "compute_backend": "python"     # python | numba kernels (v8)
      },
      "cache": {"run": {...}, "total": {...}},   # CacheStats dicts
      "timings": {"schedule": {"seconds": 0.81, "calls": 6}, ...},
      "counters": {"cells": 6, ...},
      "service": {...},                 # live-runtime block (v3): trace
                                        #   fingerprint, admission/SLO
                                        #   summaries, and (v4) the
                                        #   counters.batched_listeners /
                                        #   events_coalesced /
                                        #   replans_avoided serving-
                                        #   throughput fields;
                                        #   {} otherwise
      "control": {...},                 # control-plane block (v5):
                                        #   remediation policy, the
                                        #   detector->proposer->verifier
                                        #   records, session stream
                                        #   fingerprint; (v6) the
                                        #   "durability" sub-block:
                                        #   accepted-request count +
                                        #   request-stream fingerprint
                                        #   (what journal recovery must
                                        #   reproduce byte-for-byte);
                                        #   {} otherwise
      "federation": {...},              # federation block (v7): shard
                                        #   count, ring fingerprint,
                                        #   pages moved by the drift
                                        #   rebalancer, global admission
                                        #   counters, per-shard report
                                        #   summaries; (v9) the
                                        #   "transport" field: how shard
                                        #   sub-traces crossed to the
                                        #   replay workers (inline |
                                        #   shm | pickle); {} otherwise
      "results": {...}                  # operation-specific summary
    }

Version history — version 2 added the ``resilience`` operation and the
executor hardening keys (``retries`` / ``cell_failures`` /
``breaker_trips`` / ``timeouts``); version 3 added the ``live``
operation and the ``service`` block; version 4 added the chunked-
transport executor keys (``chunk_size`` / ``measure_backend`` /
``short_circuited``) and the serving-throughput counters inside the
``service`` block (``batched_listeners`` / ``events_coalesced`` /
``replans_avoided``); version 5 added the ``control`` operation and the
``control`` block (the :mod:`repro.control` plane's remediation trail);
version 6 added the ``durability`` sub-block inside ``control`` (the
write-ahead journal's crash-recovery trail); version 7 added the
``federate`` operation and the ``federation`` block (the sharded
multi-station layer's ring placement, global admission and drift-
rebalance trail); version 8 added the zero-copy-transport executor keys
(``transport`` / ``harvested`` / ``compute_backend``); version 9 added
the ``transport`` field inside the ``federation`` block (how shard
sub-traces reach the replay workers: ``inline`` by reference, ``shm``
via one shared-memory listener post, ``pickle`` per shard plan).
:meth:`RunManifest.from_dict` parses every version back to 1,
defaulting the keys each newer version introduced, so consumers can
rely on the version-9 shape either way.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Mapping

from repro.core.errors import ReproError
from repro.core.pages import ProblemInstance
from repro.engine.cache import CacheStats, instance_fingerprint

__all__ = [
    "MANIFEST_VERSION",
    "Telemetry",
    "RunManifest",
    "describe_instance",
]

MANIFEST_VERSION = 9

#: Executor-block keys added in manifest version 2, with their defaults
#: (applied when parsing version-1 documents).
_EXECUTOR_V2_DEFAULTS = {
    "retries": 0,
    "cell_failures": 0,
    "breaker_trips": 0,
    "timeouts": 0,
}

#: Executor-block keys added in manifest version 4 (chunked transport),
#: with their defaults (applied when parsing version-1..3 documents).
_EXECUTOR_V4_DEFAULTS = {
    "chunk_size": 1,
    "measure_backend": "scalar",
    "short_circuited": 0,
}

#: Executor-block keys added in manifest version 8 (zero-copy
#: transport), with their defaults (applied when parsing version-1..7
#: documents; ``transport`` defaults per mode — older process-pool runs
#: pickled chunk payloads, everything else passed objects inline).
_EXECUTOR_V8_DEFAULTS = {
    "harvested": 0,
    "compute_backend": "python",
}

#: ``service.counters`` keys added in manifest version 4 (serving
#: throughput), defaulted to zero for older ``live`` manifests.
_SERVICE_COUNTERS_V4 = (
    "batched_listeners",
    "events_coalesced",
    "replans_avoided",
)

#: ``control.durability`` default applied to version-5 ``control``
#: blocks (which predate the write-ahead journal).  ``fingerprint``
#: ``None`` marks "no durability trail recorded", distinct from a
#: session that journaled zero requests.
_CONTROL_DURABILITY_V6_DEFAULT = {"requests": 0, "fingerprint": None}


class Telemetry:
    """Accumulating counters and wall-clock stage timers.

    The engine owns one instance and snapshots it into every manifest;
    :meth:`snapshot` deltas let a single run report only its own share.
    """

    def __init__(self) -> None:
        self._counters: dict[str, int] = {}
        self._timers: dict[str, dict[str, float]] = {}

    def incr(self, name: str, amount: int = 1) -> None:
        """Bump a named counter."""
        self._counters[name] = self._counters.get(name, 0) + amount

    def record_timing(self, name: str, seconds: float) -> None:
        """Fold an externally-measured duration into a named timer."""
        timer = self._timers.setdefault(name, {"seconds": 0.0, "calls": 0})
        timer["seconds"] += seconds
        timer["calls"] += 1

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Time a ``with`` block into the named timer."""
        started = time.perf_counter()
        try:
            yield
        finally:
            self.record_timing(name, time.perf_counter() - started)

    def counters(self) -> dict[str, int]:
        return dict(self._counters)

    def timers(self) -> dict[str, dict[str, float]]:
        return {
            name: {
                "seconds": round(timer["seconds"], 6),
                "calls": int(timer["calls"]),
            }
            for name, timer in self._timers.items()
        }

    def snapshot(self) -> dict:
        """Both tables, as plain JSON-ready dicts."""
        return {"counters": self.counters(), "timers": self.timers()}

    @staticmethod
    def delta(
        after: Mapping[str, dict], before: Mapping[str, dict]
    ) -> dict:
        """Per-run share of two :meth:`snapshot` results."""
        counters = {
            name: value - before["counters"].get(name, 0)
            for name, value in after["counters"].items()
        }
        timers = {}
        for name, timer in after["timers"].items():
            prior = before["timers"].get(name, {"seconds": 0.0, "calls": 0})
            timers[name] = {
                "seconds": round(timer["seconds"] - prior["seconds"], 6),
                "calls": timer["calls"] - prior["calls"],
            }
        return {
            "counters": {k: v for k, v in counters.items() if v},
            "timers": {k: v for k, v in timers.items() if v["calls"]},
        }

    def reset(self) -> None:
        self._counters.clear()
        self._timers.clear()


def describe_instance(instance: ProblemInstance) -> dict:
    """The instance block of a manifest (fingerprint + shape)."""
    return {
        "fingerprint": instance_fingerprint(instance),
        "groups": instance.h,
        "pages": instance.n,
        "group_sizes": list(instance.group_sizes),
        "expected_times": list(instance.expected_times),
    }


@dataclass(frozen=True)
class RunManifest:
    """One engine call, fully described (see the module docstring schema)."""

    run_id: int
    operation: str
    created_at: float
    instance: Mapping[str, object]
    parameters: Mapping[str, object]
    schedulers: tuple[str, ...]
    channels: tuple[int, ...]
    executor: Mapping[str, object]
    cache_run: CacheStats
    cache_total: CacheStats
    timings: Mapping[str, Mapping[str, float]]
    counters: Mapping[str, int]
    results: Mapping[str, object] = field(default_factory=dict)
    service: Mapping[str, object] = field(default_factory=dict)
    control: Mapping[str, object] = field(default_factory=dict)
    federation: Mapping[str, object] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "manifest_version": MANIFEST_VERSION,
            "run_id": self.run_id,
            "operation": self.operation,
            "created_at": self.created_at,
            "instance": dict(self.instance),
            "parameters": dict(self.parameters),
            "schedulers": list(self.schedulers),
            "channels": list(self.channels),
            "executor": dict(self.executor),
            "cache": {
                "run": self.cache_run.as_dict(),
                "total": self.cache_total.as_dict(),
            },
            "timings": {k: dict(v) for k, v in self.timings.items()},
            "counters": dict(self.counters),
            "service": dict(self.service),
            "control": dict(self.control),
            "federation": dict(self.federation),
            "results": dict(self.results),
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "RunManifest":
        """Parse a manifest document of any supported schema version.

        Accepts version 1 through 9 documents: the hardening keys
        missing from version-1 executor blocks default to zero, the
        ``service`` block missing below version 3 defaults to ``{}``,
        the version-4 chunked-transport executor keys and serving-
        throughput service counters default to their quiescent values,
        the version-5 ``control`` block defaults to ``{}``, a
        non-empty pre-v6 ``control`` block gains a defaulted
        ``durability`` sub-block, the version-7 ``federation`` block
        defaults to ``{}``, the version-8 zero-copy-transport
        executor keys default to what the older executors actually did
        (``transport`` ``"pickle"`` for process mode, ``"inline"``
        otherwise; ``compute_backend`` ``"python"``), and a non-empty
        pre-v9 ``federation`` block gains a ``transport`` field
        defaulted the same way (older federations pickled shard plans
        under process fan-out and passed them inline otherwise) — so
        consumers can rely on the version-9 shape either way.

        Raises:
            ReproError: For unknown (newer) versions or documents missing
                required keys.
        """
        version = payload.get("manifest_version")
        if not isinstance(version, int) or not 1 <= version <= MANIFEST_VERSION:
            raise ReproError(
                f"unsupported manifest_version {version!r}; this build "
                f"reads versions 1..{MANIFEST_VERSION}"
            )
        try:
            cache_block = payload.get("cache", {})
            executor = dict(payload["executor"])
            for key, default in _EXECUTOR_V2_DEFAULTS.items():
                executor.setdefault(key, default)
            for key, default in _EXECUTOR_V4_DEFAULTS.items():
                executor.setdefault(key, default)
            for key, default in _EXECUTOR_V8_DEFAULTS.items():
                executor.setdefault(key, default)
            executor.setdefault(
                "transport",
                "pickle" if executor.get("mode") == "process" else "inline",
            )
            service = dict(payload.get("service", {}))
            if "counters" in service:
                counters = dict(service["counters"])
                for key in _SERVICE_COUNTERS_V4:
                    counters.setdefault(key, 0)
                service["counters"] = counters
            control = dict(payload.get("control", {}))
            if control:
                control.setdefault(
                    "durability", dict(_CONTROL_DURABILITY_V6_DEFAULT)
                )
            federation = dict(payload.get("federation", {}))
            if federation:
                federation.setdefault(
                    "transport",
                    "pickle"
                    if executor.get("mode") == "process"
                    else "inline",
                )
            return cls(
                run_id=int(payload["run_id"]),
                operation=str(payload["operation"]),
                created_at=float(payload["created_at"]),
                instance=dict(payload["instance"]),
                parameters=dict(payload.get("parameters", {})),
                schedulers=tuple(payload.get("schedulers", ())),
                channels=tuple(
                    int(c) for c in payload.get("channels", ())
                ),
                executor=executor,
                cache_run=_cache_stats_from(cache_block.get("run", {})),
                cache_total=_cache_stats_from(cache_block.get("total", {})),
                timings={
                    str(k): dict(v)
                    for k, v in payload.get("timings", {}).items()
                },
                counters=dict(payload.get("counters", {})),
                results=dict(payload.get("results", {})),
                service=service,
                control=control,
                federation=federation,
            )
        except (KeyError, TypeError, ValueError) as error:
            raise ReproError(
                f"malformed manifest document: {error}"
            ) from error

    @classmethod
    def from_json(cls, text: str) -> "RunManifest":
        """Parse a manifest from its JSON serialisation."""
        return cls.from_dict(json.loads(text))


def _cache_stats_from(block: Mapping[str, object]) -> CacheStats:
    return CacheStats(
        hits=int(block.get("hits", 0)),
        misses=int(block.get("misses", 0)),
        evictions=int(block.get("evictions", 0)),
        entries=int(block.get("entries", 0)),
    )
