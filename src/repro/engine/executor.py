"""Sweep cell execution — serial, threaded, or across a process pool.

A sweep is a grid of independent (scheduler, channel-count) *cells*;
each cell schedules (unless the engine's cache already holds the
program) and then Monte-Carlo measures the result.  Cells carry their
own derived seeds, so the outcome of a cell is a pure function of its
spec — which is what makes fanning them across a
:mod:`concurrent.futures` pool safe: results are collected back in
submission order and are bit-identical to a serial run.

The process pool is the default for ``workers > 1`` (scheduling and
replay are CPU-bound pure Python; threads only help on the margins),
with automatic serial fallback when the pool cannot be built or the
cell specs cannot be pickled (e.g. a scheduler registered as a lambda).

Execution is *hardened*: a raising scheduler never poisons the rest of
the grid.  Cell-level exceptions cross the pool boundary as values (the
worker wraps them), so the parent can distinguish them from pool
infrastructure failures; a failing cell is retried with exponential
backoff up to :attr:`ExecutionPolicy.retries` times, a per-future
timeout bounds how long the parent waits in pool modes, and a
per-algorithm circuit breaker stops burning attempts on a scheduler
that keeps crashing — subsequent cells of that algorithm short-circuit
to a structured :class:`CellFailure` instead of executing.  Failed
cells come back as :class:`CellFailure` entries in the result list, in
grid order, alongside the successful :class:`CellResult` entries.

Pool transport is *chunked and lazy*: :attr:`ExecutionPolicy.chunk_size`
cells ride in one future, so the (identical) ``ProblemInstance`` payload
ships once per chunk instead of once per cell, and chunks are
submitted in waves of at most ``workers`` — never all up front — so a
circuit that opens mid-grid short-circuits every not-yet-submitted cell
without burning pool work.  On process pools the shared instance is
*posted once per run* into a :mod:`multiprocessing.shared_memory` block
(:attr:`ExecutionPolicy.transport` ``"shm"``, the default); chunk
payloads then carry only the block's name and each worker attaches and
unpickles it once, caching by name — large grids stop re-shipping the
instance entirely.  ``"pickle"`` restores the per-chunk copy, and any
shared-memory failure degrades to it silently (recorded in the report).
When a timeout is set, workers also post each finished cell into a
shared progress map, so a timed-out chunk *harvests* the cells that did
complete — only the genuinely unfinished cells burn retries.  Cells can
also opt into the vectorised ``batch`` measurement backend via
:attr:`ExecutionPolicy.measure_backend` (recorded in manifests; see
:func:`repro.sim.clients.measure_with_backend`).  Chunking, waves,
transport and backend never change *which* results come back: outcomes
are bit-identical to a ``workers=1`` serial run of the same policy.
"""

from __future__ import annotations

import multiprocessing
import pickle
import time
import traceback
from collections import deque
from concurrent.futures import (
    BrokenExecutor,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from concurrent.futures import TimeoutError as FuturesTimeoutError
from dataclasses import dataclass, field, replace
from multiprocessing import shared_memory

from repro.core.backend import (
    COMPUTE_BACKENDS,
    active_backend,
    resolve_backend,
    set_backend,
)
from repro.core.errors import ReproError
from repro.core.pages import ProblemInstance
from repro.engine.cache import CachedSchedule
from repro.engine.registry import Scheduler
from repro.sim.clients import MEASUREMENT_BACKENDS, measure_with_backend

__all__ = [
    "SweepPoint",
    "default_channel_points",
    "CellSpec",
    "CellResult",
    "CellFailure",
    "TaskFailure",
    "TaskPool",
    "ExecutionPolicy",
    "ExecutionReport",
    "run_cells",
    "run_tasks",
    "EXECUTOR_MODES",
    "EXECUTOR_TRANSPORTS",
]

EXECUTOR_MODES = ("serial", "thread", "process")

#: Chunk-payload transports for process pools.  ``"shm"`` posts the
#: shared instance into one ``multiprocessing.shared_memory`` block per
#: run; ``"pickle"`` ships a copy inside every chunk.  Serial and thread
#: execution pass objects by reference (reported as ``"inline"``).
EXECUTOR_TRANSPORTS = ("shm", "pickle")


@dataclass(frozen=True)
class SweepPoint:
    """One measured (algorithm, channel-count) cell of a sweep.

    Attributes:
        algorithm: Registry name of the scheduler.
        channels: ``N_real`` given to it.
        analytic_delay: Exact expected AvgD of the generated program.
        simulated_delay: Monte-Carlo AvgD (paper methodology).
        miss_ratio: Fraction of simulated requests past their deadline.
        cycle_length: Major-cycle length of the generated program.
        elapsed_seconds: Wall time to schedule (the OPT-is-slow point).
            On an engine cache hit this replays the originally measured
            time, so repeated sweeps stay bit-identical.
    """

    algorithm: str
    channels: int
    analytic_delay: float
    simulated_delay: float
    miss_ratio: float
    cycle_length: int
    elapsed_seconds: float


def default_channel_points(n_min: int, max_points: int = 12) -> list[int]:
    """Channel counts to sweep: 1 .. n_min, geometrically thinned.

    Small counts are where the curves move (the paper's "1/5 of the
    minimum" observation), so points are dense at the low end —
    geometric spacing from 1 to ``n_min`` with both endpoints included.
    """
    if n_min < 1:
        raise ReproError(f"n_min must be >= 1, got {n_min}")
    if n_min <= max_points:
        return list(range(1, n_min + 1))
    points = {1, n_min}
    factor = n_min ** (1.0 / (max_points - 1))
    value = 1.0
    while len(points) < max_points:
        value *= factor
        candidate = min(n_min, max(1, round(value)))
        points.add(candidate)
        if candidate >= n_min:
            break
    return sorted(points)


@dataclass(frozen=True)
class CellSpec:
    """Everything one sweep cell needs, resolved up front in the parent.

    ``seed`` is the cell's fully derived RNG seed (the sweep-level
    formula lives in the facade), and ``cached`` carries a cache hit so
    workers skip scheduling entirely.
    """

    algorithm: str
    scheduler: Scheduler
    channels: int
    instance: ProblemInstance
    num_requests: int
    seed: int
    cached: CachedSchedule | None = None


@dataclass(frozen=True)
class CellResult:
    """One executed cell: the sweep point plus cache-insertion payload.

    ``schedule`` is populated only for freshly computed cells — cache
    hits return ``None`` there so nothing is pickled back needlessly.
    ``attempts`` counts executions including retries (1 = first try).
    """

    point: SweepPoint
    schedule: object | None
    elapsed_seconds: float
    attempts: int = 1


@dataclass(frozen=True)
class CellFailure:
    """A cell that produced no result, as structured data.

    Attributes:
        algorithm: Registry name of the scheduler that failed.
        channels: The cell's channel count.
        error_type: Exception class name (or ``"TimeoutError"``).
        message: The exception message (first line of context).
        attempts: Executions burnt on this cell (0 when the circuit
            breaker skipped it entirely).
        circuit_open: True when the per-algorithm breaker suppressed
            execution or retries for this cell.
    """

    algorithm: str
    channels: int
    error_type: str
    message: str
    attempts: int
    circuit_open: bool = False

    def as_dict(self) -> dict:
        return {
            "algorithm": self.algorithm,
            "channels": self.channels,
            "error_type": self.error_type,
            "message": self.message,
            "attempts": self.attempts,
            "circuit_open": self.circuit_open,
        }


@dataclass(frozen=True)
class ExecutionPolicy:
    """Hardening knobs for a cell grid run.

    Attributes:
        timeout: Per-future wait bound in seconds for pool modes
            (``None`` = wait forever).  With ``chunk_size > 1`` one
            future carries a whole chunk, so the budget covers the
            chunk; a timed-out chunk fails every cell it carried
            (retried individually per ``retries``).  Serial execution
            cannot be preempted, so the timeout is ignored there.  A
            timed-out worker may still be running; its result is simply
            no longer awaited.
        retries: Extra attempts after a failed first execution.  Pool
            retries are resubmitted as single-cell futures.
        backoff: Base of the exponential backoff sleep between attempts
            (``backoff * 2**(attempt-1)`` seconds).
        breaker_threshold: Consecutive final failures of one algorithm
            that open its circuit; further cells of that algorithm are
            failed structurally instead of executed/retried (in pool
            modes, without even being submitted).  ``0`` disables the
            breaker.
        chunk_size: Cells per pool future.  The shared
            ``ProblemInstance`` ships once per chunk, so large grids of
            cheap cells stop paying per-cell pickling; ``1`` restores
            the one-future-per-cell transport.  Results are identical
            for every value.
        measure_backend: ``"scalar"`` (the reference
            :func:`~repro.sim.clients.measure_program` loop) or
            ``"batch"`` (the vectorised
            :func:`~repro.analysis.vectorized.batch_measure` pass).
            Backends draw different RNG streams, so manifests record
            which one ran.
        transport: Chunk-payload transport for process pools.  ``"shm"``
            (default) posts the shared ``ProblemInstance`` once into a
            shared-memory block that workers attach by name; ``"pickle"``
            ships a pickled copy per chunk.  Ignored outside process
            mode; shared-memory failures degrade to ``"pickle"``
            silently (the report records what actually ran).
        compute_backend: Kernel backend for placement/delay math:
            ``"auto"`` (numba when installed, else numpy), ``"python"``,
            or ``"numba"`` (see :mod:`repro.core.backend`).  Workers
            resolve it per process; manifests record the resolution.
    """

    timeout: float | None = None
    retries: int = 1
    backoff: float = 0.05
    breaker_threshold: int = 3
    chunk_size: int = 1
    measure_backend: str = "scalar"
    transport: str = "shm"
    compute_backend: str = "auto"

    def __post_init__(self) -> None:
        if self.timeout is not None and self.timeout <= 0:
            raise ReproError(
                f"timeout must be positive or None, got {self.timeout}"
            )
        if self.retries < 0:
            raise ReproError(f"retries must be >= 0, got {self.retries}")
        if self.backoff < 0:
            raise ReproError(f"backoff must be >= 0, got {self.backoff}")
        if self.breaker_threshold < 0:
            raise ReproError(
                f"breaker_threshold must be >= 0, got "
                f"{self.breaker_threshold}"
            )
        if self.chunk_size < 1:
            raise ReproError(
                f"chunk_size must be >= 1, got {self.chunk_size}"
            )
        if self.measure_backend not in MEASUREMENT_BACKENDS:
            raise ReproError(
                f"unknown measure_backend {self.measure_backend!r}; "
                f"choose from {', '.join(MEASUREMENT_BACKENDS)}"
            )
        if self.transport not in EXECUTOR_TRANSPORTS:
            raise ReproError(
                f"unknown transport {self.transport!r}; choose from "
                f"{', '.join(EXECUTOR_TRANSPORTS)}"
            )
        if self.compute_backend not in COMPUTE_BACKENDS:
            raise ReproError(
                f"unknown compute_backend {self.compute_backend!r}; "
                f"choose from {', '.join(COMPUTE_BACKENDS)}"
            )


@dataclass
class ExecutionReport:
    """Accounting of one :func:`run_cells` call.

    ``as_dict`` is the manifest's ``executor`` block (minus ``workers``,
    which the facade adds).
    """

    mode: str
    requested_mode: str
    fallback: bool = False
    retries: int = 0
    cell_failures: int = 0
    breaker_trips: int = 0
    timeouts: int = 0
    chunk_size: int = 1
    measure_backend: str = "scalar"
    short_circuited: int = 0
    transport: str = "inline"
    harvested: int = 0
    compute_backend: str = "python"

    def as_dict(self) -> dict:
        return {
            "mode": self.mode,
            "fallback": self.fallback,
            "retries": self.retries,
            "cell_failures": self.cell_failures,
            "breaker_trips": self.breaker_trips,
            "timeouts": self.timeouts,
            "chunk_size": self.chunk_size,
            "measure_backend": self.measure_backend,
            "short_circuited": self.short_circuited,
            "transport": self.transport,
            "harvested": self.harvested,
            "compute_backend": self.compute_backend,
        }


@dataclass(frozen=True)
class _CellError:
    """A cell exception shipped across the pool boundary as a value.

    Keeping scheduler/measurement exceptions as *values* is what lets
    the parent tell them apart from pool infrastructure failures (which
    raise out of ``future.result`` and trigger the serial fallback).
    """

    error_type: str
    message: str
    trace: str = ""


def execute_cell(spec: CellSpec, backend: str = "scalar") -> CellResult:
    """Run one cell to completion (schedule unless cached, then measure)."""
    if spec.cached is not None:
        schedule = spec.cached.schedule
        elapsed = spec.cached.elapsed_seconds
        fresh = False
    else:
        started = time.perf_counter()
        schedule = spec.scheduler(spec.instance, spec.channels)
        elapsed = time.perf_counter() - started
        fresh = True
    measurement = measure_with_backend(
        schedule.program,
        spec.instance,
        num_requests=spec.num_requests,
        seed=spec.seed,
        backend=backend,
    )
    point = SweepPoint(
        algorithm=spec.algorithm,
        channels=spec.channels,
        analytic_delay=schedule.average_delay,
        simulated_delay=measurement.average_delay,
        miss_ratio=measurement.miss_ratio,
        cycle_length=schedule.program.cycle_length,
        elapsed_seconds=elapsed,
    )
    return CellResult(
        point=point,
        schedule=schedule if fresh else None,
        elapsed_seconds=elapsed,
    )


def _guarded_execute(
    spec: CellSpec, backend: str = "scalar", compute: str | None = None
) -> CellResult | _CellError:
    """Worker entry point: cell exceptions become picklable values."""
    try:
        if compute is not None and compute != active_backend():
            set_backend(compute)
        return execute_cell(spec, backend)
    except Exception as error:  # noqa: BLE001 - the guard is the point
        return _CellError(
            error_type=type(error).__name__,
            message=str(error),
            trace=traceback.format_exc(limit=8),
        )


@dataclass(frozen=True)
class _ChunkCell:
    """One cell's chunk payload — everything but the shared instance."""

    algorithm: str
    scheduler: Scheduler
    channels: int
    num_requests: int
    seed: int
    cached: CachedSchedule | None = None


@dataclass(frozen=True)
class _ChunkSpec:
    """A batch of cells sharing one ``ProblemInstance``.

    The instance rides either inline (``instance``, pickled with the
    chunk on process pools) or by reference to a shared-memory block
    (``shm_name``/``shm_size``) the parent posted once for the whole
    run.  ``indices`` are the cells' grid positions — the keys workers
    use to post per-cell results into ``progress`` so a timed-out chunk
    can be harvested.
    """

    instance: ProblemInstance | None
    backend: str
    cells: tuple[_ChunkCell, ...]
    indices: tuple[int, ...] = ()
    shm_name: str | None = None
    shm_size: int = 0
    progress: object | None = None
    compute_backend: str = "python"


class _ShmPost:
    """One ``ProblemInstance`` pickled once into a shared-memory block.

    Workers attach by name and unpickle straight out of the mapped
    buffer — the payload crosses the process boundary exactly once per
    worker instead of once per chunk.  The parent owns the block's
    lifetime: :meth:`close` unlinks it after the pool has drained.
    """

    def __init__(self, instance: ProblemInstance) -> None:
        payload = pickle.dumps(instance, protocol=pickle.HIGHEST_PROTOCOL)
        self.size = len(payload)
        self.block = shared_memory.SharedMemory(
            create=True, size=max(1, self.size)
        )
        self.block.buf[: self.size] = payload

    @property
    def name(self) -> str:
        return self.block.name

    def close(self) -> None:
        try:
            self.block.close()
            self.block.unlink()
        except OSError:  # pragma: no cover - already gone
            pass


#: Worker-side cache of instances unpickled from shared memory, keyed
#: by block name.  Pools (and their workers, and this cache) live for
#: one ``run_cells`` call; names are unique per post, so entries can
#: never go stale.
_SHM_INSTANCES: dict[str, ProblemInstance] = {}


def _instance_from_shm(name: str, size: int) -> ProblemInstance:
    """Attach, unpickle and cache the posted instance (once per worker)."""
    instance = _SHM_INSTANCES.get(name)
    if instance is None:
        block = shared_memory.SharedMemory(name=name)
        view = block.buf[:size]
        try:
            instance = pickle.loads(view)
        finally:
            view.release()
            block.close()
        _SHM_INSTANCES[name] = instance
    return instance


def _chunk_cell(spec: CellSpec) -> _ChunkCell:
    return _ChunkCell(
        algorithm=spec.algorithm,
        scheduler=spec.scheduler,
        channels=spec.channels,
        num_requests=spec.num_requests,
        seed=spec.seed,
        cached=spec.cached,
    )


def _cell_spec(cell: _ChunkCell, instance: ProblemInstance) -> CellSpec:
    return CellSpec(
        algorithm=cell.algorithm,
        scheduler=cell.scheduler,
        channels=cell.channels,
        instance=instance,
        num_requests=cell.num_requests,
        seed=cell.seed,
        cached=cell.cached,
    )


def _guarded_execute_chunk(
    chunk: _ChunkSpec,
) -> list[CellResult | _CellError]:
    """Worker entry point for a chunk: per-cell failures stay values.

    Each finished cell is also posted into the shared ``progress`` map
    (when the parent supplied one) so that a chunk whose *later* cells
    blow the timeout budget does not forfeit the earlier results.
    """
    if chunk.compute_backend != active_backend():
        set_backend(chunk.compute_backend)
    if chunk.shm_name is not None:
        instance = _instance_from_shm(chunk.shm_name, chunk.shm_size)
    else:
        instance = chunk.instance
    progress = chunk.progress
    values: list[CellResult | _CellError] = []
    for position, cell in enumerate(chunk.cells):
        value = _guarded_execute(_cell_spec(cell, instance), chunk.backend)
        values.append(value)
        if progress is not None:
            try:
                progress[chunk.indices[position]] = value
            except (OSError, EOFError):  # manager gone; keep computing
                progress = None
    return values


class _CircuitBreaker:
    """Consecutive-failure breaker, one circuit per algorithm name."""

    def __init__(self, threshold: int) -> None:
        self.threshold = threshold
        self._consecutive: dict[str, int] = {}
        self._open: set[str] = set()
        self.trips = 0

    def is_open(self, algorithm: str) -> bool:
        return algorithm in self._open

    def record_success(self, algorithm: str) -> None:
        self._consecutive[algorithm] = 0

    def record_failure(self, algorithm: str) -> None:
        if not self.threshold or algorithm in self._open:
            return
        count = self._consecutive.get(algorithm, 0) + 1
        self._consecutive[algorithm] = count
        if count >= self.threshold:
            self._open.add(algorithm)
            self.trips += 1


def _backoff_sleep(policy: ExecutionPolicy, attempt: int) -> None:
    if policy.backoff > 0:
        time.sleep(policy.backoff * 2 ** (attempt - 1))


def _note(telemetry, name: str, amount: int = 1) -> None:
    if telemetry is not None and amount:
        telemetry.incr(name, amount)


def _finalize(
    spec: CellSpec,
    error: _CellError,
    attempts: int,
    circuit_open: bool,
    breaker: _CircuitBreaker,
    report: ExecutionReport,
    telemetry,
) -> CellFailure:
    """Record a cell's final failure and build its structured result."""
    report.cell_failures += 1
    _note(telemetry, "executor.cell_failures")
    breaker_was_open = breaker.is_open(spec.algorithm)
    breaker.record_failure(spec.algorithm)
    return CellFailure(
        algorithm=spec.algorithm,
        channels=spec.channels,
        error_type=error.error_type,
        message=error.message,
        attempts=attempts,
        circuit_open=circuit_open or breaker_was_open,
    )


def _run_serial(
    specs: list[CellSpec],
    policy: ExecutionPolicy,
    report: ExecutionReport,
    telemetry,
) -> list[CellResult | CellFailure]:
    breaker = _CircuitBreaker(policy.breaker_threshold)
    outcomes: list[CellResult | CellFailure] = []
    for spec in specs:
        if breaker.is_open(spec.algorithm):
            report.short_circuited += 1
            outcomes.append(
                _finalize(
                    spec,
                    _CellError(
                        "CircuitOpen",
                        f"circuit open for {spec.algorithm!r}; cell skipped",
                    ),
                    attempts=0,
                    circuit_open=True,
                    breaker=breaker,
                    report=report,
                    telemetry=telemetry,
                )
            )
            continue
        attempts = 0
        while True:
            attempts += 1
            value = _guarded_execute(spec, policy.measure_backend)
            if isinstance(value, CellResult):
                breaker.record_success(spec.algorithm)
                outcomes.append(replace(value, attempts=attempts))
                break
            if attempts > policy.retries:
                outcomes.append(
                    _finalize(
                        spec, value, attempts, False,
                        breaker, report, telemetry,
                    )
                )
                break
            report.retries += 1
            _note(telemetry, "executor.retries")
            _backoff_sleep(policy, attempts)
    report.breaker_trips = breaker.trips
    _note(telemetry, "executor.breaker_trips", breaker.trips)
    return outcomes


def _chunk_specs(
    specs: list[CellSpec], chunk_size: int
) -> list[tuple[int, list[CellSpec]]]:
    """Slice the grid into consecutive chunks sharing one instance.

    Chunks never mix instances (the whole point is pickling the shared
    payload once), so a boundary between different instance objects
    closes the current chunk early.
    """
    chunks: list[tuple[int, list[CellSpec]]] = []
    i = 0
    while i < len(specs):
        j = i + 1
        while (
            j < len(specs)
            and j - i < chunk_size
            and specs[j].instance is specs[i].instance
        ):
            j += 1
        chunks.append((i, specs[i:j]))
        i = j
    return chunks


def _await_value(
    future: Future,
    policy: ExecutionPolicy,
    report: ExecutionReport,
    telemetry,
    what: str,
):
    """Wait on a pool future, converting a timeout into a value."""
    try:
        return future.result(timeout=policy.timeout)
    except FuturesTimeoutError:
        future.cancel()
        report.timeouts += 1
        _note(telemetry, "executor.timeouts")
        return _CellError(
            "TimeoutError",
            f"{what} exceeded the {policy.timeout}s budget",
        )


def _run_pool(
    specs: list[CellSpec],
    workers: int,
    mode: str,
    policy: ExecutionPolicy,
    report: ExecutionReport,
    telemetry,
) -> list[CellResult | CellFailure]:
    pool_cls = ProcessPoolExecutor if mode == "process" else ThreadPoolExecutor
    breaker = _CircuitBreaker(policy.breaker_threshold)
    outcomes: list[CellResult | CellFailure | None] = [None] * len(specs)
    chunks = _chunk_specs(specs, policy.chunk_size)
    next_chunk = 0
    # (future, [(grid index, spec), ...]) in submission order; results
    # are processed head-of-line so outcome content matches serial runs.
    in_flight: deque[tuple[Future, list[tuple[int, CellSpec]]]] = deque()

    # Zero-copy transport: the shared instance is posted once per run;
    # chunks carry only the block's name.  Any shared-memory failure
    # flips the run back to pickled chunks (recorded in the report).
    use_shm = mode == "process" and policy.transport == "shm"
    posts: dict[int, _ShmPost] = {}
    report.transport = "pickle" if mode == "process" else "inline"

    # Progress map for timeout harvesting: workers post each finished
    # cell so a timed-out chunk only forfeits the unfinished ones.
    # Threads share the parent's memory (a plain dict suffices);
    # processes need a manager proxy, which is only worth its server
    # process when a timeout can actually strand results.
    manager = None
    progress = None
    if policy.timeout is not None:
        if mode == "process":
            try:
                manager = multiprocessing.Manager()
                progress = manager.dict()
            except OSError:  # pragma: no cover - no manager, no harvest
                manager = None
        else:
            progress = {}

    def _post(instance: ProblemInstance) -> _ShmPost | None:
        nonlocal use_shm
        post = posts.get(id(instance))
        if post is None:
            try:
                post = _ShmPost(instance)
            except (OSError, pickle.PicklingError):
                use_shm = False  # degrade this run to pickled chunks
                return None
            posts[id(instance)] = post
        return post

    try:
        with pool_cls(max_workers=min(workers, len(chunks))) as pool:

            def submit_wave() -> None:
                # Lazy submission: keep at most `workers` chunks in
                # flight so a circuit opened by an earlier result
                # short-circuits later cells *before* they ever reach
                # the pool.
                nonlocal next_chunk
                while next_chunk < len(chunks) and len(in_flight) < workers:
                    start, chunk = chunks[next_chunk]
                    next_chunk += 1
                    live: list[tuple[int, CellSpec]] = []
                    for offset, spec in enumerate(chunk):
                        if breaker.is_open(spec.algorithm):
                            report.short_circuited += 1
                            outcomes[start + offset] = _finalize(
                                spec,
                                _CellError(
                                    "CircuitOpen",
                                    f"circuit open for {spec.algorithm!r};"
                                    " cell not submitted",
                                ),
                                attempts=0,
                                circuit_open=True,
                                breaker=breaker,
                                report=report,
                                telemetry=telemetry,
                            )
                        else:
                            live.append((start + offset, spec))
                    if live:
                        instance = live[0][1].instance
                        post = _post(instance) if use_shm else None
                        if post is not None:
                            report.transport = "shm"
                        payload = _ChunkSpec(
                            instance=None if post is not None else instance,
                            backend=policy.measure_backend,
                            cells=tuple(
                                _chunk_cell(spec) for _, spec in live
                            ),
                            indices=tuple(index for index, _ in live),
                            shm_name=(
                                post.name if post is not None else None
                            ),
                            shm_size=post.size if post is not None else 0,
                            progress=progress,
                            compute_backend=report.compute_backend,
                        )
                        in_flight.append(
                            (
                                pool.submit(
                                    _guarded_execute_chunk, payload
                                ),
                                live,
                            )
                        )

            submit_wave()
            while in_flight:
                future, live = in_flight.popleft()
                values = _await_value(
                    future, policy, report, telemetry,
                    f"chunk of {len(live)} cell(s)",
                )
                if isinstance(values, _CellError):
                    # The chunk timed out; harvest the cells its worker
                    # had already finished — only the unfinished rest
                    # share the failure (and its retry budget below).
                    finished: dict = {}
                    if progress is not None:
                        try:
                            finished = dict(progress.copy())
                        except (OSError, EOFError):  # pragma: no cover
                            finished = {}
                    timeout_error = values
                    values = [
                        finished.get(index, timeout_error)
                        for index, _ in live
                    ]
                    salvaged = sum(
                        1 for value in values
                        if value is not timeout_error
                    )
                    report.harvested += salvaged
                    _note(telemetry, "executor.harvested", salvaged)
                for (index, spec), value in zip(live, values):
                    # A circuit that opened while this chunk was in
                    # flight disables retries; its result is still
                    # accepted.
                    circuit_open = breaker.is_open(spec.algorithm)
                    attempts = 1
                    while True:
                        if isinstance(value, CellResult):
                            breaker.record_success(spec.algorithm)
                            outcomes[index] = replace(
                                value, attempts=attempts
                            )
                            break
                        if circuit_open or attempts > policy.retries:
                            outcomes[index] = _finalize(
                                spec, value, attempts, circuit_open,
                                breaker, report, telemetry,
                            )
                            break
                        report.retries += 1
                        _note(telemetry, "executor.retries")
                        _backoff_sleep(policy, attempts)
                        retry = pool.submit(
                            _guarded_execute,
                            spec,
                            policy.measure_backend,
                            report.compute_backend,
                        )
                        value = _await_value(
                            retry, policy, report, telemetry, "cell"
                        )
                        attempts += 1
                submit_wave()
    finally:
        for post in posts.values():
            post.close()
        if manager is not None:
            manager.shutdown()
    report.breaker_trips = breaker.trips
    _note(telemetry, "executor.breaker_trips", breaker.trips)
    return outcomes


@dataclass(frozen=True)
class TaskFailure:
    """A :func:`run_tasks` payload that produced no result.

    Attributes:
        index: Position of the payload in the submitted sequence.
        error_type: Exception class name (or ``"TimeoutError"``).
        message: The exception message.
        attempts: Executions burnt on this payload.
    """

    index: int
    error_type: str
    message: str
    attempts: int

    def as_dict(self) -> dict:
        return {
            "index": self.index,
            "error_type": self.error_type,
            "message": self.message,
            "attempts": self.attempts,
        }


def _guarded_call(fn, payload) -> object:
    """Task worker entry point: exceptions become picklable values."""
    try:
        return fn(payload)
    except Exception as error:  # noqa: BLE001 - the guard is the point
        return _CellError(
            error_type=type(error).__name__,
            message=str(error),
            trace=traceback.format_exc(limit=8),
        )


def _run_tasks_serial(
    fn,
    payloads: list,
    policy: ExecutionPolicy,
    report: ExecutionReport,
    telemetry,
) -> list:
    outcomes: list = []
    for index, payload in enumerate(payloads):
        attempts = 0
        while True:
            attempts += 1
            value = _guarded_call(fn, payload)
            if not isinstance(value, _CellError):
                outcomes.append(value)
                break
            if attempts > policy.retries:
                report.cell_failures += 1
                _note(telemetry, "executor.cell_failures")
                outcomes.append(
                    TaskFailure(
                        index=index,
                        error_type=value.error_type,
                        message=value.message,
                        attempts=attempts,
                    )
                )
                break
            report.retries += 1
            _note(telemetry, "executor.retries")
            _backoff_sleep(policy, attempts)
    return outcomes


def _drain_task_futures(
    pool,
    fn,
    payloads: list,
    policy: ExecutionPolicy,
    report: ExecutionReport,
    telemetry,
) -> list:
    """Submit every payload to ``pool`` and harvest results in order."""
    outcomes: list = [None] * len(payloads)
    futures = [
        pool.submit(_guarded_call, fn, payload) for payload in payloads
    ]
    for index, future in enumerate(futures):
        value = _await_value(
            future, policy, report, telemetry, f"task {index}"
        )
        attempts = 1
        while (
            isinstance(value, _CellError)
            and attempts <= policy.retries
        ):
            report.retries += 1
            _note(telemetry, "executor.retries")
            _backoff_sleep(policy, attempts)
            retry = pool.submit(_guarded_call, fn, payloads[index])
            value = _await_value(
                retry, policy, report, telemetry, f"task {index}"
            )
            attempts += 1
        if isinstance(value, _CellError):
            report.cell_failures += 1
            _note(telemetry, "executor.cell_failures")
            outcomes[index] = TaskFailure(
                index=index,
                error_type=value.error_type,
                message=value.message,
                attempts=attempts,
            )
        else:
            outcomes[index] = value
    return outcomes


def _run_tasks_pool(
    fn,
    payloads: list,
    workers: int,
    mode: str,
    policy: ExecutionPolicy,
    report: ExecutionReport,
    telemetry,
) -> list:
    pool_cls = ProcessPoolExecutor if mode == "process" else ThreadPoolExecutor
    with pool_cls(max_workers=min(workers, len(payloads))) as pool:
        return _drain_task_futures(
            pool, fn, payloads, policy, report, telemetry
        )


class TaskPool:
    """A persistent :func:`run_tasks` executor pool.

    :func:`run_tasks` builds and tears down its worker pool per call;
    callers that fan out repeatedly over the same task family (the
    federation's warm shard pool, bench repetitions) instead hold one
    ``TaskPool`` so workers — and whatever warm per-process state they
    have accumulated (attached shared-memory posts, per-shard engines
    and their program caches) — survive across calls.  Dispatch shares
    the :func:`run_tasks` hardening verbatim: worker exceptions come
    back as :class:`TaskFailure` values in payload order, retries follow
    :attr:`ExecutionPolicy.retries` with exponential backoff, waits
    honour :attr:`ExecutionPolicy.timeout`, and pool-infrastructure
    failures rebuild the pool once, then fall back to a serial rerun of
    the batch (the report records the fallback).  Results are
    bit-identical to :func:`run_tasks` for pure ``fn``.

    Usable as a context manager; :meth:`close` shuts the workers down.
    """

    def __init__(
        self,
        workers: int,
        mode: str = "process",
        *,
        policy: ExecutionPolicy | None = None,
    ) -> None:
        if mode not in EXECUTOR_MODES:
            raise ReproError(
                f"unknown executor mode {mode!r}; choose from "
                f"{', '.join(EXECUTOR_MODES)}"
            )
        if workers < 1:
            raise ReproError(f"workers must be >= 1, got {workers}")
        self.workers = int(workers)
        self.mode = mode
        self.policy = policy or ExecutionPolicy()
        self._pool = None
        self._closed = False

    def _ensure_pool(self):
        if self._pool is None:
            pool_cls = (
                ProcessPoolExecutor
                if self.mode == "process"
                else ThreadPoolExecutor
            )
            self._pool = pool_cls(max_workers=self.workers)
        return self._pool

    def _discard_pool(self) -> None:
        if self._pool is not None:
            try:
                self._pool.shutdown(wait=False, cancel_futures=True)
            except Exception:  # pragma: no cover - teardown best effort
                pass
            self._pool = None

    def run(
        self,
        fn,
        payloads,
        *,
        policy: ExecutionPolicy | None = None,
        telemetry=None,
    ) -> tuple[list, ExecutionReport]:
        """Fan ``fn`` across ``payloads`` on the persistent pool.

        Same contract and return shape as :func:`run_tasks`; serial
        mode (or a single payload) bypasses the pool entirely.
        """
        if self._closed:
            raise ReproError("TaskPool is closed")
        policy = policy or self.policy
        compute_backend = resolve_backend(policy.compute_backend)
        payloads = list(payloads)
        previous_backend = active_backend()
        set_backend(compute_backend)
        try:
            if (
                self.mode == "serial"
                or self.workers <= 1
                or len(payloads) <= 1
            ):
                report = ExecutionReport(
                    mode="serial",
                    requested_mode=self.mode,
                    compute_backend=compute_backend,
                )
                return (
                    _run_tasks_serial(
                        fn, payloads, policy, report, telemetry
                    ),
                    report,
                )
            report = ExecutionReport(
                mode=self.mode,
                requested_mode=self.mode,
                transport="pickle" if self.mode == "process" else "inline",
                compute_backend=compute_backend,
            )
            for attempt in range(2):
                try:
                    return (
                        _drain_task_futures(
                            self._ensure_pool(),
                            fn,
                            payloads,
                            policy,
                            report,
                            telemetry,
                        ),
                        report,
                    )
                except (
                    pickle.PicklingError,
                    AttributeError,
                    TypeError,
                    BrokenExecutor,
                    OSError,
                    RuntimeError,
                ):
                    # A broken pool is rebuilt once (workers may have
                    # been killed); a second infrastructure failure
                    # falls through to the serial rerun.
                    self._discard_pool()
                    if attempt == 1:
                        break
            report = ExecutionReport(
                mode="serial",
                requested_mode=self.mode,
                fallback=True,
                compute_backend=compute_backend,
            )
            return (
                _run_tasks_serial(fn, payloads, policy, report, telemetry),
                report,
            )
        finally:
            set_backend(previous_backend)

    def close(self) -> None:
        """Shut the workers down; the pool refuses further runs."""
        self._discard_pool()
        self._closed = True

    def __enter__(self) -> "TaskPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def run_tasks(
    fn,
    payloads,
    *,
    workers: int = 1,
    mode: str = "serial",
    policy: ExecutionPolicy | None = None,
    telemetry=None,
) -> tuple[list, ExecutionReport]:
    """Fan a pure function across payloads on the sweep-cell transport.

    The generic sibling of :func:`run_cells` — the federation layer
    uses it to replay station shards in parallel — sharing the same
    hardening: worker exceptions cross the pool boundary as values and
    come back as structured :class:`TaskFailure` entries (in payload
    order), retries follow :attr:`ExecutionPolicy.retries` with
    exponential backoff, per-future waits honour
    :attr:`ExecutionPolicy.timeout`, and pool-infrastructure failures
    (unpicklable ``fn``/payloads, fork limits) fall back to a serial
    rerun of the full batch.  Results are bit-identical across modes
    whenever ``fn`` is pure.

    Args:
        fn: A picklable pure function of one payload.
        payloads: The inputs, in the order results must come back.
        workers: Pool width; ``<= 1`` runs serially.
        mode: ``"serial"`` (default), ``"thread"``, or ``"process"``.
        policy: Hardening knobs; chunking/measure-backend fields are
            ignored (tasks ship one per future).
        telemetry: Optional counter sink (``executor.*`` names).

    Returns:
        ``(outcomes, report)`` — outcomes mix ``fn`` return values and
        :class:`TaskFailure` entries in payload order.
    """
    if mode not in EXECUTOR_MODES:
        raise ReproError(
            f"unknown executor mode {mode!r}; choose from "
            f"{', '.join(EXECUTOR_MODES)}"
        )
    policy = policy or ExecutionPolicy()
    compute_backend = resolve_backend(policy.compute_backend)
    payloads = list(payloads)
    previous_backend = active_backend()
    set_backend(compute_backend)
    try:
        if mode == "serial" or workers <= 1 or len(payloads) <= 1:
            report = ExecutionReport(
                mode="serial",
                requested_mode=mode,
                compute_backend=compute_backend,
            )
            return (
                _run_tasks_serial(fn, payloads, policy, report, telemetry),
                report,
            )
        report = ExecutionReport(
            mode=mode,
            requested_mode=mode,
            transport="pickle" if mode == "process" else "inline",
            compute_backend=compute_backend,
        )
        try:
            return (
                _run_tasks_pool(
                    fn, payloads, workers, mode, policy, report, telemetry
                ),
                report,
            )
        except (
            pickle.PicklingError,
            AttributeError,
            TypeError,
            BrokenExecutor,
            OSError,
            RuntimeError,
        ):
            # Same contract as run_cells: only pool infrastructure
            # triggers the fallback; task-level exceptions are already
            # values.
            report = ExecutionReport(
                mode="serial",
                requested_mode=mode,
                fallback=True,
                compute_backend=compute_backend,
            )
            return (
                _run_tasks_serial(fn, payloads, policy, report, telemetry),
                report,
            )
    finally:
        set_backend(previous_backend)


def run_cells(
    specs: list[CellSpec],
    workers: int = 1,
    mode: str = "process",
    policy: ExecutionPolicy | None = None,
    telemetry=None,
) -> tuple[list[CellResult | CellFailure], ExecutionReport]:
    """Execute every cell, preserving spec order in the results.

    Args:
        specs: The grid, in the order results must come back.
        workers: Pool width; ``<= 1`` runs serially.
        mode: ``"process"`` (default), ``"thread"``, or ``"serial"``.
        policy: Hardening knobs (timeout / retries / breaker); defaults
            to :class:`ExecutionPolicy`'s defaults.
        telemetry: Optional object with an ``incr(name, amount)`` method
            (the engine's :class:`~repro.engine.telemetry.Telemetry`);
            receives ``executor.retries`` / ``executor.cell_failures`` /
            ``executor.breaker_trips`` / ``executor.timeouts`` counters.

    Returns:
        ``(outcomes, report)`` — outcomes mix :class:`CellResult` and
        :class:`CellFailure` in spec order; the report carries the mode
        actually used plus retry/failure/breaker accounting.

    Raises:
        ReproError: For unknown modes.  Cell-level exceptions (a raising
            scheduler, a measurement error) never propagate — they come
            back as :class:`CellFailure` entries.  Only
            pool-infrastructure failures (unpicklable specs, broken
            pools, fork limits) trigger the silent serial fallback,
            which reruns the full grid.
    """
    if mode not in EXECUTOR_MODES:
        raise ReproError(
            f"unknown executor mode {mode!r}; choose from "
            f"{', '.join(EXECUTOR_MODES)}"
        )
    policy = policy or ExecutionPolicy()
    compute_backend = resolve_backend(policy.compute_backend)
    # The kernels dispatch on the process-wide active backend; honour
    # the policy for this run and restore afterwards (workers apply the
    # same resolution per process via the chunk payload).
    previous_backend = active_backend()
    set_backend(compute_backend)
    try:
        if mode == "serial" or workers <= 1 or len(specs) <= 1:
            report = ExecutionReport(
                mode="serial",
                requested_mode=mode,
                chunk_size=policy.chunk_size,
                measure_backend=policy.measure_backend,
                compute_backend=compute_backend,
            )
            return _run_serial(specs, policy, report, telemetry), report
        report = ExecutionReport(
            mode=mode,
            requested_mode=mode,
            chunk_size=policy.chunk_size,
            measure_backend=policy.measure_backend,
            compute_backend=compute_backend,
        )
        try:
            return (
                _run_pool(specs, workers, mode, policy, report, telemetry),
                report,
            )
        except (
            pickle.PicklingError,
            AttributeError,
            TypeError,
            BrokenExecutor,
            OSError,
            RuntimeError,
        ):
            # Pool infrastructure failed (unpicklable scheduler, fork
            # limits, missing multiprocessing support); the cells
            # themselves are pure, so rerun the full grid serially with
            # fresh accounting.
            report = ExecutionReport(
                mode="serial",
                requested_mode=mode,
                fallback=True,
                chunk_size=policy.chunk_size,
                measure_backend=policy.measure_backend,
                compute_backend=compute_backend,
            )
            return _run_serial(specs, policy, report, telemetry), report
    finally:
        set_backend(previous_backend)
