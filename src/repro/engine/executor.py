"""Sweep cell execution — serial, threaded, or across a process pool.

A sweep is a grid of independent (scheduler, channel-count) *cells*;
each cell schedules (unless the engine's cache already holds the
program) and then Monte-Carlo measures the result.  Cells carry their
own derived seeds, so the outcome of a cell is a pure function of its
spec — which is what makes fanning them across a
:mod:`concurrent.futures` pool safe: results are collected back in
submission order and are bit-identical to a serial run.

The process pool is the default for ``workers > 1`` (scheduling and
replay are CPU-bound pure Python; threads only help on the margins),
with automatic serial fallback when the pool cannot be built or the
cell specs cannot be pickled (e.g. a scheduler registered as a lambda).

Execution is *hardened*: a raising scheduler never poisons the rest of
the grid.  Cell-level exceptions cross the pool boundary as values (the
worker wraps them), so the parent can distinguish them from pool
infrastructure failures; a failing cell is retried with exponential
backoff up to :attr:`ExecutionPolicy.retries` times, a per-cell timeout
bounds how long the parent waits in pool modes, and a per-algorithm
circuit breaker stops burning attempts on a scheduler that keeps
crashing — subsequent cells of that algorithm short-circuit to a
structured :class:`CellFailure` instead of executing.  Failed cells come
back as :class:`CellFailure` entries in the result list, in grid order,
alongside the successful :class:`CellResult` entries.
"""

from __future__ import annotations

import pickle
import time
import traceback
from concurrent.futures import (
    BrokenExecutor,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from concurrent.futures import TimeoutError as FuturesTimeoutError
from dataclasses import dataclass, field, replace

from repro.core.errors import ReproError
from repro.core.pages import ProblemInstance
from repro.engine.cache import CachedSchedule
from repro.engine.registry import Scheduler
from repro.sim.clients import measure_program

__all__ = [
    "SweepPoint",
    "default_channel_points",
    "CellSpec",
    "CellResult",
    "CellFailure",
    "ExecutionPolicy",
    "ExecutionReport",
    "run_cells",
    "EXECUTOR_MODES",
]

EXECUTOR_MODES = ("serial", "thread", "process")


@dataclass(frozen=True)
class SweepPoint:
    """One measured (algorithm, channel-count) cell of a sweep.

    Attributes:
        algorithm: Registry name of the scheduler.
        channels: ``N_real`` given to it.
        analytic_delay: Exact expected AvgD of the generated program.
        simulated_delay: Monte-Carlo AvgD (paper methodology).
        miss_ratio: Fraction of simulated requests past their deadline.
        cycle_length: Major-cycle length of the generated program.
        elapsed_seconds: Wall time to schedule (the OPT-is-slow point).
            On an engine cache hit this replays the originally measured
            time, so repeated sweeps stay bit-identical.
    """

    algorithm: str
    channels: int
    analytic_delay: float
    simulated_delay: float
    miss_ratio: float
    cycle_length: int
    elapsed_seconds: float


def default_channel_points(n_min: int, max_points: int = 12) -> list[int]:
    """Channel counts to sweep: 1 .. n_min, geometrically thinned.

    Small counts are where the curves move (the paper's "1/5 of the
    minimum" observation), so points are dense at the low end —
    geometric spacing from 1 to ``n_min`` with both endpoints included.
    """
    if n_min < 1:
        raise ReproError(f"n_min must be >= 1, got {n_min}")
    if n_min <= max_points:
        return list(range(1, n_min + 1))
    points = {1, n_min}
    factor = n_min ** (1.0 / (max_points - 1))
    value = 1.0
    while len(points) < max_points:
        value *= factor
        candidate = min(n_min, max(1, round(value)))
        points.add(candidate)
        if candidate >= n_min:
            break
    return sorted(points)


@dataclass(frozen=True)
class CellSpec:
    """Everything one sweep cell needs, resolved up front in the parent.

    ``seed`` is the cell's fully derived RNG seed (the sweep-level
    formula lives in the facade), and ``cached`` carries a cache hit so
    workers skip scheduling entirely.
    """

    algorithm: str
    scheduler: Scheduler
    channels: int
    instance: ProblemInstance
    num_requests: int
    seed: int
    cached: CachedSchedule | None = None


@dataclass(frozen=True)
class CellResult:
    """One executed cell: the sweep point plus cache-insertion payload.

    ``schedule`` is populated only for freshly computed cells — cache
    hits return ``None`` there so nothing is pickled back needlessly.
    ``attempts`` counts executions including retries (1 = first try).
    """

    point: SweepPoint
    schedule: object | None
    elapsed_seconds: float
    attempts: int = 1


@dataclass(frozen=True)
class CellFailure:
    """A cell that produced no result, as structured data.

    Attributes:
        algorithm: Registry name of the scheduler that failed.
        channels: The cell's channel count.
        error_type: Exception class name (or ``"TimeoutError"``).
        message: The exception message (first line of context).
        attempts: Executions burnt on this cell (0 when the circuit
            breaker skipped it entirely).
        circuit_open: True when the per-algorithm breaker suppressed
            execution or retries for this cell.
    """

    algorithm: str
    channels: int
    error_type: str
    message: str
    attempts: int
    circuit_open: bool = False

    def as_dict(self) -> dict:
        return {
            "algorithm": self.algorithm,
            "channels": self.channels,
            "error_type": self.error_type,
            "message": self.message,
            "attempts": self.attempts,
            "circuit_open": self.circuit_open,
        }


@dataclass(frozen=True)
class ExecutionPolicy:
    """Hardening knobs for a cell grid run.

    Attributes:
        timeout: Per-cell wait bound in seconds for pool modes (``None``
            = wait forever).  Serial execution cannot be preempted, so
            the timeout is ignored there.  A timed-out worker may still
            be running; its result is simply no longer awaited.
        retries: Extra attempts after a failed first execution.
        backoff: Base of the exponential backoff sleep between attempts
            (``backoff * 2**(attempt-1)`` seconds).
        breaker_threshold: Consecutive final failures of one algorithm
            that open its circuit; further cells of that algorithm are
            failed structurally instead of executed/retried.  ``0``
            disables the breaker.
    """

    timeout: float | None = None
    retries: int = 1
    backoff: float = 0.05
    breaker_threshold: int = 3

    def __post_init__(self) -> None:
        if self.timeout is not None and self.timeout <= 0:
            raise ReproError(
                f"timeout must be positive or None, got {self.timeout}"
            )
        if self.retries < 0:
            raise ReproError(f"retries must be >= 0, got {self.retries}")
        if self.backoff < 0:
            raise ReproError(f"backoff must be >= 0, got {self.backoff}")
        if self.breaker_threshold < 0:
            raise ReproError(
                f"breaker_threshold must be >= 0, got "
                f"{self.breaker_threshold}"
            )


@dataclass
class ExecutionReport:
    """Accounting of one :func:`run_cells` call.

    ``as_dict`` is the manifest's ``executor`` block (minus ``workers``,
    which the facade adds).
    """

    mode: str
    requested_mode: str
    fallback: bool = False
    retries: int = 0
    cell_failures: int = 0
    breaker_trips: int = 0
    timeouts: int = 0

    def as_dict(self) -> dict:
        return {
            "mode": self.mode,
            "fallback": self.fallback,
            "retries": self.retries,
            "cell_failures": self.cell_failures,
            "breaker_trips": self.breaker_trips,
            "timeouts": self.timeouts,
        }


@dataclass(frozen=True)
class _CellError:
    """A cell exception shipped across the pool boundary as a value.

    Keeping scheduler/measurement exceptions as *values* is what lets
    the parent tell them apart from pool infrastructure failures (which
    raise out of ``future.result`` and trigger the serial fallback).
    """

    error_type: str
    message: str
    trace: str = ""


def execute_cell(spec: CellSpec) -> CellResult:
    """Run one cell to completion (schedule unless cached, then measure)."""
    if spec.cached is not None:
        schedule = spec.cached.schedule
        elapsed = spec.cached.elapsed_seconds
        fresh = False
    else:
        started = time.perf_counter()
        schedule = spec.scheduler(spec.instance, spec.channels)
        elapsed = time.perf_counter() - started
        fresh = True
    measurement = measure_program(
        schedule.program,
        spec.instance,
        num_requests=spec.num_requests,
        seed=spec.seed,
    )
    point = SweepPoint(
        algorithm=spec.algorithm,
        channels=spec.channels,
        analytic_delay=schedule.average_delay,
        simulated_delay=measurement.average_delay,
        miss_ratio=measurement.miss_ratio,
        cycle_length=schedule.program.cycle_length,
        elapsed_seconds=elapsed,
    )
    return CellResult(
        point=point,
        schedule=schedule if fresh else None,
        elapsed_seconds=elapsed,
    )


def _guarded_execute(spec: CellSpec) -> CellResult | _CellError:
    """Worker entry point: cell exceptions become picklable values."""
    try:
        return execute_cell(spec)
    except Exception as error:  # noqa: BLE001 - the guard is the point
        return _CellError(
            error_type=type(error).__name__,
            message=str(error),
            trace=traceback.format_exc(limit=8),
        )


class _CircuitBreaker:
    """Consecutive-failure breaker, one circuit per algorithm name."""

    def __init__(self, threshold: int) -> None:
        self.threshold = threshold
        self._consecutive: dict[str, int] = {}
        self._open: set[str] = set()
        self.trips = 0

    def is_open(self, algorithm: str) -> bool:
        return algorithm in self._open

    def record_success(self, algorithm: str) -> None:
        self._consecutive[algorithm] = 0

    def record_failure(self, algorithm: str) -> None:
        if not self.threshold or algorithm in self._open:
            return
        count = self._consecutive.get(algorithm, 0) + 1
        self._consecutive[algorithm] = count
        if count >= self.threshold:
            self._open.add(algorithm)
            self.trips += 1


def _backoff_sleep(policy: ExecutionPolicy, attempt: int) -> None:
    if policy.backoff > 0:
        time.sleep(policy.backoff * 2 ** (attempt - 1))


def _note(telemetry, name: str, amount: int = 1) -> None:
    if telemetry is not None and amount:
        telemetry.incr(name, amount)


def _finalize(
    spec: CellSpec,
    error: _CellError,
    attempts: int,
    circuit_open: bool,
    breaker: _CircuitBreaker,
    report: ExecutionReport,
    telemetry,
) -> CellFailure:
    """Record a cell's final failure and build its structured result."""
    report.cell_failures += 1
    _note(telemetry, "executor.cell_failures")
    breaker_was_open = breaker.is_open(spec.algorithm)
    breaker.record_failure(spec.algorithm)
    return CellFailure(
        algorithm=spec.algorithm,
        channels=spec.channels,
        error_type=error.error_type,
        message=error.message,
        attempts=attempts,
        circuit_open=circuit_open or breaker_was_open,
    )


def _run_serial(
    specs: list[CellSpec],
    policy: ExecutionPolicy,
    report: ExecutionReport,
    telemetry,
) -> list[CellResult | CellFailure]:
    breaker = _CircuitBreaker(policy.breaker_threshold)
    outcomes: list[CellResult | CellFailure] = []
    for spec in specs:
        if breaker.is_open(spec.algorithm):
            outcomes.append(
                _finalize(
                    spec,
                    _CellError(
                        "CircuitOpen",
                        f"circuit open for {spec.algorithm!r}; cell skipped",
                    ),
                    attempts=0,
                    circuit_open=True,
                    breaker=breaker,
                    report=report,
                    telemetry=telemetry,
                )
            )
            continue
        attempts = 0
        while True:
            attempts += 1
            value = _guarded_execute(spec)
            if isinstance(value, CellResult):
                breaker.record_success(spec.algorithm)
                outcomes.append(replace(value, attempts=attempts))
                break
            if attempts > policy.retries:
                outcomes.append(
                    _finalize(
                        spec, value, attempts, False,
                        breaker, report, telemetry,
                    )
                )
                break
            report.retries += 1
            _note(telemetry, "executor.retries")
            _backoff_sleep(policy, attempts)
    report.breaker_trips = breaker.trips
    _note(telemetry, "executor.breaker_trips", breaker.trips)
    return outcomes


def _run_pool(
    specs: list[CellSpec],
    workers: int,
    mode: str,
    policy: ExecutionPolicy,
    report: ExecutionReport,
    telemetry,
) -> list[CellResult | CellFailure]:
    pool_cls = ProcessPoolExecutor if mode == "process" else ThreadPoolExecutor
    breaker = _CircuitBreaker(policy.breaker_threshold)
    outcomes: list[CellResult | CellFailure] = []
    with pool_cls(max_workers=min(workers, len(specs))) as pool:
        futures: list[Future] = [
            pool.submit(_guarded_execute, spec) for spec in specs
        ]
        for spec, future in zip(specs, futures):
            # A circuit that opened on an earlier cell disables retries
            # for this one; its future was already submitted, so a
            # result that arrives anyway is still accepted.
            circuit_open = breaker.is_open(spec.algorithm)
            attempts = 0
            while True:
                attempts += 1
                try:
                    value = future.result(timeout=policy.timeout)
                except FuturesTimeoutError:
                    future.cancel()
                    report.timeouts += 1
                    _note(telemetry, "executor.timeouts")
                    value = _CellError(
                        "TimeoutError",
                        f"cell exceeded the {policy.timeout}s budget",
                    )
                if isinstance(value, CellResult):
                    breaker.record_success(spec.algorithm)
                    outcomes.append(replace(value, attempts=attempts))
                    break
                if circuit_open or attempts > policy.retries:
                    outcomes.append(
                        _finalize(
                            spec, value, attempts, circuit_open,
                            breaker, report, telemetry,
                        )
                    )
                    break
                report.retries += 1
                _note(telemetry, "executor.retries")
                _backoff_sleep(policy, attempts)
                future = pool.submit(_guarded_execute, spec)
    report.breaker_trips = breaker.trips
    _note(telemetry, "executor.breaker_trips", breaker.trips)
    return outcomes


def run_cells(
    specs: list[CellSpec],
    workers: int = 1,
    mode: str = "process",
    policy: ExecutionPolicy | None = None,
    telemetry=None,
) -> tuple[list[CellResult | CellFailure], ExecutionReport]:
    """Execute every cell, preserving spec order in the results.

    Args:
        specs: The grid, in the order results must come back.
        workers: Pool width; ``<= 1`` runs serially.
        mode: ``"process"`` (default), ``"thread"``, or ``"serial"``.
        policy: Hardening knobs (timeout / retries / breaker); defaults
            to :class:`ExecutionPolicy`'s defaults.
        telemetry: Optional object with an ``incr(name, amount)`` method
            (the engine's :class:`~repro.engine.telemetry.Telemetry`);
            receives ``executor.retries`` / ``executor.cell_failures`` /
            ``executor.breaker_trips`` / ``executor.timeouts`` counters.

    Returns:
        ``(outcomes, report)`` — outcomes mix :class:`CellResult` and
        :class:`CellFailure` in spec order; the report carries the mode
        actually used plus retry/failure/breaker accounting.

    Raises:
        ReproError: For unknown modes.  Cell-level exceptions (a raising
            scheduler, a measurement error) never propagate — they come
            back as :class:`CellFailure` entries.  Only
            pool-infrastructure failures (unpicklable specs, broken
            pools, fork limits) trigger the silent serial fallback,
            which reruns the full grid.
    """
    if mode not in EXECUTOR_MODES:
        raise ReproError(
            f"unknown executor mode {mode!r}; choose from "
            f"{', '.join(EXECUTOR_MODES)}"
        )
    policy = policy or ExecutionPolicy()
    if mode == "serial" or workers <= 1 or len(specs) <= 1:
        report = ExecutionReport(mode="serial", requested_mode=mode)
        return _run_serial(specs, policy, report, telemetry), report
    report = ExecutionReport(mode=mode, requested_mode=mode)
    try:
        return (
            _run_pool(specs, workers, mode, policy, report, telemetry),
            report,
        )
    except (
        pickle.PicklingError,
        AttributeError,
        TypeError,
        BrokenExecutor,
        OSError,
        RuntimeError,
    ):
        # Pool infrastructure failed (unpicklable scheduler, fork limits,
        # missing multiprocessing support); the cells themselves are pure,
        # so rerun the full grid serially with fresh accounting.
        report = ExecutionReport(
            mode="serial", requested_mode=mode, fallback=True
        )
        return _run_serial(specs, policy, report, telemetry), report
