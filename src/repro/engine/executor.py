"""Sweep cell execution — serial, threaded, or across a process pool.

A sweep is a grid of independent (scheduler, channel-count) *cells*;
each cell schedules (unless the engine's cache already holds the
program) and then Monte-Carlo measures the result.  Cells carry their
own derived seeds, so the outcome of a cell is a pure function of its
spec — which is what makes fanning them across a
:mod:`concurrent.futures` pool safe: results are collected back in
submission order and are bit-identical to a serial run.

The process pool is the default for ``workers > 1`` (scheduling and
replay are CPU-bound pure Python; threads only help on the margins),
with automatic serial fallback when the pool cannot be built or the
cell specs cannot be pickled (e.g. a scheduler registered as a lambda).
"""

from __future__ import annotations

import pickle
import time
from concurrent.futures import (
    BrokenExecutor,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from dataclasses import dataclass

from repro.core.errors import ReproError
from repro.core.pages import ProblemInstance
from repro.engine.cache import CachedSchedule
from repro.engine.registry import Scheduler
from repro.sim.clients import measure_program

__all__ = [
    "SweepPoint",
    "default_channel_points",
    "CellSpec",
    "CellResult",
    "run_cells",
    "EXECUTOR_MODES",
]

EXECUTOR_MODES = ("serial", "thread", "process")


@dataclass(frozen=True)
class SweepPoint:
    """One measured (algorithm, channel-count) cell of a sweep.

    Attributes:
        algorithm: Registry name of the scheduler.
        channels: ``N_real`` given to it.
        analytic_delay: Exact expected AvgD of the generated program.
        simulated_delay: Monte-Carlo AvgD (paper methodology).
        miss_ratio: Fraction of simulated requests past their deadline.
        cycle_length: Major-cycle length of the generated program.
        elapsed_seconds: Wall time to schedule (the OPT-is-slow point).
            On an engine cache hit this replays the originally measured
            time, so repeated sweeps stay bit-identical.
    """

    algorithm: str
    channels: int
    analytic_delay: float
    simulated_delay: float
    miss_ratio: float
    cycle_length: int
    elapsed_seconds: float


def default_channel_points(n_min: int, max_points: int = 12) -> list[int]:
    """Channel counts to sweep: 1 .. n_min, geometrically thinned.

    Small counts are where the curves move (the paper's "1/5 of the
    minimum" observation), so points are dense at the low end —
    geometric spacing from 1 to ``n_min`` with both endpoints included.
    """
    if n_min < 1:
        raise ReproError(f"n_min must be >= 1, got {n_min}")
    if n_min <= max_points:
        return list(range(1, n_min + 1))
    points = {1, n_min}
    factor = n_min ** (1.0 / (max_points - 1))
    value = 1.0
    while len(points) < max_points:
        value *= factor
        candidate = min(n_min, max(1, round(value)))
        points.add(candidate)
        if candidate >= n_min:
            break
    return sorted(points)


@dataclass(frozen=True)
class CellSpec:
    """Everything one sweep cell needs, resolved up front in the parent.

    ``seed`` is the cell's fully derived RNG seed (the sweep-level
    formula lives in the facade), and ``cached`` carries a cache hit so
    workers skip scheduling entirely.
    """

    algorithm: str
    scheduler: Scheduler
    channels: int
    instance: ProblemInstance
    num_requests: int
    seed: int
    cached: CachedSchedule | None = None


@dataclass(frozen=True)
class CellResult:
    """One executed cell: the sweep point plus cache-insertion payload.

    ``schedule`` is populated only for freshly computed cells — cache
    hits return ``None`` there so nothing is pickled back needlessly.
    """

    point: SweepPoint
    schedule: object | None
    elapsed_seconds: float


def execute_cell(spec: CellSpec) -> CellResult:
    """Run one cell to completion (schedule unless cached, then measure)."""
    if spec.cached is not None:
        schedule = spec.cached.schedule
        elapsed = spec.cached.elapsed_seconds
        fresh = False
    else:
        started = time.perf_counter()
        schedule = spec.scheduler(spec.instance, spec.channels)
        elapsed = time.perf_counter() - started
        fresh = True
    measurement = measure_program(
        schedule.program,
        spec.instance,
        num_requests=spec.num_requests,
        seed=spec.seed,
    )
    point = SweepPoint(
        algorithm=spec.algorithm,
        channels=spec.channels,
        analytic_delay=schedule.average_delay,
        simulated_delay=measurement.average_delay,
        miss_ratio=measurement.miss_ratio,
        cycle_length=schedule.program.cycle_length,
        elapsed_seconds=elapsed,
    )
    return CellResult(
        point=point,
        schedule=schedule if fresh else None,
        elapsed_seconds=elapsed,
    )


def _run_serial(specs: list[CellSpec]) -> list[CellResult]:
    return [execute_cell(spec) for spec in specs]


def run_cells(
    specs: list[CellSpec],
    workers: int = 1,
    mode: str = "process",
) -> tuple[list[CellResult], str]:
    """Execute every cell, preserving spec order in the results.

    Args:
        specs: The grid, in the order results must come back.
        workers: Pool width; ``<= 1`` runs serially.
        mode: ``"process"`` (default), ``"thread"``, or ``"serial"``.

    Returns:
        ``(results, effective_mode)`` — the mode actually used, which is
        ``"serial"`` whenever the pool path was skipped or fell back.

    Raises:
        ReproError: For unknown modes.  Scheduler/measurement errors
            propagate unchanged; only pool-infrastructure failures
            (unpicklable specs, broken pools, fork limits) trigger the
            silent serial fallback.
    """
    if mode not in EXECUTOR_MODES:
        raise ReproError(
            f"unknown executor mode {mode!r}; choose from "
            f"{', '.join(EXECUTOR_MODES)}"
        )
    if mode == "serial" or workers <= 1 or len(specs) <= 1:
        return _run_serial(specs), "serial"
    pool_cls = ProcessPoolExecutor if mode == "process" else ThreadPoolExecutor
    try:
        with pool_cls(max_workers=min(workers, len(specs))) as pool:
            futures: list[Future] = [
                pool.submit(execute_cell, spec) for spec in specs
            ]
            return [future.result() for future in futures], mode
    except (
        pickle.PicklingError,
        AttributeError,
        TypeError,
        BrokenExecutor,
        OSError,
        RuntimeError,
    ):
        # Pool infrastructure failed (unpicklable scheduler, fork limits,
        # missing multiprocessing support); the cells themselves are pure,
        # so rerun the full grid serially.
        return _run_serial(specs), "serial"
