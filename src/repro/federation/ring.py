"""Deterministic, group-aware consistent-hash ring for station shards.

The federation partitions a catalog across N station shards at the
granularity of *geometric-ladder groups*: every page whose
``expected_time`` is ``t`` belongs to group ``t``, and the ring maps the
whole group to one shard.  Pinning groups (rather than pages) is the
Lai-et-al-style placement-coordination rule — pages that share a
deadline share a cadence, and splitting them across stations would make
every station pay the group's cycle-length cost for a fraction of its
pages.  A group leaves its pinned shard only through explicit page-level
overrides (budget spill or drift rebalancing), which the router layers
on top of the ring; the ring itself never splits a group.

The ring is a pure function of ``(seed, replicas, shard ids)``: virtual
points come from SHA-256, not Python's salted ``hash()``, so the same
seed produces the same placement in every process — the property the
federation's byte-identical replay contract rests on.  With ``replicas``
virtual points per shard, :meth:`ShardRing.join` / :meth:`ShardRing.
leave` move only the expected ~``K/N`` of ``K`` groups (the classic
consistent-hashing bound, tested with hypothesis).
"""

from __future__ import annotations

import bisect
import hashlib
import json
from typing import Iterable, Mapping

from repro.core.errors import ReproError

__all__ = ["ShardRing", "partition_catalog"]


def _point(seed: int, label: str) -> int:
    """A stable 64-bit ring position for ``label`` under ``seed``."""
    digest = hashlib.sha256(f"{seed}:{label}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class ShardRing:
    """Consistent-hash ring mapping ladder groups to shard ids.

    Args:
        shards: Shard count (ids ``0..shards-1``) or an explicit
            iterable of shard ids.
        seed: Placement seed; the ring is a pure function of
            ``(seed, replicas, shard ids)``.
        replicas: Virtual points per shard.  More replicas smooth the
            group distribution and tighten the ~``K/N`` movement bound
            on join/leave, at O(replicas · shards) memory.
    """

    def __init__(
        self,
        shards: int | Iterable[int],
        *,
        seed: int = 0,
        replicas: int = 64,
    ) -> None:
        if replicas < 1:
            raise ReproError(f"replicas must be >= 1, got {replicas}")
        if isinstance(shards, int):
            if shards < 1:
                raise ReproError(f"shards must be >= 1, got {shards}")
            ids: tuple[int, ...] = tuple(range(shards))
        else:
            ids = tuple(int(s) for s in shards)
            if not ids:
                raise ReproError("ring needs at least one shard")
            if len(set(ids)) != len(ids):
                raise ReproError(f"duplicate shard ids in {ids}")
        self.seed = int(seed)
        self.replicas = int(replicas)
        self._shards: set[int] = set(ids)
        self._rebuild()

    def _rebuild(self) -> None:
        points: list[tuple[int, int]] = []
        for shard in sorted(self._shards):
            for replica in range(self.replicas):
                points.append(
                    (_point(self.seed, f"shard:{shard}:{replica}"), shard)
                )
        # Ties between distinct shards at the same point are broken by
        # shard id (the sort's second key) — deterministic either way.
        points.sort()
        self._points = [p for p, _ in points]
        self._owners = [s for _, s in points]
        # group -> shard lookups are memoised: the columnar router asks
        # for the same handful of ladder groups across millions of
        # listener routings, and each miss pays a SHA-256 digest.
        # Membership changes invalidate the whole cache.
        self._owner_cache: dict[int, int] = {}

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------

    @property
    def shards(self) -> tuple[int, ...]:
        """Current shard ids, ascending."""
        return tuple(sorted(self._shards))

    def join(self, shard: int) -> None:
        """Add a shard; only ~1/N of the groups re-home onto it."""
        if shard in self._shards:
            raise ReproError(f"shard {shard} is already on the ring")
        self._shards.add(int(shard))
        self._rebuild()

    def leave(self, shard: int) -> None:
        """Drop a shard; only its own groups re-home, onto survivors."""
        if shard not in self._shards:
            raise ReproError(f"shard {shard} is not on the ring")
        if len(self._shards) == 1:
            raise ReproError("cannot remove the last shard from the ring")
        self._shards.discard(shard)
        self._rebuild()

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------

    def owner(self, group: int) -> int:
        """The shard pinned to ladder group ``group`` (an expected time)."""
        group = int(group)
        cached = self._owner_cache.get(group)
        if cached is not None:
            return cached
        point = _point(self.seed, f"group:{group}")
        index = bisect.bisect_right(self._points, point)
        if index == len(self._points):
            index = 0
        shard = self._owners[index]
        self._owner_cache[group] = shard
        return shard

    def assignment(self, groups: Iterable[int]) -> dict[int, int]:
        """``group -> shard`` for every group, in one pass."""
        return {int(g): self.owner(int(g)) for g in groups}

    def fingerprint(self) -> str:
        """Content digest of the full virtual-point table.

        SHA-256 over the canonical JSON of ``(seed, replicas, points)``,
        truncated to 16 hex chars — byte-stable across processes and
        platforms, and sensitive to any membership or seed change.
        """
        doc = {
            "seed": self.seed,
            "replicas": self.replicas,
            "points": [
                [p, s] for p, s in zip(self._points, self._owners)
            ],
        }
        canonical = json.dumps(doc, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]

    def __repr__(self) -> str:
        return (
            f"ShardRing(shards={len(self._shards)}, seed={self.seed}, "
            f"replicas={self.replicas})"
        )


def partition_catalog(
    catalog: Mapping[int, int],
    ring: ShardRing,
    *,
    group_overrides: Mapping[int, int] | None = None,
    page_overrides: Mapping[int, int] | None = None,
) -> dict[int, dict[int, int]]:
    """Split a ``page_id -> expected_time`` catalog across the ring.

    Ownership is resolved page-level override first, then group-level
    override, then the ring — the same precedence the federation router
    uses — and every shard on the ring appears in the result, possibly
    with an empty mapping.
    """
    group_overrides = dict(group_overrides or {})
    page_overrides = dict(page_overrides or {})
    parts: dict[int, dict[int, int]] = {s: {} for s in ring.shards}
    for page_id, expected in catalog.items():
        shard = page_overrides.get(page_id)
        if shard is None:
            shard = group_overrides.get(expected)
        if shard is None:
            shard = ring.owner(expected)
        parts[shard][int(page_id)] = int(expected)
    return parts
