"""Federation-wide Theorem-3.1 admission control.

A federation of N station shards, each holding ``budget`` channels,
must enforce the paper's bound *globally*: a page insert that does not
fit its home shard is not simply rejected — the federation may *spill*
it to the least-loaded shard with headroom, queue it (one global FIFO,
not N local ones) until load drops anywhere, and only then reject.  The
:class:`GlobalAdmissionController` owns that decision and the shadow
state behind it: a per-shard ``page_id -> expected_time`` mirror plus a
per-shard expected-time histogram, so every verdict probes the exact
``ceil(sum_i P_i / t_i)`` requirement (the same arithmetic as
:meth:`repro.live.catalog.LiveCatalog.required_channels`) in
O(distinct deadlines) per event instead of O(pages).

Verdict semantics deliberately mirror the per-shard
:class:`~repro.live.admission.AdmissionController` — duplicate pages
reject, removals of unknown or last pages reject, over-budget retunes
reject — so a shard replaying its routed sub-trace with local admission
enabled agrees with the global decision; the federation adds only the
cross-shard verdicts (``spilled`` placement, the global queue).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from types import MappingProxyType
from typing import Mapping, Sequence

from repro.core.errors import SimulationError
from repro.core.intmath import ceil_div
from repro.live.mutations import MutationEvent

__all__ = [
    "GlobalAdmissionDecision",
    "GlobalAdmissionController",
    "required_channels_of",
]


def required_channels_of(histogram: Mapping[int, int]) -> int:
    """Theorem 3.1's bound from an ``expected_time -> page count`` histogram.

    Exact integer arithmetic over the distinct deadlines, matching
    :meth:`~repro.live.catalog.LiveCatalog.required_channels` on every
    catalog; an empty histogram needs zero channels.
    """
    if not histogram:
        return 0
    common = math.lcm(*histogram.keys())
    numerator = sum(
        (common // expected) * count
        for expected, count in histogram.items()
    )
    return ceil_div(numerator, common)


@dataclass(frozen=True, slots=True)
class GlobalAdmissionDecision:
    """One federation-level admission verdict.

    Attributes:
        time: Slot at which the decision was taken.
        kind: The mutation kind decided on, or ``queue_drain`` for a
            globally queued insert re-admitted after load dropped.
        page_id: The page concerned.
        verdict: ``admitted`` / ``queued`` / ``rejected``.
        shard: The shard the verdict places the page on (``None`` for
            queued/rejected verdicts).
        home: The shard the ring pinned the page's group to.
        required_channels: Theorem-3.1 requirement of the *deciding*
            shard's candidate catalog (the home shard's for rejections).
        budget: The per-shard channel budget judged against.
        reason: Machine-stable explanation; the per-shard vocabulary
            (``fits-budget`` / ``exceeds-budget`` / ``queue-full`` /
            ``duplicate-page`` / ``unknown-page`` / ``last-page``) plus
            the federation's ``spilled`` (admitted off-home).
    """

    time: float
    kind: str
    page_id: int
    verdict: str
    shard: int | None
    home: int | None
    required_channels: int
    budget: int
    reason: str

    def as_dict(self) -> dict:
        return {
            "time": self.time,
            "kind": self.kind,
            "page_id": self.page_id,
            "verdict": self.verdict,
            "shard": self.shard,
            "home": self.home,
            "required_channels": self.required_channels,
            "budget": self.budget,
            "reason": self.reason,
        }


class GlobalAdmissionController:
    """Per-shard headroom tracking plus one federation-wide FIFO queue.

    Args:
        initial: ``shard -> {page_id: expected_time}`` — the t=0
            partition; every shard must be present (possibly empty).
        budget: Per-shard channel budget the bound is judged against.
        queue_limit: Capacity of the *global* insert queue.
        enabled: When False every mutation is admitted at its home shard
            unconditionally (the control arm; pair it with per-shard
            services running with admission off).
    """

    def __init__(
        self,
        initial: Mapping[int, Mapping[int, int]],
        budget: int,
        *,
        queue_limit: int = 16,
        enabled: bool = True,
    ) -> None:
        if budget < 1:
            raise SimulationError(f"budget must be >= 1, got {budget}")
        if queue_limit < 0:
            raise SimulationError(
                f"queue_limit must be >= 0, got {queue_limit}"
            )
        if not initial:
            raise SimulationError("federation needs at least one shard")
        self.budget = int(budget)
        self.queue_limit = int(queue_limit)
        self.enabled = enabled
        self._pages: dict[int, dict[int, int]] = {}
        self._times: dict[int, dict[int, int]] = {}
        self._location: dict[int, int] = {}
        for shard, pages in sorted(initial.items()):
            self._pages[int(shard)] = {}
            self._times[int(shard)] = {}
            for page_id, expected in pages.items():
                self._apply_insert(int(shard), int(page_id), int(expected))
        # Queue entries remember the home shard computed at enqueue
        # time, so drains re-try the pinned placement first.
        self._queue: list[tuple[MutationEvent, int]] = []
        self.counters: dict[str, int] = {
            "admitted": 0,
            "queued": 0,
            "rejected": 0,
            "drained": 0,
            "spilled": 0,
        }

    # ------------------------------------------------------------------
    # Shadow state
    # ------------------------------------------------------------------

    @property
    def shards(self) -> tuple[int, ...]:
        return tuple(sorted(self._pages))

    def locate(self, page_id: int) -> int | None:
        """The shard currently holding ``page_id``, if any."""
        return self._location.get(page_id)

    @property
    def locations(self) -> Mapping[int, int]:
        """Read-only live view of the ``page_id -> shard`` shadow state.

        The columnar router rebuilds its page-location lookup table
        from this view after every catalog event instead of calling
        :meth:`locate` once per listener.
        """
        return MappingProxyType(self._location)

    def pages(self, shard: int) -> dict[int, int]:
        """Snapshot of one shard's ``page_id -> expected_time`` mirror."""
        return dict(self._pages[shard])

    def page_count(self, shard: int) -> int:
        return len(self._pages[shard])

    def channel_load(self, shard: int) -> float:
        """Fractional demand ``sum_i 1/t_i`` of one shard."""
        return sum(
            count / expected
            for expected, count in self._times[shard].items()
        )

    def required_channels(self, shard: int) -> int:
        return required_channels_of(self._times[shard])

    def _apply_insert(self, shard: int, page_id: int, expected: int) -> None:
        self._pages[shard][page_id] = expected
        times = self._times[shard]
        times[expected] = times.get(expected, 0) + 1
        self._location[page_id] = shard

    def _apply_remove(self, shard: int, page_id: int) -> None:
        expected = self._pages[shard].pop(page_id)
        times = self._times[shard]
        times[expected] -= 1
        if not times[expected]:
            del times[expected]
        del self._location[page_id]

    def move_page(self, page_id: int, source: int, target: int) -> None:
        """Re-home a page (the rebalancer's shadow-state update)."""
        if self._location.get(page_id) != source:
            raise SimulationError(
                f"page {page_id} is not on shard {source}"
            )
        expected = self._pages[source][page_id]
        self._apply_remove(source, page_id)
        self._apply_insert(target, page_id, expected)

    def required_with(self, shard: int, expected: int) -> int:
        """Theorem-3.1 requirement of ``shard`` plus one hypothetical page.

        The what-if probe behind every placement decision: the shard's
        current expected-time histogram with one more page of deadline
        ``expected``, priced without mutating any state.  Public because
        the drift rebalancer (see
        :meth:`repro.federation.service.FederatedBroadcastService`)
        asks the same question before moving a page — a move is only
        legal when the target stays within budget.
        """
        histogram = dict(self._times[shard])
        histogram[expected] = histogram.get(expected, 0) + 1
        return required_channels_of(histogram)

    def _required_retuned(
        self, shard: int, old: int, new: int
    ) -> int:
        histogram = dict(self._times[shard])
        histogram[old] -= 1
        if not histogram[old]:
            del histogram[old]
        histogram[new] = histogram.get(new, 0) + 1
        return required_channels_of(histogram)

    def _fit_shard(self, expected: int, home: int) -> int | None:
        """Home if it fits, else the least-loaded shard with headroom."""
        if self.required_with(home, expected) <= self.budget:
            return home
        candidates = sorted(
            (self.channel_load(shard), shard)
            for shard in self._pages
            if shard != home
        )
        for _, shard in candidates:
            if self.required_with(shard, expected) <= self.budget:
                return shard
        return None

    # ------------------------------------------------------------------
    # Verdicts
    # ------------------------------------------------------------------

    def _decision(
        self,
        event: MutationEvent,
        verdict: str,
        shard: int | None,
        home: int | None,
        required: int,
        reason: str,
        *,
        kind: str | None = None,
        time: float | None = None,
    ) -> GlobalAdmissionDecision:
        self.counters[verdict] += 1
        return GlobalAdmissionDecision(
            time=event.time if time is None else time,
            kind=event.kind if kind is None else kind,
            page_id=event.page_id,
            verdict=verdict,
            shard=shard,
            home=home,
            required_channels=required,
            budget=self.budget,
            reason=reason,
        )

    def decide_insert(
        self, event: MutationEvent, home: int
    ) -> GlobalAdmissionDecision:
        """Place an insert: home, spill, global queue, or reject."""
        if event.page_id in self._location:
            return self._decision(
                event, "rejected", None, home,
                self.required_channels(home), "duplicate-page",
            )
        expected = int(event.expected_time or 0)
        if not self.enabled:
            self._apply_insert(home, event.page_id, expected)
            return self._decision(
                event, "admitted", home, home,
                self.required_channels(home), "admission-disabled",
            )
        shard = self._fit_shard(expected, home)
        if shard is not None:
            required = self.required_with(shard, expected)
            self._apply_insert(shard, event.page_id, expected)
            if shard == home:
                return self._decision(
                    event, "admitted", shard, home, required, "fits-budget"
                )
            self.counters["spilled"] += 1
            return self._decision(
                event, "admitted", shard, home, required, "spilled"
            )
        required = self.required_with(home, expected)
        if len(self._queue) < self.queue_limit:
            self._queue.append((event, home))
            return self._decision(
                event, "queued", None, home, required, "exceeds-budget"
            )
        return self._decision(
            event, "rejected", None, home, required, "queue-full"
        )

    def decide_retune(self, event: MutationEvent) -> GlobalAdmissionDecision:
        """Retune in place on the owning shard; breaching retunes reject."""
        shard = self._location.get(event.page_id)
        if shard is None:
            return self._decision(
                event, "rejected", None, None, 0, "unknown-page"
            )
        old = self._pages[shard][event.page_id]
        new = int(event.expected_time or 0)
        required = self._required_retuned(shard, old, new)
        if not self.enabled:
            self._apply_remove(shard, event.page_id)
            self._apply_insert(shard, event.page_id, new)
            return self._decision(
                event, "admitted", shard, shard, required,
                "admission-disabled",
            )
        if required <= self.budget:
            self._apply_remove(shard, event.page_id)
            self._apply_insert(shard, event.page_id, new)
            return self._decision(
                event, "admitted", shard, shard, required, "fits-budget"
            )
        return self._decision(
            event, "rejected", shard, shard, required, "exceeds-budget"
        )

    def decide_remove(self, event: MutationEvent) -> GlobalAdmissionDecision:
        """Remove from the owning shard; unknown/last-page removals reject."""
        shard = self._location.get(event.page_id)
        if shard is None:
            return self._decision(
                event, "rejected", None, None, 0, "unknown-page"
            )
        if len(self._pages[shard]) == 1:
            return self._decision(
                event, "rejected", shard, shard,
                self.required_channels(shard), "last-page",
            )
        self._apply_remove(shard, event.page_id)
        return self._decision(
            event, "admitted", shard, shard,
            self.required_channels(shard), "shrinks-load",
        )

    # ------------------------------------------------------------------
    # Global queue
    # ------------------------------------------------------------------

    @property
    def queued(self) -> tuple[MutationEvent, ...]:
        """Inserts waiting federation-wide for capacity, FIFO order."""
        return tuple(event for event, _ in self._queue)

    def drain(self, now: float) -> list[GlobalAdmissionDecision]:
        """Re-admit queued inserts that now fit somewhere, FIFO order."""
        decisions: list[GlobalAdmissionDecision] = []
        remaining: list[tuple[MutationEvent, int]] = []
        for event, home in self._queue:
            expected = int(event.expected_time or 0)
            shard = self._fit_shard(expected, home)
            if shard is None:
                remaining.append((event, home))
                continue
            required = self.required_with(shard, expected)
            self._apply_insert(shard, event.page_id, expected)
            self.counters["drained"] += 1
            if shard != home:
                self.counters["spilled"] += 1
            decisions.append(
                self._decision(
                    event, "admitted", shard, home, required,
                    "fits-budget" if shard == home else "spilled",
                    kind="queue_drain", time=now,
                )
            )
        self._queue = remaining
        return decisions

    def as_dict(self) -> dict:
        """Summary block for run manifests (the ``federation.admission``)."""
        return {
            "enabled": self.enabled,
            "budget": self.budget,
            "queue_limit": self.queue_limit,
            "queue_depth": len(self._queue),
            "shards": len(self._pages),
            **{k: int(v) for k, v in sorted(self.counters.items())},
        }
