"""Sharded multi-station federation over the live broadcast runtime.

:class:`FederatedBroadcastService` splits one catalog + mutation trace
across N station shards and replays each shard through its own
:class:`~repro.live.service.LiveBroadcastService`.  The replay is two
deterministic phases:

1. **Routing** — a single sequential pass over the global trace.  A
   :class:`~repro.federation.ring.ShardRing` pins each ladder group to a
   shard; a :class:`~repro.federation.admission.GlobalAdmissionController`
   judges every catalog mutation against the *federation's* Theorem-3.1
   headroom (home shard first, spill to the least-loaded shard with
   room, one global FIFO queue, reject last) and tracks where every
   page lives; listeners follow their page.  Popularity-drift
   rebalancing runs in the same pass: when a shard's fractional load
   exceeds ``rebalance_threshold`` times the federation mean, up to
   ``max_pages_moved`` pages migrate to the least-loaded shard —
   emitted as a ``page_remove``/``page_insert`` pair at the next slot,
   the Farach-Colton-style reallocation budget.  The pass emits one
   sub-trace per shard.

2. **Shard replay** — every sub-trace replays through a fresh
   per-shard :class:`~repro.live.service.LiveBroadcastService` (its own
   private engine, so shard outcomes are pure functions of the
   sub-trace).  Because each mutation now re-plans a ~K/N-page shard
   catalog instead of the full K pages, aggregate replay cost drops
   near-linearly with the shard count even on one core; on multi-core
   hosts the shards additionally fan out across the chunked sweep
   executor's process pool (:func:`repro.engine.executor.run_tasks`).
   Fan-out never changes results: outcomes are collected in shard
   order and are bit-identical to a serial replay.

Every phase draws randomness from nothing but the ring seed and the
trace, so two runs of the same inputs produce byte-identical reports —
the federation inherits the live layer's replay-determinism contract.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping, TYPE_CHECKING

from repro.core.errors import ReproError, SimulationError
from repro.core.pages import ProblemInstance
from repro.engine.executor import ExecutionPolicy, run_tasks
from repro.federation.admission import (
    GlobalAdmissionController,
    GlobalAdmissionDecision,
)
from repro.federation.ring import ShardRing, partition_catalog
from repro.live.catalog import LiveCatalog
from repro.live.mutations import MutationEvent, MutationTrace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.executor import ExecutionReport

__all__ = [
    "FederatedBroadcastService",
    "FederationReport",
    "ShardPlan",
    "replay_shard_task",
]

#: ``LiveBroadcastService`` counters aggregated across shards.
_AGGREGATED_COUNTERS = (
    "mutations",
    "incremental_repairs",
    "full_replans",
    "fastpath_replans",
    "slo_replans",
    "queue_drains",
    "listeners",
    "misses",
    "batched_listeners",
    "events_coalesced",
    "replans_avoided",
)


@dataclass(frozen=True)
class ShardPlan:
    """One shard's routed workload — the unit the fan-out executes.

    Picklable by construction (plain ints and a
    :class:`~repro.live.mutations.MutationTrace` of frozen events), so
    it crosses the process-pool boundary as cheaply as a sweep chunk.
    """

    shard: int
    initial: tuple[tuple[int, int], ...]
    trace: MutationTrace
    budget: int
    admission: bool
    queue_limit: int
    slo_window: int
    target_miss_rate: float
    replan_cooldown: int
    batch_listeners: bool


def replay_shard_task(plan: ShardPlan) -> dict:
    """Replay one shard to completion (the executor task entry point).

    Builds the shard's :class:`~repro.live.service.LiveBroadcastService`
    on a private engine and returns the report's manifest-ready dict
    (plus the shard id) — never the live objects, so the return value
    pickles back across the pool without dragging program grids along.
    """
    from repro.live.service import LiveBroadcastService

    service = LiveBroadcastService(
        dict(plan.initial),
        plan.trace,
        budget=plan.budget,
        admission=plan.admission,
        queue_limit=plan.queue_limit,
        slo_window=plan.slo_window,
        target_miss_rate=plan.target_miss_rate,
        replan_cooldown=plan.replan_cooldown,
        batch_listeners=plan.batch_listeners,
    )
    report = service.run()
    summary = report.as_dict()
    summary["shard"] = plan.shard
    return summary


@dataclass(frozen=True)
class FederationReport:
    """Outcome of one :meth:`FederatedBroadcastService.run`.

    Attributes:
        shards: Shard count.
        budget: Per-shard channel budget.
        horizon: Slots replayed.
        seed: Ring placement seed.
        trace_fingerprint: Content digest of the global trace.
        ring_fingerprint: Content digest of the ring's point table.
        group_assignment: ``expected_time -> shard`` effective pinning
            (ring plus empty-shard seeding overrides).
        admission: Global admission summary block.
        decisions: Every global admission verdict, in event order.
        rebalances: ``(time, page_id, source, target)`` for every
            drift-rebalance move, in decision order.
        routing: Router accounting (listeners routed, drains emitted,
            moves skipped against the reallocation budget, ...).
        shard_reports: Per-shard ``LiveReport.as_dict()`` summaries
            (plus ``"shard"``), ascending shard order.
        counters: Shard counters summed across the federation.
        executor: The fan-out's executor block (mode, fallback, ...).
    """

    shards: int
    budget: int
    horizon: int
    seed: int
    trace_fingerprint: str
    ring_fingerprint: str
    group_assignment: Mapping[int, int]
    admission: Mapping[str, object]
    decisions: tuple[GlobalAdmissionDecision, ...]
    rebalances: tuple[tuple[float, int, int, int], ...]
    routing: Mapping[str, int]
    shard_reports: tuple[Mapping[str, object], ...]
    counters: Mapping[str, int]
    executor: Mapping[str, object] = field(default_factory=dict)

    @property
    def pages_moved(self) -> int:
        return len(self.rebalances)

    @property
    def final_valid(self) -> bool:
        return all(r["final_valid"] for r in self.shard_reports)

    @property
    def listeners(self) -> int:
        return int(self.counters["listeners"])

    @property
    def misses(self) -> int:
        return int(self.counters["misses"])

    def miss_rate(self) -> float:
        listeners = self.listeners
        return (self.misses / listeners) if listeners else 0.0

    def as_dict(self) -> dict:
        """The manifest ``federation`` block (schema v7)."""
        return {
            "shards": self.shards,
            "budget": self.budget,
            "seed": self.seed,
            "ring_fingerprint": self.ring_fingerprint,
            "trace_fingerprint": self.trace_fingerprint,
            "group_assignment": {
                str(group): shard
                for group, shard in sorted(self.group_assignment.items())
            },
            "admission": dict(self.admission),
            "pages_moved": self.pages_moved,
            "rebalances": [
                {
                    "time": time,
                    "page_id": page_id,
                    "source": source,
                    "target": target,
                }
                for time, page_id, source, target in self.rebalances
            ],
            "routing": {k: int(v) for k, v in sorted(self.routing.items())},
            "counters": {
                k: int(v) for k, v in sorted(self.counters.items())
            },
            "final_valid": self.final_valid,
            "shard_reports": [dict(r) for r in self.shard_reports],
        }


class FederatedBroadcastService:
    """Route a mutation trace across N station shards and replay them.

    Args:
        initial: Catalog on air at ``t=0`` — a
            :class:`~repro.core.pages.ProblemInstance` or a plain
            ``page_id -> expected_time`` mapping.  Must span at least
            ``shards`` distinct ladder groups, because groups are the
            pinning granularity (the ring never splits one).
        trace: The global mutation/listener timeline to route.
        shards: Station shard count.
        budget: *Per-shard* channel budget; defaults to the maximum
            Theorem-3.1 requirement over the initial shard partitions
            (every shard taut at t=0).
        seed: Ring placement seed.
        replicas: Virtual ring points per shard.
        rebalance_threshold: Drift trigger — a shard whose fractional
            load exceeds this multiple of the federation mean is
            rebalanced (``0`` disables rebalancing; meaningful values
            are > 1).
        max_pages_moved: Reallocation budget per rebalance trigger.
        admission: Toggle global admission control (shard services
            inherit the flag).
        queue_limit: Global FIFO insert-queue capacity (shard services
            get the same local capacity as a safety net).
        slo_window / target_miss_rate / replan_cooldown /
        batch_listeners: Forwarded to every shard's
            :class:`~repro.live.service.LiveBroadcastService`.
    """

    def __init__(
        self,
        initial: ProblemInstance | Mapping[int, int],
        trace: MutationTrace,
        *,
        shards: int,
        budget: int | None = None,
        seed: int = 0,
        replicas: int = 64,
        rebalance_threshold: float = 0.0,
        max_pages_moved: int = 4,
        admission: bool = True,
        queue_limit: int = 16,
        slo_window: int = 64,
        target_miss_rate: float = 0.05,
        replan_cooldown: int = 8,
        batch_listeners: bool = False,
    ) -> None:
        if shards < 1:
            raise ReproError(f"shards must be >= 1, got {shards}")
        if rebalance_threshold and rebalance_threshold <= 1.0:
            raise ReproError(
                "rebalance_threshold must be > 1 (or 0 to disable), "
                f"got {rebalance_threshold}"
            )
        if max_pages_moved < 0:
            raise ReproError(
                f"max_pages_moved must be >= 0, got {max_pages_moved}"
            )
        catalog = (
            LiveCatalog(initial).pages()
            if isinstance(initial, ProblemInstance)
            else {int(k): int(v) for k, v in initial.items()}
        )
        if not catalog:
            raise ReproError("federation needs a non-empty catalog")
        groups = sorted({t for t in catalog.values()})
        if shards > len(groups):
            raise ReproError(
                f"shards ({shards}) exceed the catalog's distinct ladder "
                f"groups ({len(groups)}); groups are the pinning "
                "granularity, so reduce --shards or widen the ladder"
            )
        self.trace = trace
        self.shards = shards
        self.seed = int(seed)
        self.ring = ShardRing(shards, seed=seed, replicas=replicas)
        self.rebalance_threshold = float(rebalance_threshold)
        self.max_pages_moved = int(max_pages_moved)
        self.admission = admission
        self.queue_limit = int(queue_limit)
        self.slo_window = int(slo_window)
        self.target_miss_rate = float(target_miss_rate)
        self.replan_cooldown = int(replan_cooldown)
        self.batch_listeners = batch_listeners

        self._group_overrides = self._seed_empty_shards(catalog, groups)
        self.group_assignment = {
            group: self._effective_owner(group) for group in groups
        }
        self.partition = partition_catalog(
            catalog, self.ring, group_overrides=self._group_overrides
        )
        if budget is None:
            budget = max(
                LiveCatalog(pages).required_channels()
                for pages in self.partition.values()
            )
        if budget < 1:
            raise SimulationError(f"budget must be >= 1, got {budget}")
        self.budget = int(budget)
        self._report: FederationReport | None = None

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------

    def _effective_owner(self, group: int) -> int:
        override = self._group_overrides.get(group)
        return override if override is not None else self.ring.owner(group)

    def _seed_empty_shards(
        self, catalog: Mapping[int, int], groups: list[int]
    ) -> dict[int, int]:
        """Group-level overrides giving every shard >= 1 page at t=0.

        The ring may hash several groups onto one shard and none onto
        another; a shard's :class:`~repro.live.catalog.LiveCatalog`
        cannot be empty, so whole groups (never fractions of one) are
        re-pinned deterministically: the smallest group of the most
        group-rich shard moves to the lowest empty shard, repeatedly.
        Feasible whenever ``groups >= shards`` (checked upstream).
        """
        overrides: dict[int, int] = {}
        sizes = {g: 0 for g in groups}
        for expected in catalog.values():
            sizes[expected] += 1
        while True:
            held: dict[int, list[int]] = {s: [] for s in self.ring.shards}
            for group in groups:
                owner = overrides.get(group, self.ring.owner(group))
                held[owner].append(group)
            empty = sorted(s for s, gs in held.items() if not gs)
            if not empty:
                return overrides
            donor = max(
                (s for s, gs in held.items() if len(gs) > 1),
                key=lambda s: (len(held[s]), -s),
            )
            group = min(held[donor], key=lambda g: (sizes[g], g))
            overrides[group] = empty[0]

    # ------------------------------------------------------------------
    # Phase 1: routing
    # ------------------------------------------------------------------

    def route(self) -> tuple[
        dict[int, list[MutationEvent]],
        GlobalAdmissionController,
        list[GlobalAdmissionDecision],
        list[tuple[float, int, int, int]],
        dict[str, int],
    ]:
        """One sequential pass: global admission, drift moves, sub-traces."""
        controller = GlobalAdmissionController(
            self.partition,
            self.budget,
            queue_limit=self.queue_limit,
            enabled=self.admission,
        )
        sub_events: dict[int, list[MutationEvent]] = {
            s: [] for s in self.ring.shards
        }
        used_keys: dict[int, set[tuple]] = {s: set() for s in self.ring.shards}
        decisions: list[GlobalAdmissionDecision] = []
        rebalances: list[tuple[float, int, int, int]] = []
        routing = {
            "listeners_routed": 0,
            "orphan_listeners": 0,
            "drain_events": 0,
            "drains_deferred": 0,
            "moves_emitted": 0,
            "moves_skipped_budget": 0,
            "moves_skipped_guard": 0,
        }

        def emit(shard: int, event: MutationEvent) -> bool:
            key = (event.time, event.kind, event.page_id)
            if key in used_keys[shard]:
                return False
            used_keys[shard].add(key)
            sub_events[shard].append(event)
            return True

        def next_slot(now: float) -> float | None:
            """The first integer slot strictly after ``now`` (in-horizon).

            Router-injected catalog events (queue drains, rebalance
            moves) land one slot late so they always *follow* every
            original event of the triggering slot in sub-trace sort
            order — the walk order and the replay order stay aligned.
            """
            slot = float(math.floor(now)) + 1.0
            return slot if slot < self.trace.horizon else None

        def drain(now: float) -> None:
            slot = next_slot(now)
            if slot is None:
                routing["drains_deferred"] += len(controller.queued)
                return
            for decision in controller.drain(slot):
                decisions.append(decision)
                assert decision.shard is not None
                emitted = emit(
                    decision.shard,
                    MutationEvent(
                        time=slot,
                        kind="page_insert",
                        page_id=decision.page_id,
                        expected_time=controller.pages(decision.shard)[
                            decision.page_id
                        ],
                    ),
                )
                if emitted:
                    routing["drain_events"] += 1

        def rebalance(now: float) -> None:
            if not self.rebalance_threshold or self.shards < 2:
                return
            slot = next_slot(now)
            if slot is None:
                return
            loads = {
                s: controller.channel_load(s) for s in controller.shards
            }
            mean = sum(loads.values()) / len(loads)
            if mean <= 0.0:
                return
            source = max(loads, key=lambda s: (loads[s], -s))
            if loads[source] <= self.rebalance_threshold * mean:
                return
            target = min(loads, key=lambda s: (loads[s], s))
            moved = 0
            # Heaviest pages first (smallest expected time), page id as
            # the tie-break — a deterministic pick that sheds the most
            # load per unit of reallocation budget.
            candidates = sorted(
                controller.pages(source).items(),
                key=lambda item: (item[1], item[0]),
            )
            for page_id, expected in candidates:
                if moved >= self.max_pages_moved:
                    routing["moves_skipped_budget"] += 1
                    break
                if controller.page_count(source) <= 1:
                    routing["moves_skipped_guard"] += 1
                    break
                if (
                    controller._required_with(target, expected)
                    > self.budget
                ):
                    routing["moves_skipped_budget"] += 1
                    continue
                remove = MutationEvent(
                    time=slot, kind="page_remove", page_id=page_id
                )
                insert = MutationEvent(
                    time=slot,
                    kind="page_insert",
                    page_id=page_id,
                    expected_time=expected,
                )
                if (
                    (slot, "page_remove", page_id) in used_keys[source]
                    or (slot, "page_insert", page_id) in used_keys[target]
                ):
                    routing["moves_skipped_guard"] += 1
                    continue
                emit(source, remove)
                emit(target, insert)
                controller.move_page(page_id, source, target)
                rebalances.append((slot, page_id, source, target))
                routing["moves_emitted"] += 1
                moved += 1
                if (
                    controller.channel_load(source)
                    <= self.rebalance_threshold * mean
                ):
                    break

        for event in self.trace.events:
            if event.kind == "listener":
                shard = controller.locate(event.page_id)
                if shard is None:
                    shard = self._effective_owner(
                        int(event.expected_time or 1)
                    )
                    routing["orphan_listeners"] += 1
                emit(shard, event)
                routing["listeners_routed"] += 1
                continue
            if event.kind == "page_insert":
                home = self._effective_owner(int(event.expected_time or 0))
                decision = controller.decide_insert(event, home)
                decisions.append(decision)
                if decision.verdict == "admitted":
                    assert decision.shard is not None
                    emit(decision.shard, event)
                    rebalance(event.time)
            elif event.kind == "page_remove":
                decision = controller.decide_remove(event)
                decisions.append(decision)
                if decision.verdict == "admitted":
                    assert decision.shard is not None
                    emit(decision.shard, event)
                    drain(event.time)
            elif event.kind == "page_retune":
                decision = controller.decide_retune(event)
                decisions.append(decision)
                if decision.verdict == "admitted":
                    assert decision.shard is not None
                    emit(decision.shard, event)
                    drain(event.time)
                    rebalance(event.time)
        return sub_events, controller, decisions, rebalances, routing

    # ------------------------------------------------------------------
    # Phase 2: shard replay
    # ------------------------------------------------------------------

    def _shard_plans(
        self, sub_events: Mapping[int, list[MutationEvent]]
    ) -> list[ShardPlan]:
        plans = []
        for shard in self.ring.shards:
            trace = MutationTrace(
                horizon=self.trace.horizon,
                events=tuple(sub_events[shard]),
                meta={
                    "generator": "federation.router",
                    "shard": shard,
                    "shards": self.shards,
                    "parent_fingerprint": self.trace.fingerprint(),
                },
            )
            plans.append(
                ShardPlan(
                    shard=shard,
                    initial=tuple(
                        sorted(self.partition[shard].items())
                    ),
                    trace=trace,
                    budget=self.budget,
                    admission=self.admission,
                    queue_limit=self.queue_limit,
                    slo_window=self.slo_window,
                    target_miss_rate=self.target_miss_rate,
                    replan_cooldown=self.replan_cooldown,
                    batch_listeners=self.batch_listeners,
                )
            )
        return plans

    def run(
        self,
        *,
        workers: int = 1,
        mode: str = "serial",
        policy: ExecutionPolicy | None = None,
        telemetry=None,
    ) -> FederationReport:
        """Route, then replay every shard (once per service instance).

        ``workers``/``mode``/``policy`` drive the executor fan-out; the
        report is identical for every combination (shard replays are
        pure), so ``mode="serial"`` is the reference and pools are a
        pure wall-clock optimisation.
        """
        if self._report is not None:
            raise SimulationError(
                "this federation already ran; build a fresh service "
                "to replay again"
            )
        sub_events, controller, decisions, rebalances, routing = (
            self.route()
        )
        plans = self._shard_plans(sub_events)
        outcomes, report = run_tasks(
            replay_shard_task,
            plans,
            workers=workers,
            mode=mode,
            policy=policy,
            telemetry=telemetry,
        )
        shard_reports: list[dict] = []
        for plan, outcome in zip(plans, outcomes):
            if isinstance(outcome, dict):
                shard_reports.append(outcome)
            else:
                raise SimulationError(
                    f"shard {plan.shard} replay failed: "
                    f"{outcome.error_type}: {outcome.message}"
                )
        counters = {name: 0 for name in _AGGREGATED_COUNTERS}
        for summary in shard_reports:
            for name in _AGGREGATED_COUNTERS:
                counters[name] += int(summary["counters"][name])
        executor_block = report.as_dict()
        executor_block["workers"] = max(1, int(workers))
        self._report = FederationReport(
            shards=self.shards,
            budget=self.budget,
            horizon=self.trace.horizon,
            seed=self.seed,
            trace_fingerprint=self.trace.fingerprint(),
            ring_fingerprint=self.ring.fingerprint(),
            group_assignment=dict(self.group_assignment),
            admission=controller.as_dict(),
            decisions=tuple(decisions),
            rebalances=tuple(rebalances),
            routing=routing,
            shard_reports=tuple(shard_reports),
            counters=counters,
            executor=executor_block,
        )
        return self._report
