"""Sharded multi-station federation over the live broadcast runtime.

:class:`FederatedBroadcastService` splits one catalog + mutation trace
across N station shards and replays each shard through its own
:class:`~repro.live.service.LiveBroadcastService`.  The replay is two
deterministic phases:

1. **Routing** — one pass over the global trace.  A
   :class:`~repro.federation.ring.ShardRing` pins each ladder group to a
   shard; a :class:`~repro.federation.admission.GlobalAdmissionController`
   judges every catalog mutation against the *federation's* Theorem-3.1
   headroom (home shard first, spill to the least-loaded shard with
   room, one global FIFO queue, reject last) and tracks where every
   page lives; listeners follow their page.  Popularity-drift
   rebalancing runs in the same pass: when a shard's fractional load
   exceeds ``rebalance_threshold`` times the federation mean, up to
   ``max_pages_moved`` pages migrate to the least-loaded shard —
   emitted as a ``page_remove``/``page_insert`` pair at the next slot,
   the Farach-Colton-style reallocation budget.

   Two router implementations share the catalog control path and are
   byte-identical by construction (property-tested):

   * ``sequential`` — the reference: every event, listener arrivals
     included, walks the control loop one Python iteration at a time.
   * ``columnar`` (default) — the hot path: catalog events (original
     plus injected drains/moves) still take the sequential control
     path, but the listener runs between them are routed in vectorised
     passes over :meth:`~repro.live.mutations.MutationTrace.columns` —
     a dense page→shard lookup table refreshed from the controller's
     shadow state after each catalog event, orphans detected by mask
     and resolved through the (memoised) ring.  Per-listener Python
     work drops to zero.

2. **Shard replay** — every shard's routed sub-trace replays through a
   :class:`~repro.live.service.LiveBroadcastService` on a *warm*
   per-shard engine (kept module-global, so bench repetitions and
   repeated ``run()`` calls in one process reuse each shard's program
   cache; results are unchanged because schedulers are deterministic
   and cached programs are copied before use).  Sub-traces are built by
   a stable merge of the listener columns and the catalog events on
   ``(time, kind, page_id)`` through
   :meth:`~repro.live.mutations.MutationTrace.presorted` — no re-sort,
   no duplicate scan, no JSON fingerprint; the content digest comes
   from :func:`~repro.live.mutations.fingerprint_columns`.

   Fan-out transports (recorded as ``federation.transport``, manifest
   schema v9):

   * ``inline`` — serial/thread replay: sub-trace events *reference*
     the parent trace's event objects (zero copies, zero construction).
   * ``shm`` — process pools: the listener columns and their shard
     assignment are posted once into ``multiprocessing.shared_memory``;
     each worker attaches, masks out its shard's rows and rebuilds only
     its own listener events.  Falls back to ``pickle`` when shared
     memory is unavailable.
   * ``pickle`` — the legacy path: a full sub-trace pickled per
     :class:`ShardPlan`.

   Pass a persistent :class:`~repro.engine.executor.TaskPool` to
   :meth:`FederatedBroadcastService.run` to keep pool workers (and the
   warm engines and shared-memory attachments they hold) alive across
   runs.  Fan-out never changes results: outcomes are collected in
   shard order and are bit-identical to a serial replay.

Every phase draws randomness from nothing but the ring seed and the
trace, so two runs of the same inputs produce byte-identical reports —
the federation inherits the live layer's replay-determinism contract.
"""

from __future__ import annotations

import math
import pickle
from dataclasses import dataclass, field
from multiprocessing import shared_memory
from typing import Mapping, Sequence, TYPE_CHECKING

import numpy as np

from repro.core.errors import ReproError, SimulationError
from repro.core.pages import ProblemInstance
from repro.engine.executor import ExecutionPolicy, TaskPool, run_tasks
from repro.federation.admission import (
    GlobalAdmissionController,
    GlobalAdmissionDecision,
)
from repro.federation.ring import ShardRing, partition_catalog
from repro.live.catalog import LiveCatalog
from repro.live.mutations import (
    MutationEvent,
    MutationTrace,
    fingerprint_columns,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.facade import BroadcastEngine

__all__ = [
    "FEDERATION_ROUTERS",
    "FEDERATION_TRANSPORTS",
    "ColumnarShardPlan",
    "FederatedBroadcastService",
    "FederationReport",
    "RoutedTrace",
    "ShardPlan",
    "replay_shard_task",
]

#: Router implementations (identical outputs; ``columnar`` is the fast
#: default, ``sequential`` the per-event reference).
FEDERATION_ROUTERS = ("columnar", "sequential")

#: Shard fan-out transports recorded in ``federation.transport``.
FEDERATION_TRANSPORTS = ("inline", "shm", "pickle")

#: ``LiveBroadcastService`` counters aggregated across shards.
_AGGREGATED_COUNTERS = (
    "mutations",
    "incremental_repairs",
    "full_replans",
    "fastpath_replans",
    "slo_replans",
    "queue_drains",
    "listeners",
    "misses",
    "batched_listeners",
    "events_coalesced",
    "replans_avoided",
)

#: Dense page→shard lookup tables are capped at this many entries
#: (64 MiB of int64); catalogs with sparser page-id spaces fall back to
#: per-run dictionary resolution, which is slower but allocation-safe.
_LOCATION_LUT_LIMIT = 8_388_608


def _event_sort_key(event: MutationEvent) -> tuple:
    return (event.time, event.kind, event.page_id)


# ----------------------------------------------------------------------
# Shard plans (the fan-out payloads)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ShardPlan:
    """One shard's routed workload — the unit the fan-out executes.

    Picklable by construction (plain ints and a
    :class:`~repro.live.mutations.MutationTrace` of frozen events), so
    it crosses the process-pool boundary as cheaply as a sweep chunk.
    ``inline`` transport ships the same object by reference, with the
    sub-trace's events *aliasing* the parent trace's event objects.
    """

    shard: int
    initial: tuple[tuple[int, int], ...]
    trace: MutationTrace
    budget: int
    admission: bool
    queue_limit: int
    slo_window: int
    target_miss_rate: float
    replan_cooldown: int
    batch_listeners: bool
    warm_engine: bool = True


@dataclass(frozen=True)
class ColumnarShardPlan:
    """A shard workload whose listeners live in a shared-memory post.

    The zero-copy sibling of :class:`ShardPlan`: catalog events (a few
    hundred at most) pickle normally, while the listener columns — the
    millions of rows — are posted *once* for the whole federation (see
    ``shm_name``) together with a per-listener shard assignment.  The
    worker attaches, selects its shard's rows, rebuilds its listener
    events and merges them with the catalog events; ``fingerprint`` is
    stamped rather than recomputed so the rebuilt sub-trace reports
    identically to an inline replay.
    """

    shard: int
    initial: tuple[tuple[int, int], ...]
    horizon: int
    meta: Mapping[str, object]
    catalog_events: tuple[MutationEvent, ...]
    fingerprint: str
    shm_name: str
    shm_size: int
    budget: int
    admission: bool
    queue_limit: int
    slo_window: int
    target_miss_rate: float
    replan_cooldown: int
    batch_listeners: bool
    warm_engine: bool = True


# ----------------------------------------------------------------------
# Sub-trace assembly (shared by parent and shm workers)
# ----------------------------------------------------------------------


def _merge_columns(lt, lp, le, catalog_events: Sequence[MutationEvent]):
    """Stable-merge listener columns with sorted catalog events.

    ``lt``/``lp``/``le`` are the shard's listener times, page ids and
    expected times in trace order; ``catalog_events`` must already be
    sorted by ``(time, kind, page_id)``.  Returns the merged columnar
    arrays plus the catalog-position mask.  The merge reproduces the
    ``(time, kind, page_id)`` sort order the validating constructor
    would compute: at a shared timestamp ``"listener"`` sorts before
    every catalog kind, so each catalog event lands *after* all
    listeners at or before its time (``searchsorted`` side ``right``).
    """
    lc = len(catalog_events)
    ll = int(lt.shape[0])
    n = ll + lc
    mask = np.zeros(n, dtype=bool)
    m_times = np.empty(n, dtype=np.float64)
    m_pages = np.empty(n, dtype=np.int64)
    m_expected = np.empty(n, dtype=np.int64)
    if lc:
        ct = np.fromiter(
            (event.time for event in catalog_events), np.float64, lc
        )
        positions = np.searchsorted(lt, ct, side="right")
        positions = positions + np.arange(lc, dtype=np.int64)
        mask[positions] = True
        m_times[mask] = ct
        m_pages[mask] = np.fromiter(
            (event.page_id for event in catalog_events), np.int64, lc
        )
        m_expected[mask] = np.fromiter(
            (
                -1 if event.expected_time is None else event.expected_time
                for event in catalog_events
            ),
            np.int64,
            lc,
        )
    is_listener = ~mask
    m_times[is_listener] = lt
    m_pages[is_listener] = lp
    m_expected[is_listener] = le
    return m_times, is_listener, m_pages, m_expected, mask


def _assemble_subtrace(
    horizon: int,
    meta: Mapping[str, object],
    catalog_events: Sequence[MutationEvent],
    lt,
    lp,
    le,
    listener_objects,
    *,
    fingerprint: str | None = None,
    with_columns: bool = True,
) -> MutationTrace:
    """Build one shard's sub-trace without re-validating anything.

    ``listener_objects`` is a sequence (or object ndarray) of the
    shard's listener events aligned with ``lt`` order — parent event
    objects on the inline path, worker-rebuilt events on the shm path.
    The merged trace goes through
    :meth:`~repro.live.mutations.MutationTrace.presorted` with its
    columns pre-seeded (unless ``with_columns`` is off, for pickle
    transport, where shipping the arrays would double the payload) and
    its fingerprint stamped — computed via
    :func:`~repro.live.mutations.fingerprint_columns` when not given.
    """
    m_times, is_listener, m_pages, m_expected, mask = _merge_columns(
        lt, lp, le, catalog_events
    )
    n = int(m_times.shape[0])
    events = np.empty(n, dtype=object)
    lc = len(catalog_events)
    if lc:
        cat_arr = np.empty(lc, dtype=object)
        cat_arr[:] = list(catalog_events)
        events[mask] = cat_arr
    if n - lc:
        if isinstance(listener_objects, np.ndarray):
            lis_arr = listener_objects
        else:
            lis_arr = np.empty(n - lc, dtype=object)
            lis_arr[:] = list(listener_objects)
        events[is_listener] = lis_arr
    if fingerprint is None:
        fingerprint = fingerprint_columns(
            horizon, meta, m_times, is_listener, m_pages, m_expected,
            catalog_events,
        )
    columns = (
        (m_times, is_listener, m_pages, m_expected)
        if with_columns
        else None
    )
    return MutationTrace.presorted(
        horizon,
        tuple(events.tolist()),
        meta,
        columns=columns,
        fingerprint=fingerprint,
    )


class _FedShmPost:
    """The federation's listener columns, posted once into shared memory.

    One pickle of ``(times, page_ids, expected, shard)`` listener
    arrays crosses the process boundary once per :meth:`run`, instead
    of a million listener events pickling per shard plan.  The parent
    owns the block: :meth:`close` unlinks it after the fan-out drains.
    """

    def __init__(self, arrays: tuple) -> None:
        payload = pickle.dumps(arrays, protocol=pickle.HIGHEST_PROTOCOL)
        self.size = len(payload)
        self.block = shared_memory.SharedMemory(
            create=True, size=max(1, self.size)
        )
        self.block.buf[: self.size] = payload

    @property
    def name(self) -> str:
        return self.block.name

    def close(self) -> None:
        try:
            self.block.close()
            self.block.unlink()
        except OSError:  # pragma: no cover - already gone
            pass


#: Worker-side cache of the attached listener-column post.  A run posts
#: exactly one block, so the cache keeps a single entry; a new name
#: evicts the previous attachment (warm pool workers outlive runs).
_FED_SHM_CACHE: dict[str, tuple] = {}


def _listener_columns_from_shm(name: str, size: int) -> tuple:
    cached = _FED_SHM_CACHE.get(name)
    if cached is None:
        block = shared_memory.SharedMemory(name=name)
        view = block.buf[:size]
        try:
            cached = pickle.loads(view)
        finally:
            view.release()
            block.close()
        _FED_SHM_CACHE.clear()
        _FED_SHM_CACHE[name] = cached
    return cached


def _subtrace_from_plan(plan: ColumnarShardPlan) -> MutationTrace:
    """Rebuild one shard's sub-trace from the shared-memory post."""
    lt, lp, le, ls = _listener_columns_from_shm(
        plan.shm_name, plan.shm_size
    )
    select = ls == plan.shard
    lt = np.ascontiguousarray(lt[select])
    lp = np.ascontiguousarray(lp[select])
    le = np.ascontiguousarray(le[select])
    listeners = [
        MutationEvent(
            time=time,
            kind="listener",
            page_id=page,
            expected_time=None if exp < 0 else exp,
        )
        for time, page, exp in zip(
            lt.tolist(), lp.tolist(), le.tolist()
        )
    ]
    return _assemble_subtrace(
        plan.horizon,
        plan.meta,
        plan.catalog_events,
        lt,
        lp,
        le,
        listeners,
        fingerprint=plan.fingerprint,
    )


# ----------------------------------------------------------------------
# Warm shard engines
# ----------------------------------------------------------------------

#: Per-shard engines kept warm for the life of the process (parent for
#: serial/thread replay, each pool worker for process replay).  Reuse
#: is a pure wall-clock win: program-cache keys are content fingerprints
#: and cached programs are copied before the live service edits them,
#: so a warm engine returns exactly what a cold one would compute.
_WARM_ENGINES: dict[int, "BroadcastEngine"] = {}


def _warm_engine(shard: int) -> "BroadcastEngine":
    engine = _WARM_ENGINES.get(shard)
    if engine is None:
        from repro.engine.facade import BroadcastEngine

        engine = BroadcastEngine()
        _WARM_ENGINES[shard] = engine
    return engine


def replay_shard_task(plan: ShardPlan | ColumnarShardPlan) -> dict:
    """Replay one shard to completion (the executor task entry point).

    Builds the shard's :class:`~repro.live.service.LiveBroadcastService`
    on the shard's warm engine and returns the report's manifest-ready
    dict (plus the shard id) — never the live objects, so the return
    value pickles back across the pool without dragging program grids
    along.  :class:`ColumnarShardPlan` payloads rebuild their sub-trace
    from the shared-memory listener post first.
    """
    from repro.live.service import LiveBroadcastService

    if isinstance(plan, ColumnarShardPlan):
        trace = _subtrace_from_plan(plan)
    else:
        trace = plan.trace
    if plan.warm_engine:
        engine = _warm_engine(plan.shard)
    else:
        from repro.engine.facade import BroadcastEngine

        engine = BroadcastEngine()
    service = LiveBroadcastService(
        dict(plan.initial),
        trace,
        budget=plan.budget,
        engine=engine,
        admission=plan.admission,
        queue_limit=plan.queue_limit,
        slo_window=plan.slo_window,
        target_miss_rate=plan.target_miss_rate,
        replan_cooldown=plan.replan_cooldown,
        batch_listeners=plan.batch_listeners,
    )
    report = service.run()
    summary = report.as_dict()
    summary["shard"] = plan.shard
    return summary


# ----------------------------------------------------------------------
# Routing
# ----------------------------------------------------------------------


@dataclass
class RoutedTrace:
    """Phase-1 output: where every event goes, plus the control trail.

    Attributes:
        controller: The admission controller, final shadow state.
        decisions: Every global admission verdict, in event order.
        rebalances: ``(time, page_id, source, target)`` per move.
        routing: Router accounting counters.
        catalog_events: Per-shard catalog events (original admissions
            plus injected drains/moves), in emit order.
        listener_shard: One entry per parent-trace event — the shard
            each listener was routed to, ``-1`` at non-listener
            positions.
    """

    controller: GlobalAdmissionController
    decisions: list[GlobalAdmissionDecision]
    rebalances: list[tuple[float, int, int, int]]
    routing: dict[str, int]
    catalog_events: dict[int, list[MutationEvent]]
    listener_shard: "np.ndarray"


class _RouterState:
    """The catalog control path both routers share.

    Admission verdicts, queue drains and drift rebalancing live here so
    the sequential reference and the columnar hot path cannot drift
    apart — they differ only in how listener arrivals are resolved to
    shards.  Dedup (``used_keys``) covers catalog and injected events
    only: listeners are unique by the parent trace's own invariant, so
    keeping one key per routed listener (the old behaviour) would cost
    O(events) memory for no protection.
    """

    def __init__(self, service: "FederatedBroadcastService") -> None:
        self.service = service
        self.controller = GlobalAdmissionController(
            service.partition,
            service.budget,
            queue_limit=service.queue_limit,
            enabled=service.admission,
        )
        self.catalog_events: dict[int, list[MutationEvent]] = {
            s: [] for s in service.ring.shards
        }
        self.used_keys: dict[int, set[tuple]] = {
            s: set() for s in service.ring.shards
        }
        self.decisions: list[GlobalAdmissionDecision] = []
        self.rebalances: list[tuple[float, int, int, int]] = []
        self.deferred_pages: set[int] = set()
        self.routing = {
            "listeners_routed": 0,
            "orphan_listeners": 0,
            "drain_events": 0,
            "drains_deferred": 0,
            "moves_emitted": 0,
            "moves_skipped_budget": 0,
            "moves_skipped_guard": 0,
        }

    def emit(self, shard: int, event: MutationEvent) -> bool:
        key = (event.time, event.kind, event.page_id)
        if key in self.used_keys[shard]:
            return False
        self.used_keys[shard].add(key)
        self.catalog_events[shard].append(event)
        return True

    def next_slot(self, now: float) -> float | None:
        """The first integer slot strictly after ``now`` (in-horizon).

        Router-injected catalog events (queue drains, rebalance moves)
        land one slot late so they always *follow* every original event
        of the triggering slot in sub-trace sort order — the walk order
        and the replay order stay aligned.
        """
        slot = float(math.floor(now)) + 1.0
        return slot if slot < self.service.trace.horizon else None

    def drain(self, now: float) -> None:
        controller = self.controller
        slot = self.next_slot(now)
        if slot is None:
            # End-of-horizon triggers can fire repeatedly while the same
            # inserts sit in the queue; count each *page* once instead
            # of re-adding the whole queue depth per trigger.
            self.deferred_pages.update(
                event.page_id for event in controller.queued
            )
            return
        for decision in controller.drain(slot):
            self.decisions.append(decision)
            assert decision.shard is not None
            emitted = self.emit(
                decision.shard,
                MutationEvent(
                    time=slot,
                    kind="page_insert",
                    page_id=decision.page_id,
                    expected_time=controller.pages(decision.shard)[
                        decision.page_id
                    ],
                ),
            )
            if emitted:
                self.routing["drain_events"] += 1

    def rebalance(self, now: float) -> None:
        service = self.service
        controller = self.controller
        if not service.rebalance_threshold or service.shards < 2:
            return
        slot = self.next_slot(now)
        if slot is None:
            return
        loads = {
            s: controller.channel_load(s) for s in controller.shards
        }
        mean = sum(loads.values()) / len(loads)
        if mean <= 0.0:
            return
        source = max(loads, key=lambda s: (loads[s], -s))
        if loads[source] <= service.rebalance_threshold * mean:
            return
        target = min(loads, key=lambda s: (loads[s], s))
        moved = 0
        # Heaviest pages first (smallest expected time), page id as
        # the tie-break — a deterministic pick that sheds the most
        # load per unit of reallocation budget.
        candidates = sorted(
            controller.pages(source).items(),
            key=lambda item: (item[1], item[0]),
        )
        for page_id, expected in candidates:
            if moved >= service.max_pages_moved:
                self.routing["moves_skipped_budget"] += 1
                break
            if controller.page_count(source) <= 1:
                self.routing["moves_skipped_guard"] += 1
                break
            if controller.required_with(target, expected) > service.budget:
                self.routing["moves_skipped_budget"] += 1
                continue
            remove = MutationEvent(
                time=slot, kind="page_remove", page_id=page_id
            )
            insert = MutationEvent(
                time=slot,
                kind="page_insert",
                page_id=page_id,
                expected_time=expected,
            )
            if (
                (slot, "page_remove", page_id) in self.used_keys[source]
                or (slot, "page_insert", page_id) in self.used_keys[target]
            ):
                self.routing["moves_skipped_guard"] += 1
                continue
            self.emit(source, remove)
            self.emit(target, insert)
            controller.move_page(page_id, source, target)
            self.rebalances.append((slot, page_id, source, target))
            self.routing["moves_emitted"] += 1
            moved += 1
            if (
                controller.channel_load(source)
                <= service.rebalance_threshold * mean
            ):
                break

    def handle_catalog(self, event: MutationEvent) -> None:
        """Decide one original catalog event and run its side effects."""
        controller = self.controller
        if event.kind == "page_insert":
            home = self.service._effective_owner(
                int(event.expected_time or 0)
            )
            decision = controller.decide_insert(event, home)
            self.decisions.append(decision)
            if decision.verdict == "admitted":
                assert decision.shard is not None
                self.emit(decision.shard, event)
                self.rebalance(event.time)
        elif event.kind == "page_remove":
            decision = controller.decide_remove(event)
            self.decisions.append(decision)
            if decision.verdict == "admitted":
                assert decision.shard is not None
                self.emit(decision.shard, event)
                self.drain(event.time)
        elif event.kind == "page_retune":
            decision = controller.decide_retune(event)
            self.decisions.append(decision)
            if decision.verdict == "admitted":
                assert decision.shard is not None
                self.emit(decision.shard, event)
                self.drain(event.time)
                self.rebalance(event.time)
        else:  # pragma: no cover - routers never send listeners here
            raise SimulationError(
                f"listener event reached the catalog path: {event}"
            )

    def finish(self) -> None:
        self.routing["drains_deferred"] = len(self.deferred_pages)


# ----------------------------------------------------------------------
# Report
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class FederationReport:
    """Outcome of one :meth:`FederatedBroadcastService.run`.

    Attributes:
        shards: Shard count.
        budget: Per-shard channel budget.
        horizon: Slots replayed.
        seed: Ring placement seed.
        trace_fingerprint: Content digest of the global trace.
        ring_fingerprint: Content digest of the ring's point table.
        group_assignment: ``expected_time -> shard`` effective pinning
            (ring plus empty-shard seeding overrides).
        admission: Global admission summary block.
        decisions: Every global admission verdict, in event order.
        rebalances: ``(time, page_id, source, target)`` for every
            drift-rebalance move, in decision order.
        routing: Router accounting (listeners routed, drains emitted,
            moves skipped against the reallocation budget, ...).
        shard_reports: Per-shard ``LiveReport.as_dict()`` summaries
            (plus ``"shard"``), ascending shard order.
        counters: Shard counters summed across the federation.
        transport: How sub-traces crossed to the shard replays
            (``inline`` / ``shm`` / ``pickle``); manifest schema v9.
        executor: The fan-out's executor block (mode, fallback, ...).
    """

    shards: int
    budget: int
    horizon: int
    seed: int
    trace_fingerprint: str
    ring_fingerprint: str
    group_assignment: Mapping[int, int]
    admission: Mapping[str, object]
    decisions: tuple[GlobalAdmissionDecision, ...]
    rebalances: tuple[tuple[float, int, int, int], ...]
    routing: Mapping[str, int]
    shard_reports: tuple[Mapping[str, object], ...]
    counters: Mapping[str, int]
    transport: str = "inline"
    executor: Mapping[str, object] = field(default_factory=dict)

    @property
    def pages_moved(self) -> int:
        return len(self.rebalances)

    @property
    def final_valid(self) -> bool:
        return all(r["final_valid"] for r in self.shard_reports)

    @property
    def listeners(self) -> int:
        return int(self.counters["listeners"])

    @property
    def misses(self) -> int:
        return int(self.counters["misses"])

    def miss_rate(self) -> float:
        listeners = self.listeners
        return (self.misses / listeners) if listeners else 0.0

    def as_dict(self) -> dict:
        """The manifest ``federation`` block (schema v9).

        Deliberately *router-free*: the columnar and sequential routers
        must produce byte-identical blocks (the CI smoke job ``cmp``\\ s
        the two manifests), so only content — not which implementation
        computed it — may appear here.
        """
        return {
            "shards": self.shards,
            "budget": self.budget,
            "seed": self.seed,
            "transport": self.transport,
            "ring_fingerprint": self.ring_fingerprint,
            "trace_fingerprint": self.trace_fingerprint,
            "group_assignment": {
                str(group): shard
                for group, shard in sorted(self.group_assignment.items())
            },
            "admission": dict(self.admission),
            "pages_moved": self.pages_moved,
            "rebalances": [
                {
                    "time": time,
                    "page_id": page_id,
                    "source": source,
                    "target": target,
                }
                for time, page_id, source, target in self.rebalances
            ],
            "routing": {k: int(v) for k, v in sorted(self.routing.items())},
            "counters": {
                k: int(v) for k, v in sorted(self.counters.items())
            },
            "final_valid": self.final_valid,
            "shard_reports": [dict(r) for r in self.shard_reports],
        }


# ----------------------------------------------------------------------
# Service
# ----------------------------------------------------------------------


class FederatedBroadcastService:
    """Route a mutation trace across N station shards and replay them.

    Args:
        initial: Catalog on air at ``t=0`` — a
            :class:`~repro.core.pages.ProblemInstance` or a plain
            ``page_id -> expected_time`` mapping.  Must span at least
            ``shards`` distinct ladder groups, because groups are the
            pinning granularity (the ring never splits one).
        trace: The global mutation/listener timeline to route.
        shards: Station shard count.
        budget: *Per-shard* channel budget; defaults to the maximum
            Theorem-3.1 requirement over the initial shard partitions
            (every shard taut at t=0).
        seed: Ring placement seed.
        replicas: Virtual ring points per shard.
        rebalance_threshold: Drift trigger — a shard whose fractional
            load exceeds this multiple of the federation mean is
            rebalanced (``0`` disables rebalancing; meaningful values
            are > 1).
        max_pages_moved: Reallocation budget per rebalance trigger.
        admission: Toggle global admission control (shard services
            inherit the flag).
        queue_limit: Global FIFO insert-queue capacity (shard services
            get the same local capacity as a safety net).
        router: ``"columnar"`` (vectorised listener routing, the
            default) or ``"sequential"`` (the per-event reference);
            reports are byte-identical either way.
        warm_shard_pool: Replay each shard on a process-lifetime warm
            engine (program caches survive across runs — the default).
            ``False`` gives every replay a private cold engine, the
            pre-warm-pool behaviour; results are identical either way
            because cached programs are copied before use.
        slo_window / target_miss_rate / replan_cooldown /
        batch_listeners: Forwarded to every shard's
            :class:`~repro.live.service.LiveBroadcastService`.
    """

    def __init__(
        self,
        initial: ProblemInstance | Mapping[int, int],
        trace: MutationTrace,
        *,
        shards: int,
        budget: int | None = None,
        seed: int = 0,
        replicas: int = 64,
        rebalance_threshold: float = 0.0,
        max_pages_moved: int = 4,
        admission: bool = True,
        queue_limit: int = 16,
        router: str = "columnar",
        warm_shard_pool: bool = True,
        slo_window: int = 64,
        target_miss_rate: float = 0.05,
        replan_cooldown: int = 8,
        batch_listeners: bool = False,
    ) -> None:
        if shards < 1:
            raise ReproError(f"shards must be >= 1, got {shards}")
        if rebalance_threshold and rebalance_threshold <= 1.0:
            raise ReproError(
                "rebalance_threshold must be > 1 (or 0 to disable), "
                f"got {rebalance_threshold}"
            )
        if max_pages_moved < 0:
            raise ReproError(
                f"max_pages_moved must be >= 0, got {max_pages_moved}"
            )
        if router not in FEDERATION_ROUTERS:
            raise ReproError(
                f"unknown router {router!r}; choose from "
                f"{', '.join(FEDERATION_ROUTERS)}"
            )
        catalog = (
            LiveCatalog(initial).pages()
            if isinstance(initial, ProblemInstance)
            else {int(k): int(v) for k, v in initial.items()}
        )
        if not catalog:
            raise ReproError("federation needs a non-empty catalog")
        groups = sorted({t for t in catalog.values()})
        if shards > len(groups):
            raise ReproError(
                f"shards ({shards}) exceed the catalog's distinct ladder "
                f"groups ({len(groups)}); groups are the pinning "
                "granularity, so reduce --shards or widen the ladder"
            )
        self.trace = trace
        self.shards = shards
        self.seed = int(seed)
        self.ring = ShardRing(shards, seed=seed, replicas=replicas)
        self.rebalance_threshold = float(rebalance_threshold)
        self.max_pages_moved = int(max_pages_moved)
        self.admission = admission
        self.queue_limit = int(queue_limit)
        self.router = router
        self.warm_shard_pool = bool(warm_shard_pool)
        self.slo_window = int(slo_window)
        self.target_miss_rate = float(target_miss_rate)
        self.replan_cooldown = int(replan_cooldown)
        self.batch_listeners = batch_listeners

        self._group_overrides = self._seed_empty_shards(catalog, groups)
        self.group_assignment = {
            group: self._effective_owner(group) for group in groups
        }
        self.partition = partition_catalog(
            catalog, self.ring, group_overrides=self._group_overrides
        )
        if budget is None:
            budget = max(
                LiveCatalog(pages).required_channels()
                for pages in self.partition.values()
            )
        if budget < 1:
            raise SimulationError(f"budget must be >= 1, got {budget}")
        self.budget = int(budget)
        self._max_initial_page = max(catalog)
        self._report: FederationReport | None = None

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------

    def _effective_owner(self, group: int) -> int:
        override = self._group_overrides.get(group)
        return override if override is not None else self.ring.owner(group)

    def _seed_empty_shards(
        self, catalog: Mapping[int, int], groups: list[int]
    ) -> dict[int, int]:
        """Group-level overrides giving every shard >= 1 page at t=0.

        The ring may hash several groups onto one shard and none onto
        another; a shard's :class:`~repro.live.catalog.LiveCatalog`
        cannot be empty, so whole groups (never fractions of one) are
        re-pinned deterministically: the smallest group of the most
        group-rich shard moves to the lowest empty shard, repeatedly.
        Feasible whenever ``groups >= shards`` (checked upstream).
        """
        overrides: dict[int, int] = {}
        sizes = {g: 0 for g in groups}
        for expected in catalog.values():
            sizes[expected] += 1
        while True:
            held: dict[int, list[int]] = {s: [] for s in self.ring.shards}
            for group in groups:
                owner = overrides.get(group, self.ring.owner(group))
                held[owner].append(group)
            empty = sorted(s for s, gs in held.items() if not gs)
            if not empty:
                return overrides
            donor = max(
                (s for s, gs in held.items() if len(gs) > 1),
                key=lambda s: (len(held[s]), -s),
            )
            group = min(held[donor], key=lambda g: (sizes[g], g))
            overrides[group] = empty[0]

    # ------------------------------------------------------------------
    # Phase 1: routing
    # ------------------------------------------------------------------

    def route(self, router: str | None = None) -> RoutedTrace:
        """Run phase 1 with the configured (or given) router."""
        router = self.router if router is None else router
        if router not in FEDERATION_ROUTERS:
            raise ReproError(
                f"unknown router {router!r}; choose from "
                f"{', '.join(FEDERATION_ROUTERS)}"
            )
        if router == "sequential":
            return self._route_sequential()
        return self._route_columnar()

    def _route_sequential(self) -> RoutedTrace:
        """The reference pass: every event walks the control loop."""
        state = _RouterState(self)
        controller = state.controller
        routing = state.routing
        listener_shard = np.full(len(self.trace.events), -1, dtype=np.int64)
        for index, event in enumerate(self.trace.events):
            if event.kind == "listener":
                shard = controller.locate(event.page_id)
                if shard is None:
                    shard = self._effective_owner(
                        int(event.expected_time or 1)
                    )
                    routing["orphan_listeners"] += 1
                listener_shard[index] = shard
                routing["listeners_routed"] += 1
            else:
                state.handle_catalog(event)
        state.finish()
        return RoutedTrace(
            controller=controller,
            decisions=state.decisions,
            rebalances=state.rebalances,
            routing=routing,
            catalog_events=state.catalog_events,
            listener_shard=listener_shard,
        )

    def _route_columnar(self) -> RoutedTrace:
        """The hot pass: vectorised listener runs between catalog events.

        Catalog events take the exact sequential control path (shared
        :class:`_RouterState`); the listener runs between them resolve
        against a dense page→shard table refreshed from the controller's
        shadow state — refreshed lazily, only after catalog events, so a
        million listeners between two mutations cost two ``take``\\ s and
        a mask.  Trace sort order guarantees listeners at time ``t``
        precede catalog events at ``t``, so run boundaries land exactly
        where the sequential walk would put them.
        """
        state = _RouterState(self)
        events = self.trace.events
        times, is_listener, page_ids, expected = self.trace.columns()
        count = len(events)
        listener_shard = np.full(count, -1, dtype=np.int64)
        max_page = self._max_initial_page
        if count:
            max_page = max(max_page, int(page_ids.max()))
        dense = max_page < _LOCATION_LUT_LIMIT
        loc = (
            np.full(max_page + 1, -1, dtype=np.int64) if dense else None
        )
        loc_prev: np.ndarray | None = None
        dirty = True

        def refresh() -> None:
            nonlocal loc_prev, dirty
            locations = state.controller.locations
            pids = np.fromiter(
                locations.keys(), np.int64, len(locations)
            )
            shards_now = np.fromiter(
                locations.values(), np.int64, len(locations)
            )
            if loc_prev is not None:
                loc[loc_prev] = -1
            loc[pids] = shards_now
            loc_prev = pids
            dirty = False

        def route_run(lo: int, hi: int) -> None:
            nonlocal dirty
            pids = page_ids[lo:hi]
            if dense:
                if dirty:
                    refresh()
                shards_run = loc[pids]
            else:
                locations = state.controller.locations
                unique, inverse = np.unique(pids, return_inverse=True)
                owners = np.fromiter(
                    (
                        locations.get(int(p), -1)
                        for p in unique.tolist()
                    ),
                    np.int64,
                    unique.size,
                )
                shards_run = owners[inverse]
            orphan = shards_run < 0
            if orphan.any():
                exp = expected[lo:hi][orphan]
                values, inverse = np.unique(exp, return_inverse=True)
                # The expected column stores ``None`` as ``-1``; the
                # sequential fallback is ``int(expected_time or 1)``,
                # which maps both None and 0 to group 1.
                owners = np.fromiter(
                    (
                        self._effective_owner(int(v) if v > 0 else 1)
                        for v in values.tolist()
                    ),
                    np.int64,
                    values.size,
                )
                shards_run[orphan] = owners[inverse]
                state.routing["orphan_listeners"] += int(orphan.sum())
            listener_shard[lo:hi] = shards_run
            state.routing["listeners_routed"] += hi - lo

        cursor = 0
        for cat_index in np.flatnonzero(~is_listener).tolist():
            if cat_index > cursor:
                route_run(cursor, cat_index)
            state.handle_catalog(events[cat_index])
            dirty = True
            cursor = cat_index + 1
        if cursor < count:
            route_run(cursor, count)
        state.finish()
        return RoutedTrace(
            controller=state.controller,
            decisions=state.decisions,
            rebalances=state.rebalances,
            routing=state.routing,
            catalog_events=state.catalog_events,
            listener_shard=listener_shard,
        )

    # ------------------------------------------------------------------
    # Phase 2: shard replay
    # ------------------------------------------------------------------

    def _events_object_array(self) -> "np.ndarray":
        """The parent events as an object ndarray, memoised on the trace.

        Fancy-indexing this array is how inline sub-traces alias parent
        event objects: selecting 125k listeners costs one C-level take
        instead of 125k constructor calls.
        """
        cached = getattr(self.trace, "_object_array", None)
        if cached is None:
            cached = np.empty(len(self.trace.events), dtype=object)
            cached[:] = self.trace.events
            object.__setattr__(self.trace, "_object_array", cached)
        return cached

    def _subtrace_meta(self, shard: int) -> dict:
        return {
            "generator": "federation.router",
            "shard": shard,
            "shards": self.shards,
            "parent_fingerprint": self.trace.fingerprint(),
        }

    def _plan_args(self, shard: int) -> dict:
        return {
            "shard": shard,
            "initial": tuple(sorted(self.partition[shard].items())),
            "budget": self.budget,
            "admission": self.admission,
            "queue_limit": self.queue_limit,
            "slo_window": self.slo_window,
            "target_miss_rate": self.target_miss_rate,
            "replan_cooldown": self.replan_cooldown,
            "batch_listeners": self.batch_listeners,
            "warm_engine": self.warm_shard_pool,
        }

    def _shard_plans(
        self, routed: RoutedTrace, transport: str
    ) -> list[ShardPlan]:
        """Inline/pickle plans: sub-traces assembled in the parent."""
        times, _, page_ids, expected = self.trace.columns()
        objects = self._events_object_array()
        plans = []
        for shard in self.ring.shards:
            catalog_events = sorted(
                routed.catalog_events[shard], key=_event_sort_key
            )
            lis_idx = np.flatnonzero(routed.listener_shard == shard)
            trace = _assemble_subtrace(
                self.trace.horizon,
                self._subtrace_meta(shard),
                catalog_events,
                np.ascontiguousarray(times[lis_idx]),
                np.ascontiguousarray(page_ids[lis_idx]),
                np.ascontiguousarray(expected[lis_idx]),
                objects[lis_idx],
                with_columns=transport != "pickle",
            )
            plans.append(ShardPlan(trace=trace, **self._plan_args(shard)))
        return plans

    def _columnar_plans(
        self, routed: RoutedTrace
    ) -> tuple[list[ColumnarShardPlan], _FedShmPost]:
        """Zero-copy plans: listeners posted once into shared memory."""
        times, is_listener, page_ids, expected = self.trace.columns()
        lis_pos = np.flatnonzero(is_listener)
        lt = np.ascontiguousarray(times[lis_pos])
        lp = np.ascontiguousarray(page_ids[lis_pos])
        le = np.ascontiguousarray(expected[lis_pos])
        ls = np.ascontiguousarray(routed.listener_shard[lis_pos])
        post = _FedShmPost((lt, lp, le, ls))
        plans = []
        try:
            for shard in self.ring.shards:
                catalog_events = tuple(
                    sorted(
                        routed.catalog_events[shard], key=_event_sort_key
                    )
                )
                select = ls == shard
                meta = self._subtrace_meta(shard)
                fingerprint = fingerprint_columns(
                    self.trace.horizon,
                    meta,
                    *_merge_columns(
                        np.ascontiguousarray(lt[select]),
                        np.ascontiguousarray(lp[select]),
                        np.ascontiguousarray(le[select]),
                        catalog_events,
                    )[:4],
                    catalog_events,
                )
                plans.append(
                    ColumnarShardPlan(
                        horizon=self.trace.horizon,
                        meta=meta,
                        catalog_events=catalog_events,
                        fingerprint=fingerprint,
                        shm_name=post.name,
                        shm_size=post.size,
                        **self._plan_args(shard),
                    )
                )
        except Exception:
            post.close()
            raise
        return plans, post

    def run(
        self,
        *,
        workers: int = 1,
        mode: str = "serial",
        policy: ExecutionPolicy | None = None,
        telemetry=None,
        pool: TaskPool | None = None,
    ) -> FederationReport:
        """Route, then replay every shard (once per service instance).

        ``workers``/``mode``/``policy`` drive the executor fan-out; a
        persistent :class:`~repro.engine.executor.TaskPool` may be
        passed instead (its mode/width/policy then apply, and its
        workers stay warm across runs).  The report is identical for
        every combination (shard replays are pure), so ``mode="serial"``
        is the reference and pools are a pure wall-clock optimisation.

        Transport: process fan-out ships listeners through one
        shared-memory post (``policy.transport == "shm"``, the default)
        or per-plan pickles; serial and thread replay pass sub-traces
        inline, aliasing the parent trace's event objects.  The
        transport that actually ran is recorded in the report.
        """
        if self._report is not None:
            raise SimulationError(
                "this federation already ran; build a fresh service "
                "to replay again"
            )
        routed = self.route()
        effective_mode = pool.mode if pool is not None else mode
        effective_workers = (
            pool.workers if pool is not None else workers
        )
        effective_policy = policy or (
            pool.policy if pool is not None else None
        ) or ExecutionPolicy()
        pooled = (
            effective_mode == "process"
            and effective_workers > 1
            and len(self.ring.shards) > 1
        )
        transport = effective_policy.transport if pooled else "inline"
        post: _FedShmPost | None = None
        try:
            if transport == "shm":
                try:
                    plans, post = self._columnar_plans(routed)
                except OSError:
                    transport = "pickle"
            if post is None:
                plans = self._shard_plans(routed, transport)
            if pool is not None:
                outcomes, report = pool.run(
                    replay_shard_task,
                    plans,
                    policy=policy,
                    telemetry=telemetry,
                )
            else:
                outcomes, report = run_tasks(
                    replay_shard_task,
                    plans,
                    workers=workers,
                    mode=mode,
                    policy=policy,
                    telemetry=telemetry,
                )
        finally:
            if post is not None:
                post.close()
        shard_reports: list[dict] = []
        for plan, outcome in zip(plans, outcomes):
            if isinstance(outcome, dict):
                shard_reports.append(outcome)
            else:
                raise SimulationError(
                    f"shard {plan.shard} replay failed: "
                    f"{outcome.error_type}: {outcome.message}"
                )
        counters = {name: 0 for name in _AGGREGATED_COUNTERS}
        for summary in shard_reports:
            for name in _AGGREGATED_COUNTERS:
                counters[name] += int(summary["counters"][name])
        executor_block = report.as_dict()
        executor_block["workers"] = max(1, int(effective_workers))
        executor_block["transport"] = transport
        self._report = FederationReport(
            shards=self.shards,
            budget=self.budget,
            horizon=self.trace.horizon,
            seed=self.seed,
            trace_fingerprint=self.trace.fingerprint(),
            ring_fingerprint=self.ring.fingerprint(),
            group_assignment=dict(self.group_assignment),
            admission=routed.controller.as_dict(),
            decisions=tuple(routed.decisions),
            rebalances=tuple(routed.rebalances),
            routing=routed.routing,
            shard_reports=tuple(shard_reports),
            counters=counters,
            transport=transport,
            executor=executor_block,
        )
        return self._report
