"""Sharded multi-station federation over the live broadcast runtime.

One station serves one catalog under one channel budget; production
scale means many.  This package partitions a catalog across N station
shards via a deterministic group-aware consistent-hash ring
(:mod:`repro.federation.ring`), enforces the paper's Theorem-3.1
admission bound *federation-wide* (:mod:`repro.federation.admission`),
and replays each shard through its own live service with popularity-
drift rebalancing under a bounded reallocation budget
(:mod:`repro.federation.service`).
"""

from repro.federation.admission import (
    GlobalAdmissionController,
    GlobalAdmissionDecision,
    required_channels_of,
)
from repro.federation.ring import ShardRing, partition_catalog
from repro.federation.service import (
    FEDERATION_ROUTERS,
    FEDERATION_TRANSPORTS,
    ColumnarShardPlan,
    FederatedBroadcastService,
    FederationReport,
    RoutedTrace,
    ShardPlan,
    replay_shard_task,
)

__all__ = [
    "ColumnarShardPlan",
    "FEDERATION_ROUTERS",
    "FEDERATION_TRANSPORTS",
    "FederatedBroadcastService",
    "FederationReport",
    "GlobalAdmissionController",
    "GlobalAdmissionDecision",
    "RoutedTrace",
    "ShardPlan",
    "ShardRing",
    "partition_catalog",
    "replay_shard_task",
    "required_channels_of",
]
