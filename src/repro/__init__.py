"""repro — a reproduction of "Time-Constrained Service on Air" (ICDCS 2005).

Broadcast scheduling for wireless data dissemination under per-page
*expected times*: every client, no matter when it starts listening, should
receive the page it wants within that page's expected time — or, when the
channel budget makes that impossible, with the minimum average extra delay.

The three questions the paper answers, and where the answers live here:

1. *How many channels are minimally required?*
   :func:`repro.core.minimum_channels` (Theorem 3.1).
2. *How to schedule with that minimum?*
   :func:`repro.core.schedule_susc` (the SUSC algorithm — always produces
   a valid program).
3. *How to schedule with fewer channels?*
   :func:`repro.core.schedule_pamad` (the PAMAD heuristic — near-optimal
   average delay), with :mod:`repro.baselines` providing the paper's m-PB
   and OPT comparators.

Quick start::

    from repro import (
        instance_from_counts, plan_channels, schedule_susc, schedule_pamad,
    )

    instance = instance_from_counts(sizes=[3, 5, 3], expected_times=[2, 4, 8])
    plan = plan_channels(instance, available=3)
    schedule = (
        schedule_susc(instance)            # zero delay, needs plan.required
        if plan.sufficient
        else schedule_pamad(instance, 3)   # minimum average delay
    )
    print(schedule.program.render())

For repeated or production-scale work, drive everything through the
engine facade instead — cached scheduling, parallel sweeps, and a JSON
run manifest per call::

    from repro import BroadcastEngine

    engine = BroadcastEngine(workers=4)
    schedule = engine.schedule(instance, "pamad", channels=3)
    sweep = engine.sweep(instance, algorithms=("pamad", "m-pb", "opt"))
    print(sweep.manifest.to_json())

Subpackages:

* :mod:`repro.core` — data model, bounds, SUSC, PAMAD, delay models.
* :mod:`repro.baselines` — m-PB, OPT, drop-pages, flat round-robin.
* :mod:`repro.workload` — Figure-3 distributions and request streams.
* :mod:`repro.sim` — client replay, on-demand queueing, hybrid push/pull.
* :mod:`repro.resilience` — seeded fault timelines, recovery policies,
  churn replay measurement.
* :mod:`repro.live` — live broadcast runtime: mutation traces, admission
  control against the Theorem-3.1 bound, incremental rescheduling, SLO
  tracking, pull (LWF) baseline.
* :mod:`repro.analysis` — sweeps, statistics, experiment registry.
* :mod:`repro.engine` — the BroadcastEngine facade: scheduler registry
  (plugin API), program cache, hardened parallel sweep executor
  (timeout/retry/circuit-breaker), telemetry.
"""

from repro.core import (
    BroadcastProgram,
    ChannelPlan,
    FrequencyAssignment,
    Group,
    InsufficientChannelsError,
    InvalidInstanceError,
    Page,
    PamadSchedule,
    ProblemInstance,
    ProgramValidationError,
    ReproError,
    SchedulingError,
    SuscSchedule,
    ValidationReport,
    assert_valid_program,
    channel_load,
    instance_from_counts,
    instance_from_expected_times,
    minimum_channels,
    pamad_frequencies,
    plan_channels,
    program_average_delay,
    rearrange,
    schedule_pamad,
    schedule_susc,
    validate_program,
)
from repro.live import (
    LiveBroadcastService,
    LiveCatalog,
    MutationEvent,
    MutationTrace,
)
from repro.engine import (
    BroadcastEngine,
    EngineEvaluation,
    FederationResult,
    LiveServiceResult,
    RunManifest,
    ScheduleResult,
    SweepPoint,
    SweepResult,
    available_schedulers,
    default_engine,
    get_scheduler,
    register_scheduler,
)

__version__ = "1.10.0"

# Aliases removed after their deprecation period (they warned through
# PR 1-5); each maps to the replacement named in the error.  Served by
# ``__getattr__`` below as a loud AttributeError rather than silently
# matching nothing, so stale call sites get a precise migration hint.
_REMOVED_ALIASES = {
    "SCHEDULERS": (
        "repro.engine.available_schedulers() / register_scheduler()"
    ),
    "channel_sweep": "repro.BroadcastEngine.sweep()",
}


def __getattr__(name: str):
    replacement = _REMOVED_ALIASES.get(name)
    if replacement is not None:
        raise AttributeError(
            f"repro.{name} was deprecated and has been removed; use "
            f"{replacement} instead"
        )
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )


__all__ = [
    "BroadcastEngine",
    "BroadcastProgram",
    "ChannelPlan",
    "EngineEvaluation",
    "LiveBroadcastService",
    "LiveCatalog",
    "FederationResult",
    "LiveServiceResult",
    "MutationEvent",
    "MutationTrace",
    "RunManifest",
    "ScheduleResult",
    "SweepPoint",
    "SweepResult",
    "FrequencyAssignment",
    "Group",
    "InsufficientChannelsError",
    "InvalidInstanceError",
    "Page",
    "PamadSchedule",
    "ProblemInstance",
    "ProgramValidationError",
    "ReproError",
    "SchedulingError",
    "SuscSchedule",
    "ValidationReport",
    "__version__",
    "assert_valid_program",
    "available_schedulers",
    "channel_load",
    "default_engine",
    "get_scheduler",
    "register_scheduler",
    "instance_from_counts",
    "instance_from_expected_times",
    "minimum_channels",
    "pamad_frequencies",
    "plan_channels",
    "program_average_delay",
    "rearrange",
    "schedule_pamad",
    "schedule_susc",
    "validate_program",
]
