"""repro — a reproduction of "Time-Constrained Service on Air" (ICDCS 2005).

Broadcast scheduling for wireless data dissemination under per-page
*expected times*: every client, no matter when it starts listening, should
receive the page it wants within that page's expected time — or, when the
channel budget makes that impossible, with the minimum average extra delay.

The three questions the paper answers, and where the answers live here:

1. *How many channels are minimally required?*
   :func:`repro.core.minimum_channels` (Theorem 3.1).
2. *How to schedule with that minimum?*
   :func:`repro.core.schedule_susc` (the SUSC algorithm — always produces
   a valid program).
3. *How to schedule with fewer channels?*
   :func:`repro.core.schedule_pamad` (the PAMAD heuristic — near-optimal
   average delay), with :mod:`repro.baselines` providing the paper's m-PB
   and OPT comparators.

Quick start::

    from repro import (
        instance_from_counts, plan_channels, schedule_susc, schedule_pamad,
    )

    instance = instance_from_counts(sizes=[3, 5, 3], expected_times=[2, 4, 8])
    plan = plan_channels(instance, available=3)
    schedule = (
        schedule_susc(instance)            # zero delay, needs plan.required
        if plan.sufficient
        else schedule_pamad(instance, 3)   # minimum average delay
    )
    print(schedule.program.render())

Subpackages:

* :mod:`repro.core` — data model, bounds, SUSC, PAMAD, delay models.
* :mod:`repro.baselines` — m-PB, OPT, drop-pages, flat round-robin.
* :mod:`repro.workload` — Figure-3 distributions and request streams.
* :mod:`repro.sim` — client replay, on-demand queueing, hybrid push/pull.
* :mod:`repro.analysis` — sweeps, statistics, experiment registry.
"""

from repro.core import (
    BroadcastProgram,
    ChannelPlan,
    FrequencyAssignment,
    Group,
    InsufficientChannelsError,
    InvalidInstanceError,
    Page,
    PamadSchedule,
    ProblemInstance,
    ProgramValidationError,
    ReproError,
    SchedulingError,
    SuscSchedule,
    ValidationReport,
    assert_valid_program,
    channel_load,
    instance_from_counts,
    instance_from_expected_times,
    minimum_channels,
    pamad_frequencies,
    plan_channels,
    program_average_delay,
    rearrange,
    schedule_pamad,
    schedule_susc,
    validate_program,
)

__version__ = "1.0.0"

__all__ = [
    "BroadcastProgram",
    "ChannelPlan",
    "FrequencyAssignment",
    "Group",
    "InsufficientChannelsError",
    "InvalidInstanceError",
    "Page",
    "PamadSchedule",
    "ProblemInstance",
    "ProgramValidationError",
    "ReproError",
    "SchedulingError",
    "SuscSchedule",
    "ValidationReport",
    "__version__",
    "assert_valid_program",
    "channel_load",
    "instance_from_counts",
    "instance_from_expected_times",
    "minimum_channels",
    "pamad_frequencies",
    "plan_channels",
    "program_average_delay",
    "rearrange",
    "schedule_pamad",
    "schedule_susc",
    "validate_program",
]
