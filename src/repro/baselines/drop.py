"""The drop-pages strategy — Section 4's rejected "first solution".

When channels are insufficient, one can simply drop pages from the
broadcast list until the remainder fits the Theorem-3.1 bound, then run
SUSC on what is left.  The paper rejects this because every dropped page's
clients spill onto the on-demand channels, degrading their quality of
service — but it is the natural strawman, so we implement it both as a
baseline and as the workload source for the EXT1 on-demand-congestion
experiment (:mod:`repro.sim.hybrid`).

Two drop policies:

* ``fewest-drops`` — drop pages from the most *urgent* group first: each
  ``G_1`` page frees ``1/t_1`` channels of load, the most per page, so the
  bound is met with the fewest pages removed.
* ``keep-urgent`` — drop pages from the most *relaxed* group first,
  preserving urgent content at the cost of dropping more pages.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import SchedulingError, WorkloadError
from repro.core.intmath import ceil_div
from repro.core.pages import Group, Page, ProblemInstance
from repro.core.program import BroadcastProgram
from repro.core.susc import schedule_susc

__all__ = ["DropSchedule", "schedule_drop"]

_POLICIES = ("fewest-drops", "keep-urgent")


@dataclass(frozen=True)
class DropSchedule:
    """Output of the drop-pages baseline.

    Attributes:
        program: A *valid* program over the kept pages (SUSC output).
        instance: The original (full) instance.
        kept_instance: The reduced instance actually scheduled.
        num_channels: ``N_real`` used.
        dropped_pages: Pages removed from the broadcast; their clients must
            use the on-demand channel.
        dropped_fraction: ``len(dropped) / n`` — with uniform access, the
            probability a random request cannot be served from the air.
    """

    program: BroadcastProgram
    instance: ProblemInstance
    kept_instance: ProblemInstance
    num_channels: int
    dropped_pages: tuple[Page, ...]
    dropped_fraction: float

    @property
    def average_delay(self) -> float:
        """Analytic AvgD over the *kept* pages (zero — SUSC output).

        Dropped pages never appear on the air, so this is the broadcast
        side's metric only; the on-demand spill is what EXT1 measures.
        """
        from repro.core.delay import program_average_delay

        return program_average_delay(self.program, self.kept_instance)

    @property
    def meta(self) -> dict:
        """Scheduler diagnostics (the ScheduleResult protocol's ``meta``)."""
        return {
            "scheduler": "drop",
            "num_channels": self.num_channels,
            "dropped_pages": len(self.dropped_pages),
            "dropped_fraction": self.dropped_fraction,
        }


def _drop_order(instance: ProblemInstance, policy: str) -> list[Group]:
    if policy == "fewest-drops":
        return list(instance.groups)  # most urgent (largest load) first
    if policy == "keep-urgent":
        return list(reversed(instance.groups))
    raise WorkloadError(
        f"unknown drop policy {policy!r}; choose from {_POLICIES}"
    )


def schedule_drop(
    instance: ProblemInstance,
    num_channels: int,
    policy: str = "fewest-drops",
) -> DropSchedule:
    """Drop pages until SUSC fits, then schedule the remainder.

    Args:
        instance: The full problem instance.
        num_channels: Channels actually available.
        policy: ``fewest-drops`` or ``keep-urgent`` (see module docstring).

    Returns:
        A :class:`DropSchedule`; the program is valid for every kept page.

    Raises:
        SchedulingError: If even a single page per remaining group cannot
            fit (i.e. ``num_channels`` < 1, which the grid already rejects,
            or every page of every group was dropped).
    """
    if num_channels < 1:
        raise SchedulingError(
            f"cannot broadcast on {num_channels} channels"
        )
    # Track how many pages each group keeps; start with everything.
    kept_counts = {g.index: g.size for g in instance.groups}
    drop_sequence = _drop_order(instance, policy)

    def current_bound() -> int:
        t_h = instance.max_expected_time
        numerator = sum(
            kept_counts[g.index] * (t_h // g.expected_time)
            for g in instance.groups
            if kept_counts[g.index] > 0
        )
        return ceil_div(numerator, t_h) if numerator else 0

    position = 0
    while current_bound() > num_channels:
        while (
            position < len(drop_sequence)
            and kept_counts[drop_sequence[position].index] == 0
        ):
            position += 1
        if position >= len(drop_sequence):
            raise SchedulingError(
                "dropped every page and the bound still exceeds "
                f"{num_channels} channel(s)"
            )
        kept_counts[drop_sequence[position].index] -= 1

    kept_groups: list[Group] = []
    dropped: list[Page] = []
    next_index = 1
    for group in instance.groups:
        keep = kept_counts[group.index]
        kept_pages = group.pages[:keep]
        dropped.extend(group.pages[keep:])
        if kept_pages:
            kept_groups.append(
                Group(
                    index=next_index,
                    expected_time=group.expected_time,
                    pages=tuple(
                        Page(
                            page_id=p.page_id,
                            group_index=next_index,
                            expected_time=p.expected_time,
                        )
                        for p in kept_pages
                    ),
                )
            )
            next_index += 1
    if not kept_groups:
        raise SchedulingError("drop policy removed every page")
    kept_instance = ProblemInstance(groups=tuple(kept_groups))

    susc = schedule_susc(kept_instance, num_channels=num_channels)
    return DropSchedule(
        program=susc.program,
        instance=instance,
        kept_instance=kept_instance,
        num_channels=num_channels,
        dropped_pages=tuple(dropped),
        dropped_fraction=len(dropped) / instance.n,
    )
