"""Flat round-robin baseline — the degenerate broadcast-disk program.

The classic single-frequency broadcast cycle (Acharya et al.'s flat disk):
every page appears exactly once per cycle regardless of its expected time.
It ignores deadlines entirely, which makes it the natural *lower* baseline
for the evaluation: any deadline-aware scheduler should beat it whenever
expected times differ across groups, and tests assert PAMAD does.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.delay import program_average_delay
from repro.core.pages import ProblemInstance
from repro.core.pamad import place_by_frequency
from repro.core.program import BroadcastProgram

__all__ = ["FlatSchedule", "schedule_flat"]


@dataclass(frozen=True)
class FlatSchedule:
    """Output of the flat round-robin baseline."""

    program: BroadcastProgram
    instance: ProblemInstance
    num_channels: int
    average_delay: float

    @property
    def meta(self) -> dict:
        """Scheduler diagnostics (the ScheduleResult protocol's ``meta``)."""
        return {
            "scheduler": "flat",
            "num_channels": self.num_channels,
            "cycle_length": self.program.cycle_length,
        }


def schedule_flat(
    instance: ProblemInstance, num_channels: int
) -> FlatSchedule:
    """Broadcast every page once per cycle, evenly spread.

    Cycle length is ``ceil(n / N_real)`` — the shortest cycle that holds
    every page once.

    Args:
        instance: The problem instance.
        num_channels: Channels available.
    """
    frequencies = [1] * instance.h
    placement = place_by_frequency(instance, frequencies, num_channels)
    return FlatSchedule(
        program=placement.program,
        instance=instance,
        num_channels=num_channels,
        average_delay=program_average_delay(placement.program, instance),
    )
