"""m-PB — the modified Periodic Broadcast baseline (Section 5).

The paper compares PAMAD against the periodic broadcast (PB) method of
Xuan et al. (RTAS'97), extended to multiple channels: PB keeps every
page's *sufficient-channel* broadcast frequency — group ``G_i`` appears
``t_h / t_i`` times per cycle, exactly as in a valid program — even when
the channels cannot carry that much content per ``t_h`` window.  The major
cycle therefore stretches beyond ``t_h`` ("keeping the same broadcast
frequency of a data page ... incurs a longer major broadcast cycle") and
every page's inter-appearance gap inflates by the same factor.

Per the paper's fairness note, once the frequencies are fixed the pages
are placed with exactly PAMAD's Algorithm-4 even-spreading placement
(:func:`repro.core.pamad.place_by_frequency`), so PAMAD vs m-PB compares
*frequency selection* only.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.delay import program_average_delay
from repro.core.frequencies import (
    FrequencyAssignment,
    sufficient_channel_frequencies,
)
from repro.core.pages import ProblemInstance
from repro.core.pamad import place_by_frequency
from repro.core.program import BroadcastProgram

__all__ = ["MpbSchedule", "schedule_mpb"]


@dataclass(frozen=True)
class MpbSchedule:
    """Output of the m-PB baseline.

    Attributes:
        program: The generated program (cycle stretches beyond ``t_h``
            whenever channels are insufficient).
        instance: The scheduled instance.
        num_channels: ``N_real`` used.
        assignment: The fixed sufficient-channel frequencies
            ``S_i = t_h / t_i``.
        window_misses: Algorithm-4 fallback count.
        average_delay: Analytic AvgD of the generated program.
    """

    program: BroadcastProgram
    instance: ProblemInstance
    num_channels: int
    assignment: FrequencyAssignment
    window_misses: int
    average_delay: float

    @property
    def meta(self) -> dict:
        """Scheduler diagnostics (the ScheduleResult protocol's ``meta``)."""
        return {
            "scheduler": "m-pb",
            "num_channels": self.num_channels,
            "frequencies": list(self.assignment.frequencies),
            "window_misses": self.window_misses,
        }


def schedule_mpb(
    instance: ProblemInstance, num_channels: int
) -> MpbSchedule:
    """Run the m-PB baseline.

    Args:
        instance: The problem instance.
        num_channels: Channels actually available; with sufficient channels
            m-PB produces a valid program (it *is* the valid frequency set),
            the interesting regime is below the Theorem-3.1 bound.

    Returns:
        An :class:`MpbSchedule`.
    """
    assignment = sufficient_channel_frequencies(instance, num_channels)
    placement = place_by_frequency(
        instance, assignment.frequencies, num_channels
    )
    return MpbSchedule(
        program=placement.program,
        instance=instance,
        num_channels=num_channels,
        assignment=assignment,
        window_misses=placement.window_misses,
        average_delay=program_average_delay(placement.program, instance),
    )
