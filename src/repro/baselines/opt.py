"""OPT — exhaustive frequency search (Section 5).

The paper's optimal comparator "exhaustively searches for a set of optimal
broadcast frequencies that incurs the minimum delay" (its searching time
being "unacceptably high" is the point of PAMAD).  Two searches live here:

* :func:`opt_frequencies` — a joint depth-first search over the staged
  frequency family PAMAD draws from (``S_i = prod(r_i..r_{h-1})``, each
  ``r`` bounded by Algorithm 3's loop bound).  Where PAMAD *commits* each
  ``r_{i-1}`` greedily stage by stage, OPT explores the full product space
  and minimises the final-stage objective — the exact "progressive vs
  exhaustive" comparison the evaluation makes.

* :func:`brute_force_frequencies` — a cap-bounded search over *arbitrary*
  frequency vectors ``S in {1..cap}^h`` (no product structure), feasible
  only for small instances.  Tests use it to confirm the staged family is
  not leaving delay on the table on small cases.

Both return the same :class:`~repro.core.frequencies.FrequencyAssignment`
shape as PAMAD, and :func:`schedule_opt` reuses PAMAD's Algorithm-4
placement, so the three systems differ only in frequency selection.

Both searches accept ``prune=True`` (the default): a branch-and-bound
that returns the *exact* reference result while visiting a fraction of
the tree.  The bound exploits that the most relaxed group ``G_h`` has
``S_h = 1``, so its Equation-2 term

``lb(F) = (P_h / F) * max(F/N - t_h, 0) * max((ceil(F/N) - t_h)/2, 0)``

depends only on the total slot count ``F`` — and is non-decreasing in
``F`` (real arithmetic: ``(F/N - t_h)/F = 1/N - t_h/F`` grows with
``F``, the ceil factor is monotone, the product of non-negative
monotone factors is monotone).  Every completion of a partial vector
has ``F >= F_min`` (all remaining multipliers at their minimum of 1),
so ``lb(F_min)`` under-estimates every leaf in the subtree.  The
reference only *accepts* a leaf when ``delay < best - 1e-12``; pruning
when ``lb(F_min)`` (shaved by a relative ``1e-12`` guard, orders of
magnitude wider than the few-ulp float error of the bound expression)
reaches ``best - 1e-12`` therefore cannot discard any leaf the
reference would have accepted, and candidate loops may *break* at the
first pruned candidate because ``F_min`` grows with the candidate.
Leaves that survive are evaluated in reference order through the
bit-identical batch kernel
:func:`repro.core.delay.paper_group_delay_batch`, so the
incumbent evolves exactly as in the reference walk — same minimum,
same tie-breaks, same returned vector.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass

from repro.core.delay import (
    paper_group_delay,
    paper_group_delay_batch,
    program_average_delay,
)
from repro.core.errors import SearchSpaceError
from repro.core.frequencies import (
    FrequencyAssignment,
    frequencies_from_r,
    r_upper_bound,
)
from repro.core.pages import ProblemInstance
from repro.core.pamad import place_by_frequency
from repro.core.program import BroadcastProgram

__all__ = [
    "OptSchedule",
    "opt_frequencies",
    "brute_force_frequencies",
    "schedule_opt",
]


def _fixed_term(
    s_i: int, p_i: int, t_i: int, slots: int, num_channels: int
) -> float:
    """One group's Equation-2 contribution at slot count ``slots``.

    For a group whose frequency ``s_i`` is already fixed, the real-valued
    contribution is non-decreasing in the total slot count ``F``
    (``(s_i p_i / F)(F/(N s_i) - t_i) = p_i/N - s_i p_i t_i / F`` grows
    with ``F``; the clamped cycle factor is monotone; a product of
    non-negative monotone factors is monotone).  Evaluating at the
    subtree's minimal ``F`` therefore under-estimates every leaf's
    contribution.
    """
    weight = (s_i * p_i) / slots
    spacing_real = slots / (num_channels * s_i)
    spacing_cycle = (-(-slots // num_channels)) / s_i
    return weight * (
        max(spacing_real - t_i, 0.0)
        * max((spacing_cycle - t_i) / 2.0, 0.0)
    )


def _shave(bound: float) -> float:
    """Relative ``1e-12`` guard band for the analytic lower bounds.

    Orders of magnitude wider than the few-ulp (~1e-15 relative)
    disagreement possible between a bound expression and the scalar
    objective's float rounding, so a pruned subtree provably contains no
    leaf the reference's ``delay < best - 1e-12`` rule would accept.
    """
    return bound - bound * 1e-12


def _tail_lower_bound(
    slots_min: int, p_h: int, t_h: int, num_channels: int
) -> float:
    """Conservative lower bound on Equation (2) for any leaf with
    ``F >= slots_min`` — the ``S_h = 1`` group's contribution alone."""
    return _shave(_fixed_term(1, p_h, t_h, slots_min, num_channels))


def opt_frequencies(
    instance: ProblemInstance,
    num_channels: int,
    max_r: int | None = None,
    prune: bool = True,
) -> FrequencyAssignment:
    """Joint DFS over all staged ``r`` vectors, minimising final delay.

    Args:
        instance: The problem instance.
        num_channels: ``N_real``.
        max_r: Optional hard cap on each ``r`` (on top of Algorithm 3's
            bound) to keep worst-case runtime bounded; ``None`` searches
            the full per-stage bound.
        prune: Branch-and-bound with the memoised Theorem-3.1-flavoured
            tail bound plus batch leaf evaluation (default).  Returns
            the *identical* assignment as the exhaustive walk
            (``prune=False``), only faster; property tests pin the
            equality.

    Returns:
        The delay-minimising :class:`FrequencyAssignment` (ties break
        toward the lexicographically smallest ``r`` vector — least
        bandwidth).
    """
    if num_channels <= 0:
        raise SearchSpaceError(
            f"num_channels must be positive, got {num_channels}"
        )
    sizes = instance.group_sizes
    times = instance.expected_times
    h = instance.h

    best_r: tuple[int, ...] = ()
    best_delay = math.inf

    def evaluate(r_values: list[int]) -> float:
        frequencies = frequencies_from_r(r_values, h)
        return paper_group_delay(
            frequencies, sizes, times, num_channels
        )

    def descend(r_values: list[int], stage: int) -> None:
        nonlocal best_r, best_delay
        if stage > h:
            delay = evaluate(r_values)
            if delay < best_delay - 1e-12:
                best_delay = delay
                best_r = tuple(r_values)
            return
        bound = r_upper_bound(r_values, stage, sizes, times, num_channels)
        if max_r is not None:
            bound = min(bound, max_r)
        for candidate in range(1, bound + 1):
            r_values.append(candidate)
            descend(r_values, stage + 1)
            r_values.pop()

    # -- pruned walk ---------------------------------------------------
    lb_memo: dict[int, float] = {}
    p_h, t_h = sizes[-1], times[-1]

    def min_completion_slots(r_values: list[int]) -> int:
        """``F`` when every not-yet-chosen multiplier is 1 — the minimum
        over the subtree, since frequencies only grow with each ``r``."""
        padded = r_values + [1] * (h - 1 - len(r_values))
        frequencies = frequencies_from_r(padded, h)
        return sum(s * p for s, p in zip(frequencies, sizes))

    def subtree_bound(r_values: list[int]) -> float:
        slots_min = min_completion_slots(r_values)
        cached = lb_memo.get(slots_min)
        if cached is None:
            cached = _tail_lower_bound(
                slots_min, p_h, t_h, num_channels
            )
            lb_memo[slots_min] = cached
        return cached

    def flush(rows: list, labels: list) -> None:
        """Batch-evaluate collected leaves, scanning in reference order.

        Tiny batches go through the scalar objective directly — below a
        dozen rows the numpy call setup costs more than it saves, and
        the scalar IS the reference, so bit-identity is trivial.
        """
        nonlocal best_r, best_delay
        if not rows:
            return
        if len(rows) < 16:
            delays = [
                paper_group_delay(row, sizes, times, num_channels)
                for row in rows
            ]
        else:
            delays = paper_group_delay_batch(
                rows, sizes, times, num_channels
            )
        for label, delay in zip(labels, delays):
            if delay < best_delay - 1e-12:
                best_delay = float(delay)
                best_r = label

    def descend_pruned(r_values: list[int], stage: int) -> None:
        nonlocal best_r, best_delay
        bound = r_upper_bound(r_values, stage, sizes, times, num_channels)
        if max_r is not None:
            bound = min(bound, max_r)
        if stage == h:
            # Last stage (only reached directly when h == 2): every
            # candidate is a leaf — one batch, scanned in order.
            flush(
                [
                    frequencies_from_r(r_values + [c], h)
                    for c in range(1, bound + 1)
                ],
                [tuple(r_values) + (c,) for c in range(1, bound + 1)],
            )
            return
        if stage == h - 1:
            # Penultimate stage: bound-check each candidate, then gather
            # all surviving final-stage leaves into ONE batch.  The
            # incumbent is only refreshed after the flush — pruning with
            # the slightly stale (never smaller) best is conservative,
            # so the scan still reproduces the reference walk exactly.
            rows: list = []
            labels: list = []
            for candidate in range(1, bound + 1):
                r_values.append(candidate)
                if subtree_bound(r_values) >= best_delay - 1e-12:
                    r_values.pop()
                    break
                inner = r_upper_bound(
                    r_values, h, sizes, times, num_channels
                )
                if max_r is not None:
                    inner = min(inner, max_r)
                prefix = tuple(r_values)
                for c2 in range(1, inner + 1):
                    rows.append(frequencies_from_r(r_values + [c2], h))
                    labels.append(prefix + (c2,))
                r_values.pop()
            flush(rows, labels)
            return
        for candidate in range(1, bound + 1):
            r_values.append(candidate)
            if subtree_bound(r_values) >= best_delay - 1e-12:
                # F_min grows with the candidate, so later candidates
                # bound at least as high: stop the whole loop.
                r_values.pop()
                break
            descend_pruned(r_values, stage + 1)
            r_values.pop()

    if h == 1:
        best_r, best_delay = (), evaluate([])
    elif prune:
        descend_pruned([], 2)
    else:
        descend([], 2)

    frequencies = frequencies_from_r(list(best_r), h)
    return FrequencyAssignment(
        frequencies=frequencies,
        r_values=best_r,
        num_channels=num_channels,
        stage_delays=(),
        predicted_delay=best_delay,
    )


def brute_force_frequencies(
    instance: ProblemInstance,
    num_channels: int,
    cap: int = 8,
    objective=paper_group_delay,
    prune: bool = True,
) -> FrequencyAssignment:
    """Search *arbitrary* frequency vectors ``S in {1..cap}^h``.

    Exponential in ``h`` — intended for instances with ``h <= 4`` in tests
    and the ABL1 ablation.  ``S_h`` is pinned to 1 (broadcasting the most
    relaxed group more than once per cycle only inflates the cycle, and any
    uniform scaling of ``S`` represents the same program family).

    Args:
        instance: The problem instance (small!).
        num_channels: ``N_real``.
        cap: Upper bound per frequency.
        objective: Delay functional ``f(S, P, t, N) -> float``; defaults to
            the paper-literal Equation (2).
        prune: Branch-and-bound + batch evaluation returning the exact
            exhaustive result (default).  The analytic tail bound is
            specific to Equation (2), so a custom ``objective`` always
            takes the exhaustive path regardless of this flag.

    Raises:
        SearchSpaceError: If the search space exceeds ~2 million vectors.
    """
    h = instance.h
    space = cap ** (h - 1)
    if space > 2_000_000:
        raise SearchSpaceError(
            f"brute force over cap={cap}, h={h} would evaluate {space} "
            "vectors; reduce the instance or the cap"
        )
    sizes = instance.group_sizes
    times = instance.expected_times

    if prune and objective is paper_group_delay and h > 1:
        return _brute_force_pruned(instance, num_channels, cap)

    best: tuple[int, ...] | None = None
    best_delay = math.inf
    for prefix in itertools.product(range(1, cap + 1), repeat=h - 1):
        frequencies = (*prefix, 1)
        delay = objective(frequencies, sizes, times, num_channels)
        if delay < best_delay - 1e-12:
            best, best_delay = frequencies, delay
    assert best is not None  # at least (1, ..., 1) was evaluated
    return FrequencyAssignment(
        frequencies=best,
        r_values=(),
        num_channels=num_channels,
        stage_delays=(),
        predicted_delay=best_delay,
    )


def _brute_force_pruned(
    instance: ProblemInstance, num_channels: int, cap: int
) -> FrequencyAssignment:
    """Branch-and-bound twin of the exhaustive product walk.

    Explores prefixes depth-first in the same lexicographic order as
    ``itertools.product``, bounds each prefix subtree by the memoised
    Equation-2 tail bound at the subtree's minimum slot count, and
    evaluates the innermost position as one bit-identical batch — the
    incumbent therefore evolves exactly as in the exhaustive scan.
    """
    h = instance.h
    sizes = instance.group_sizes
    times = instance.expected_times
    p_h, t_h = sizes[-1], times[-1]

    best: tuple[int, ...] | None = None
    best_delay = math.inf

    # Choosing 1 for every open position minimises F over a subtree;
    # suffix_min[i] = sum of sizes of groups i.. with frequency 1.
    suffix_min = [0] * (h + 1)
    for i in range(h - 1, -1, -1):
        suffix_min[i] = suffix_min[i + 1] + sizes[i]

    def prefix_bound(prefix: list[int], slots_min: int) -> float:
        """Lower bound from every already-fixed frequency plus ``G_h``.

        Each fixed group's contribution is monotone in ``F`` (see
        :func:`_fixed_term`), a left-to-right float sum of non-negative
        terms never exceeds the same sum with extra terms interleaved,
        and the shave absorbs ulp-level rounding — so this stays below
        every leaf delay in the subtree.
        """
        total = _fixed_term(1, p_h, t_h, slots_min, num_channels)
        for i, s_i in enumerate(prefix):
            total += _fixed_term(
                s_i, sizes[i], times[i], slots_min, num_channels
            )
        return _shave(total)

    def walk(prefix: list[int], slots_so_far: int, position: int) -> None:
        nonlocal best, best_delay
        if position == h - 2:
            # Innermost free position: the reference evaluates candidates
            # 1..cap in order; one batch reproduces that scan exactly
            # (scalar below the numpy break-even, same rationale as the
            # staged search's flush).
            rows = [(*prefix, c, 1) for c in range(1, cap + 1)]
            if cap < 16:
                delays = [
                    paper_group_delay(row, sizes, times, num_channels)
                    for row in rows
                ]
            else:
                delays = paper_group_delay_batch(
                    rows, sizes, times, num_channels
                )
            for row, delay in zip(rows, delays):
                if delay < best_delay - 1e-12:
                    best, best_delay = tuple(row), float(delay)
            return
        for candidate in range(1, cap + 1):
            slots = slots_so_far + candidate * sizes[position]
            slots_min = slots + suffix_min[position + 1]
            # Break on the candidate-monotone part of the bound (the
            # candidate's own term is NOT monotone in the candidate —
            # its weight dilutes as F grows — so it may only veto this
            # one subtree, not the rest of the loop).
            if prefix_bound(prefix, slots_min) >= best_delay - 1e-12:
                break
            own = _shave(
                _fixed_term(
                    candidate,
                    sizes[position],
                    times[position],
                    slots_min,
                    num_channels,
                )
            )
            if own >= best_delay - 1e-12:
                continue
            prefix.append(candidate)
            walk(prefix, slots, position + 1)
            prefix.pop()

    walk([], 0, 0)
    assert best is not None
    return FrequencyAssignment(
        frequencies=best,
        r_values=(),
        num_channels=num_channels,
        stage_delays=(),
        predicted_delay=best_delay,
    )


@dataclass(frozen=True)
class OptSchedule:
    """Output of the OPT baseline (search + Algorithm-4 placement)."""

    program: BroadcastProgram
    instance: ProblemInstance
    num_channels: int
    assignment: FrequencyAssignment
    window_misses: int
    average_delay: float

    @property
    def meta(self) -> dict:
        """Scheduler diagnostics (the ScheduleResult protocol's ``meta``)."""
        return {
            "scheduler": "opt",
            "num_channels": self.num_channels,
            "frequencies": list(self.assignment.frequencies),
            "predicted_delay": self.assignment.predicted_delay,
            "window_misses": self.window_misses,
        }


def schedule_opt(
    instance: ProblemInstance,
    num_channels: int,
    max_r: int | None = None,
) -> OptSchedule:
    """Run the OPT baseline end to end.

    Args:
        instance: The problem instance.
        num_channels: ``N_real``.
        max_r: Optional per-stage cap forwarded to :func:`opt_frequencies`.
    """
    assignment = opt_frequencies(instance, num_channels, max_r=max_r)
    placement = place_by_frequency(
        instance, assignment.frequencies, num_channels
    )
    return OptSchedule(
        program=placement.program,
        instance=instance,
        num_channels=num_channels,
        assignment=assignment,
        window_misses=placement.window_misses,
        average_delay=program_average_delay(placement.program, instance),
    )
