"""OPT — exhaustive frequency search (Section 5).

The paper's optimal comparator "exhaustively searches for a set of optimal
broadcast frequencies that incurs the minimum delay" (its searching time
being "unacceptably high" is the point of PAMAD).  Two searches live here:

* :func:`opt_frequencies` — a joint depth-first search over the staged
  frequency family PAMAD draws from (``S_i = prod(r_i..r_{h-1})``, each
  ``r`` bounded by Algorithm 3's loop bound).  Where PAMAD *commits* each
  ``r_{i-1}`` greedily stage by stage, OPT explores the full product space
  and minimises the final-stage objective — the exact "progressive vs
  exhaustive" comparison the evaluation makes.

* :func:`brute_force_frequencies` — a cap-bounded search over *arbitrary*
  frequency vectors ``S in {1..cap}^h`` (no product structure), feasible
  only for small instances.  Tests use it to confirm the staged family is
  not leaving delay on the table on small cases.

Both return the same :class:`~repro.core.frequencies.FrequencyAssignment`
shape as PAMAD, and :func:`schedule_opt` reuses PAMAD's Algorithm-4
placement, so the three systems differ only in frequency selection.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass

from repro.core.delay import paper_group_delay, program_average_delay
from repro.core.errors import SearchSpaceError
from repro.core.frequencies import (
    FrequencyAssignment,
    frequencies_from_r,
    r_upper_bound,
)
from repro.core.pages import ProblemInstance
from repro.core.pamad import place_by_frequency
from repro.core.program import BroadcastProgram

__all__ = [
    "OptSchedule",
    "opt_frequencies",
    "brute_force_frequencies",
    "schedule_opt",
]


def opt_frequencies(
    instance: ProblemInstance,
    num_channels: int,
    max_r: int | None = None,
) -> FrequencyAssignment:
    """Joint DFS over all staged ``r`` vectors, minimising final delay.

    Args:
        instance: The problem instance.
        num_channels: ``N_real``.
        max_r: Optional hard cap on each ``r`` (on top of Algorithm 3's
            bound) to keep worst-case runtime bounded; ``None`` searches
            the full per-stage bound.

    Returns:
        The delay-minimising :class:`FrequencyAssignment` (ties break
        toward the lexicographically smallest ``r`` vector — least
        bandwidth).
    """
    if num_channels <= 0:
        raise SearchSpaceError(
            f"num_channels must be positive, got {num_channels}"
        )
    sizes = instance.group_sizes
    times = instance.expected_times
    h = instance.h

    best_r: tuple[int, ...] = ()
    best_delay = math.inf

    def evaluate(r_values: list[int]) -> float:
        frequencies = frequencies_from_r(r_values, h)
        return paper_group_delay(
            frequencies, sizes, times, num_channels
        )

    def descend(r_values: list[int], stage: int) -> None:
        nonlocal best_r, best_delay
        if stage > h:
            delay = evaluate(r_values)
            if delay < best_delay - 1e-12:
                best_delay = delay
                best_r = tuple(r_values)
            return
        bound = r_upper_bound(r_values, stage, sizes, times, num_channels)
        if max_r is not None:
            bound = min(bound, max_r)
        for candidate in range(1, bound + 1):
            r_values.append(candidate)
            descend(r_values, stage + 1)
            r_values.pop()

    if h == 1:
        best_r, best_delay = (), evaluate([])
    else:
        descend([], 2)

    frequencies = frequencies_from_r(list(best_r), h)
    return FrequencyAssignment(
        frequencies=frequencies,
        r_values=best_r,
        num_channels=num_channels,
        stage_delays=(),
        predicted_delay=best_delay,
    )


def brute_force_frequencies(
    instance: ProblemInstance,
    num_channels: int,
    cap: int = 8,
    objective=paper_group_delay,
) -> FrequencyAssignment:
    """Search *arbitrary* frequency vectors ``S in {1..cap}^h``.

    Exponential in ``h`` — intended for instances with ``h <= 4`` in tests
    and the ABL1 ablation.  ``S_h`` is pinned to 1 (broadcasting the most
    relaxed group more than once per cycle only inflates the cycle, and any
    uniform scaling of ``S`` represents the same program family).

    Args:
        instance: The problem instance (small!).
        num_channels: ``N_real``.
        cap: Upper bound per frequency.
        objective: Delay functional ``f(S, P, t, N) -> float``; defaults to
            the paper-literal Equation (2).

    Raises:
        SearchSpaceError: If the search space exceeds ~2 million vectors.
    """
    h = instance.h
    space = cap ** (h - 1)
    if space > 2_000_000:
        raise SearchSpaceError(
            f"brute force over cap={cap}, h={h} would evaluate {space} "
            "vectors; reduce the instance or the cap"
        )
    sizes = instance.group_sizes
    times = instance.expected_times

    best: tuple[int, ...] | None = None
    best_delay = math.inf
    for prefix in itertools.product(range(1, cap + 1), repeat=h - 1):
        frequencies = (*prefix, 1)
        delay = objective(frequencies, sizes, times, num_channels)
        if delay < best_delay - 1e-12:
            best, best_delay = frequencies, delay
    assert best is not None  # at least (1, ..., 1) was evaluated
    return FrequencyAssignment(
        frequencies=best,
        r_values=(),
        num_channels=num_channels,
        stage_delays=(),
        predicted_delay=best_delay,
    )


@dataclass(frozen=True)
class OptSchedule:
    """Output of the OPT baseline (search + Algorithm-4 placement)."""

    program: BroadcastProgram
    instance: ProblemInstance
    num_channels: int
    assignment: FrequencyAssignment
    window_misses: int
    average_delay: float

    @property
    def meta(self) -> dict:
        """Scheduler diagnostics (the ScheduleResult protocol's ``meta``)."""
        return {
            "scheduler": "opt",
            "num_channels": self.num_channels,
            "frequencies": list(self.assignment.frequencies),
            "predicted_delay": self.assignment.predicted_delay,
            "window_misses": self.window_misses,
        }


def schedule_opt(
    instance: ProblemInstance,
    num_channels: int,
    max_r: int | None = None,
) -> OptSchedule:
    """Run the OPT baseline end to end.

    Args:
        instance: The problem instance.
        num_channels: ``N_real``.
        max_r: Optional per-stage cap forwarded to :func:`opt_frequencies`.
    """
    assignment = opt_frequencies(instance, num_channels, max_r=max_r)
    placement = place_by_frequency(
        instance, assignment.frequencies, num_channels
    )
    return OptSchedule(
        program=placement.program,
        instance=instance,
        num_channels=num_channels,
        assignment=assignment,
        window_misses=placement.window_misses,
        average_delay=program_average_delay(placement.program, instance),
    )
