"""Online least-slack scheduler — an EDF-flavoured alternative heuristic.

PAMAD plans a whole cycle offline.  The natural *online* competitor
(what a practitioner would try first) assigns each slot greedily: every
page carries a virtual deadline ``last_broadcast + t_i`` (broadcast it by
then or some client misses), and each slot's channels go to the pages
with the smallest slack.  No cycle structure is assumed — the schedule
emerges from the greedy rule.

Properties worth knowing (and tested):

* the rule is a *heuristic*, not a guarantee: even at exactly the
  Theorem-3.1 channel bound it can miss deadlines (this is a pinwheel
  scheduling problem, where density-based feasibility does not make
  greedy EDF optimal) — precisely the gap SUSC's structured placement
  closes, and the reason the paper needs Theorem 3.2 rather than a
  greedy argument;
* with **insufficient** channels it degenerates toward weighted
  round-robin with urgency weights — close to PAMAD's frequencies but
  without the even-spread placement guarantee (the ABL5 benchmark
  quantifies both effects).

Because the rule is deterministic and its state (the per-page deadline
offsets) lives in a finite space, the infinite schedule is eventually
periodic.  The generator detects that recurrence and reports exactly one
orbit as the cyclic program, so the cyclic gap statistics are *exact* —
no window-seam approximation.  A safety cap bounds the detection; if the
orbit is longer than the cap (it never is in practice for harmonic
ladders), the tail window is reported with a documented seam
approximation instead.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.core.delay import program_average_delay
from repro.core.errors import SearchSpaceError
from repro.core.intmath import ceil_div
from repro.core.pages import ProblemInstance
from repro.core.program import BroadcastProgram

__all__ = ["OnlineSchedule", "schedule_online"]


@dataclass(frozen=True)
class OnlineSchedule:
    """Output of the online least-slack scheduler.

    Attributes:
        program: One detected orbit (or, on cap overflow, the steady tail
            window) reported as a cyclic program.
        instance: The scheduled instance.
        num_channels: Channels used.
        horizon: Total slots simulated (warm-up + reported segment).
        exact_orbit: True when the reported program is one exact period
            of the deterministic schedule (the usual case); False when
            the safety cap forced the seam-approximated tail window.
        average_delay: Analytic AvgD of the reported program.
    """

    program: BroadcastProgram
    instance: ProblemInstance
    num_channels: int
    horizon: int
    exact_orbit: bool
    average_delay: float

    @property
    def meta(self) -> dict:
        """Scheduler diagnostics (the ScheduleResult protocol's ``meta``)."""
        return {
            "scheduler": "online",
            "num_channels": self.num_channels,
            "horizon": self.horizon,
            "exact_orbit": self.exact_orbit,
        }


def _simulate(
    instance: ProblemInstance, num_channels: int, horizon: int
) -> tuple[list[list[int]], int | None, int | None]:
    """Run the least-slack rule for up to ``horizon`` slots.

    Returns ``(per-slot winner lists, orbit_start, orbit_end)``; the
    orbit bounds are the first slot whose state (the sorted per-page
    deadline offsets) recurred and the slot of its recurrence, or
    ``(None, None)`` if no state repeated within the horizon.
    """
    # Priority queue of (virtual_deadline, tie_break, page, period).  A
    # deadline is the LAST slot at which broadcasting still keeps every
    # gap within t_i: initially slot t_i - 1 (condition 1), thereafter
    # last_broadcast_slot + t_i (condition 2).
    heap: list[tuple[int, int, int, int]] = []
    for page in instance.pages():
        heapq.heappush(
            heap,
            (page.expected_time - 1, page.expected_time, page.page_id,
             page.expected_time),
        )
    slots: list[list[int]] = []
    states: dict[tuple, int] = {}
    per_slot = min(num_channels, instance.n)
    for slot in range(horizon):
        # Sort so logically equal states match even when the heap's
        # internal layout differs; evolution from a logical state is
        # deterministic because pops see only (deadline, tie, page).
        state = tuple(
            sorted(
                (deadline - slot, page_id)
                for deadline, _tie, page_id, _period in heap
            )
        )
        if state in states:
            return slots, states[state], slot
        states[state] = slot
        winners = [heapq.heappop(heap) for _ in range(per_slot)]
        slots.append([page_id for _d, _t, page_id, _p in winners])
        for _deadline, tie, page_id, period in winners:
            heapq.heappush(heap, (slot + period, tie, page_id, period))
    return slots, None, None


def schedule_online(
    instance: ProblemInstance,
    num_channels: int,
    max_orbit: int | None = None,
) -> OnlineSchedule:
    """Run the least-slack rule and report one exact orbit.

    Args:
        instance: The problem instance.
        num_channels: Channels available (any positive count).
        max_orbit: Safety cap on the slots simulated while hunting for
            the state recurrence.  Defaults to
            ``50 * max(t_h, ceil(n / num_channels)) + n`` for instances
            up to a few hundred pages; larger instances default to a
            short ``6x``-natural horizon (their orbits are far longer
            than any practical hunt, so the seam-approximated tail
            window is reported directly).  If no recurrence appears
            within the cap, the tail half of the simulated horizon is
            reported with ``exact_orbit=False``.

    Returns:
        An :class:`OnlineSchedule`.
    """
    if num_channels < 1:
        raise SearchSpaceError(
            f"num_channels must be >= 1, got {num_channels}"
        )
    natural = max(
        instance.max_expected_time,
        ceil_div(instance.n, num_channels),
    )
    if max_orbit is None:
        if instance.n <= 256:
            max_orbit = 50 * natural + instance.n
        else:
            max_orbit = 6 * natural + instance.n
    # The fallback reports the tail half of the horizon; it must be long
    # enough that every page appears in it (least-slack serves any page
    # within roughly n/N + t_h slots of its deadline).
    minimum_cap = 2 * (natural + ceil_div(instance.n, num_channels))
    if max_orbit < minimum_cap:
        raise SearchSpaceError(
            f"max_orbit={max_orbit} below the minimum of {minimum_cap} "
            "needed to cover every page in the fallback window"
        )

    slots, orbit_start, orbit_end = _simulate(
        instance, num_channels, max_orbit
    )
    if orbit_start is not None:
        segment = slots[orbit_start:orbit_end]
        exact = True
        horizon = orbit_end
    else:
        segment = slots[len(slots) // 2 :]
        exact = False
        horizon = len(slots)
    program = BroadcastProgram(
        num_channels=num_channels, cycle_length=len(segment)
    )
    for slot, winners in enumerate(segment):
        for channel, page_id in enumerate(winners):
            program.assign(channel, slot, page_id)

    return OnlineSchedule(
        program=program,
        instance=instance,
        num_channels=num_channels,
        horizon=horizon,
        exact_orbit=exact,
        average_delay=program_average_delay(program, instance),
    )
