"""Comparison algorithms: m-PB, OPT, broadcast disks, drop, flat."""

from repro.baselines.broadcast_disks import (
    BroadcastDisksSchedule,
    schedule_broadcast_disks,
)
from repro.baselines.drop import DropSchedule, schedule_drop
from repro.baselines.flat import FlatSchedule, schedule_flat
from repro.baselines.mpb import MpbSchedule, schedule_mpb
from repro.baselines.online import OnlineSchedule, schedule_online
from repro.baselines.opt import (
    OptSchedule,
    brute_force_frequencies,
    opt_frequencies,
    schedule_opt,
)

__all__ = [
    "BroadcastDisksSchedule",
    "DropSchedule",
    "FlatSchedule",
    "MpbSchedule",
    "OnlineSchedule",
    "OptSchedule",
    "brute_force_frequencies",
    "opt_frequencies",
    "schedule_broadcast_disks",
    "schedule_drop",
    "schedule_flat",
    "schedule_mpb",
    "schedule_online",
    "schedule_opt",
]
