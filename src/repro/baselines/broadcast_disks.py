"""Broadcast disks (Acharya et al., SIGMOD'95) — the access-time baseline.

The seminal scheduler of the field (the paper's reference [1]) optimises
*expected access time* under skewed access probabilities, with no notion
of deadlines: pages are partitioned onto virtual "disks" spinning at
different speeds, hot disks spinning faster.

The classic generation algorithm, implemented faithfully:

1. order pages by access probability and split them into ``num_disks``
   disks (hottest pages on disk 1);
2. give disk ``i`` an integer relative frequency ``rel_freq[i]``
   (non-increasing);
3. let ``max_chunks = lcm(rel_freqs)`` and split disk ``i`` into
   ``max_chunks / rel_freq[i]`` chunks;
4. for minor cycle ``k = 0 .. max_chunks - 1``, broadcast chunk
   ``k mod num_chunks_i`` of every disk ``i`` in disk order.

Each disk-``i`` page therefore appears exactly ``rel_freq[i]`` times per
major cycle, evenly interleaved.  The flat sequence is wrapped onto the
multi-channel grid column by column (airtime order preserved).

The EXT8 experiment uses this baseline for the double dissociation the
paper's framing implies: broadcast disks win on *mean wait* under Zipf
access, PAMAD wins on *deadline-excess delay* — the two objectives really
are different.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.core.delay import (
    program_average_delay,
    program_average_wait,
)
from repro.core.errors import SearchSpaceError
from repro.core.intmath import ceil_div
from repro.core.pages import ProblemInstance
from repro.core.program import BroadcastProgram

__all__ = ["BroadcastDisksSchedule", "schedule_broadcast_disks"]


@dataclass(frozen=True)
class BroadcastDisksSchedule:
    """Output of the broadcast-disks generator.

    Attributes:
        program: The generated multi-channel program.
        instance: The scheduled instance.
        num_channels: Channels used.
        disks: Page ids per disk, hottest first.
        relative_frequencies: Disk spin speeds used.
        average_delay: Deadline-excess AvgD of the program (uniform
            access) — the *paper's* metric, on which this baseline is
            expected to lose.
        average_wait: Expected wait (access time) under uniform access —
            the metric this baseline optimises (under its access skew).
    """

    program: BroadcastProgram
    instance: ProblemInstance
    num_channels: int
    disks: tuple[tuple[int, ...], ...]
    relative_frequencies: tuple[int, ...]
    average_delay: float
    average_wait: float

    @property
    def meta(self) -> dict:
        """Scheduler diagnostics (the ScheduleResult protocol's ``meta``)."""
        return {
            "scheduler": "disks",
            "num_channels": self.num_channels,
            "num_disks": len(self.disks),
            "relative_frequencies": list(self.relative_frequencies),
            "average_wait": self.average_wait,
        }


def _lcm(values: Sequence[int]) -> int:
    result = 1
    for value in values:
        result = result * value // math.gcd(result, value)
    return result


def _partition_disks(
    ordered_pages: Sequence[int], num_disks: int
) -> list[list[int]]:
    """Split hot-to-cold ordered pages into contiguous disks.

    Sizes grow geometrically (hot disks are small and fast), mirroring
    the canonical examples of the broadcast-disks paper.
    """
    n = len(ordered_pages)
    weights = [2**i for i in range(num_disks)]
    total = sum(weights)
    sizes = [max(1, n * w // total) for w in weights]
    # Fix rounding so sizes sum to n (adjust the coldest disk).
    sizes[-1] += n - sum(sizes)
    if sizes[-1] < 1:
        raise SearchSpaceError(
            f"cannot split {n} pages into {num_disks} non-empty disks"
        )
    disks: list[list[int]] = []
    start = 0
    for size in sizes:
        disks.append(list(ordered_pages[start : start + size]))
        start += size
    return disks


def schedule_broadcast_disks(
    instance: ProblemInstance,
    num_channels: int,
    access_probabilities: Mapping[int, float] | None = None,
    num_disks: int = 3,
    relative_frequencies: Sequence[int] | None = None,
) -> BroadcastDisksSchedule:
    """Generate a broadcast-disks program.

    Args:
        instance: Pages to broadcast (expected times are ignored by this
            baseline — that is the point).
        num_channels: Channels to wrap the flat schedule onto.
        access_probabilities: Page access skew driving the disk
            partition; ``None`` orders pages by instance order (urgent
            groups first), which makes the hot disks the urgent pages.
        num_disks: Number of virtual disks.
        relative_frequencies: Integer spin speeds, non-increasing; default
            ``(2^(d-1), ..., 2, 1)``.

    Returns:
        A :class:`BroadcastDisksSchedule`.
    """
    if num_disks < 1:
        raise SearchSpaceError(f"num_disks must be >= 1, got {num_disks}")
    if num_channels < 1:
        raise SearchSpaceError(
            f"num_channels must be >= 1, got {num_channels}"
        )
    num_disks = min(num_disks, instance.n)
    if relative_frequencies is None:
        relative_frequencies = tuple(
            2**i for i in range(num_disks - 1, -1, -1)
        )
    if len(relative_frequencies) != num_disks:
        raise SearchSpaceError(
            f"need {num_disks} relative frequencies, got "
            f"{len(relative_frequencies)}"
        )
    if any(f < 1 for f in relative_frequencies):
        raise SearchSpaceError(
            f"relative frequencies must be >= 1, got "
            f"{list(relative_frequencies)}"
        )
    if list(relative_frequencies) != sorted(
        relative_frequencies, reverse=True
    ):
        raise SearchSpaceError(
            "relative frequencies must be non-increasing (hot disks "
            f"first), got {list(relative_frequencies)}"
        )

    page_ids = [page.page_id for page in instance.pages()]
    if access_probabilities is not None:
        page_ids.sort(
            key=lambda pid: access_probabilities.get(pid, 0.0),
            reverse=True,
        )
    disks = _partition_disks(page_ids, num_disks)

    max_chunks = _lcm(list(relative_frequencies))
    chunk_counts = [max_chunks // f for f in relative_frequencies]
    # Chunks per disk: split each disk's pages into num_chunks_i chunks.
    chunked: list[list[list[int]]] = []
    for disk, num_chunks in zip(disks, chunk_counts):
        size = ceil_div(len(disk), num_chunks)
        chunked.append(
            [disk[i * size : (i + 1) * size] for i in range(num_chunks)]
        )

    flat: list[int] = []
    for minor in range(max_chunks):
        for disk_chunks in chunked:
            chunk = disk_chunks[minor % len(disk_chunks)]
            flat.extend(chunk)

    cycle = ceil_div(len(flat), num_channels)
    program = BroadcastProgram(
        num_channels=num_channels, cycle_length=cycle
    )
    for position, page_id in enumerate(flat):
        program.assign(
            position % num_channels, position // num_channels, page_id
        )

    return BroadcastDisksSchedule(
        program=program,
        instance=instance,
        num_channels=num_channels,
        disks=tuple(tuple(disk) for disk in disks),
        relative_frequencies=tuple(relative_frequencies),
        average_delay=program_average_delay(program, instance),
        average_wait=program_average_wait(program, instance),
    )
