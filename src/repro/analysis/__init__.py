"""Analysis harness: statistics, sweeps, experiment registry, reporting."""

from repro.analysis.ascii_plot import line_chart
from repro.analysis.experiments import EXPERIMENTS, Experiment, run_experiment
from repro.analysis.programstats import (
    GroupShare,
    ProgramProfile,
    jain_fairness,
    profile_program,
)
from repro.analysis.report import Table, format_value
from repro.analysis.stats import (
    Summary,
    geometric_mean,
    ratio_of_means,
    relative_difference,
    summarize,
)
from repro.analysis.store import (
    CellChange,
    ExperimentRecord,
    ResultStore,
    diff_records,
)
from repro.analysis.sweep import (
    SCHEDULERS,
    SweepPoint,
    channel_sweep,
    default_channel_points,
    get_scheduler,
    sweep_table,
)
from repro.analysis.vectorized import (
    BatchMeasurement,
    batch_measure,
    program_average_delay_fast,
    program_delay_vector,
)

__all__ = [
    "BatchMeasurement",
    "CellChange",
    "EXPERIMENTS",
    "Experiment",
    "ExperimentRecord",
    "GroupShare",
    "ProgramProfile",
    "ResultStore",
    "SCHEDULERS",
    "Summary",
    "SweepPoint",
    "Table",
    "batch_measure",
    "channel_sweep",
    "default_channel_points",
    "diff_records",
    "format_value",
    "geometric_mean",
    "get_scheduler",
    "jain_fairness",
    "line_chart",
    "profile_program",
    "program_average_delay_fast",
    "program_delay_vector",
    "ratio_of_means",
    "relative_difference",
    "run_experiment",
    "summarize",
    "sweep_table",
]
