"""Persistent experiment results — save, reload, and diff runs.

Reproduction work is iterative: after changing an algorithm you want to
know *which cells moved*.  The store keeps every experiment run as one
JSON file (tables + parameters + free-form metadata) under a root
directory, and :func:`diff_records` reports cell-level changes between
two runs of the same experiment.

No timestamps are auto-generated — callers pass an explicit ``run_id``
(a counter, a git hash, a date string), which keeps records reproducible
and the store free of hidden state.
"""

from __future__ import annotations

import json
import math
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping

from repro.analysis.report import Table
from repro.core.errors import ReproError

__all__ = ["ExperimentRecord", "ResultStore", "diff_records", "CellChange"]

_RUN_ID_PATTERN = re.compile(r"^[A-Za-z0-9._-]+$")


@dataclass(frozen=True)
class ExperimentRecord:
    """One stored experiment run.

    Attributes:
        experiment_id: Registry id (e.g. ``FIG5D``).
        run_id: Caller-chosen identifier, unique per experiment.
        tables: The result tables of the run.
        parameters: The overrides the run used (seed, requests, ...).
        metadata: Free-form context (git revision, machine, notes).
    """

    experiment_id: str
    run_id: str
    tables: tuple[Table, ...]
    parameters: Mapping = field(default_factory=dict)
    metadata: Mapping = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "experiment_id": self.experiment_id,
            "run_id": self.run_id,
            "tables": [table.to_dict() for table in self.tables],
            "parameters": dict(self.parameters),
            "metadata": dict(self.metadata),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ExperimentRecord":
        return cls(
            experiment_id=data["experiment_id"],
            run_id=data["run_id"],
            tables=tuple(
                Table.from_dict(item) for item in data["tables"]
            ),
            parameters=data.get("parameters", {}),
            metadata=data.get("metadata", {}),
        )


class ResultStore:
    """A directory of experiment records, one JSON file per run."""

    def __init__(self, root: str | Path) -> None:
        self._root = Path(root)
        self._root.mkdir(parents=True, exist_ok=True)

    def _path(self, experiment_id: str, run_id: str) -> Path:
        if not _RUN_ID_PATTERN.match(run_id):
            raise ReproError(
                f"run_id {run_id!r} must match {_RUN_ID_PATTERN.pattern}"
            )
        if not _RUN_ID_PATTERN.match(experiment_id):
            raise ReproError(
                f"experiment_id {experiment_id!r} must match "
                f"{_RUN_ID_PATTERN.pattern}"
            )
        return self._root / f"{experiment_id}__{run_id}.json"

    def save(self, record: ExperimentRecord, overwrite: bool = False) -> Path:
        """Persist a record; refuses to clobber unless ``overwrite``."""
        path = self._path(record.experiment_id, record.run_id)
        if path.exists() and not overwrite:
            raise ReproError(
                f"record {path.name} already exists; pass overwrite=True "
                "to replace it"
            )
        path.write_text(json.dumps(record.to_dict(), indent=2))
        return path

    def load(self, experiment_id: str, run_id: str) -> ExperimentRecord:
        """Load one stored run."""
        path = self._path(experiment_id, run_id)
        if not path.exists():
            raise ReproError(f"no stored record {path.name}")
        return ExperimentRecord.from_dict(json.loads(path.read_text()))

    def runs(self, experiment_id: str | None = None) -> list[tuple[str, str]]:
        """List stored ``(experiment_id, run_id)`` pairs, sorted."""
        out = []
        for path in sorted(self._root.glob("*__*.json")):
            experiment, _, run = path.stem.partition("__")
            if experiment_id is None or experiment == experiment_id:
                out.append((experiment, run))
        return out


@dataclass(frozen=True)
class CellChange:
    """One differing cell between two runs.

    Attributes:
        table: Title of the table the cell belongs to.
        row: Row index within the table.
        column: Column name.
        before: Value in the first record.
        after: Value in the second record.
    """

    table: str
    row: int
    column: str
    before: object
    after: object


def _values_differ(a, b, rel_tol: float) -> bool:
    if isinstance(a, (int, float)) and isinstance(b, (int, float)):
        if isinstance(a, bool) or isinstance(b, bool):
            return a != b
        return not math.isclose(a, b, rel_tol=rel_tol, abs_tol=1e-12)
    return a != b


def diff_records(
    before: ExperimentRecord,
    after: ExperimentRecord,
    rel_tol: float = 1e-9,
) -> list[CellChange]:
    """Cell-level differences between two runs of the same experiment.

    Args:
        before: Baseline record.
        after: Candidate record; must be the same experiment with tables
            of identical shape (titles, columns, row counts).
        rel_tol: Numeric cells within this relative tolerance count as
            unchanged (use e.g. 0.05 to ignore Monte-Carlo noise).

    Raises:
        ReproError: On experiment or table-shape mismatches.
    """
    if before.experiment_id != after.experiment_id:
        raise ReproError(
            f"cannot diff {before.experiment_id} against "
            f"{after.experiment_id}"
        )
    if len(before.tables) != len(after.tables):
        raise ReproError(
            f"table count changed: {len(before.tables)} -> "
            f"{len(after.tables)}"
        )
    changes: list[CellChange] = []
    for table_a, table_b in zip(before.tables, after.tables):
        if list(table_a.columns) != list(table_b.columns):
            raise ReproError(
                f"columns of {table_a.title!r} changed: "
                f"{list(table_a.columns)} -> {list(table_b.columns)}"
            )
        if len(table_a.rows) != len(table_b.rows):
            raise ReproError(
                f"row count of {table_a.title!r} changed: "
                f"{len(table_a.rows)} -> {len(table_b.rows)}"
            )
        for row_index, (row_a, row_b) in enumerate(
            zip(table_a.rows, table_b.rows)
        ):
            for column, value_a, value_b in zip(
                table_a.columns, row_a, row_b
            ):
                if _values_differ(value_a, value_b, rel_tol):
                    changes.append(
                        CellChange(
                            table=table_a.title,
                            row=row_index,
                            column=str(column),
                            before=value_a,
                            after=value_b,
                        )
                    )
    return changes
