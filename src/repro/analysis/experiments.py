"""Experiment registry — one entry per paper table/figure (and ablations).

Each :class:`Experiment` regenerates one artefact of the paper's
evaluation (or one of this reproduction's ablations/extensions) as
:class:`~repro.analysis.report.Table` objects.  The benchmark harness under
``benchmarks/`` is a thin wrapper over this registry, and the CLI exposes
it as ``repro-air experiment <ID>``.

Registry contents (see DESIGN.md section 4 for the full index):

=====  ==============================================================
FIG2   Section 4.4 worked example (frequencies, cycle, program)
THM31  Theorem 3.1 minimum-channel examples
FIG3   Figure 3 group-size distributions
FIG4   Figure 4 default parameters
FIG5A  Figure 5(a) AvgD vs channels, normal distribution
FIG5B  Figure 5(b) AvgD vs channels, L-skewed distribution
FIG5C  Figure 5(c) AvgD vs channels, S-skewed distribution
FIG5D  Figure 5(d) AvgD vs channels, uniform distribution
ABL1   staged-greedy vs joint DFS vs brute force frequency search
ABL2   paper-literal vs normalised delay objective
ABL3   Algorithm-4 even spreading vs naive sequential packing
EXT1   drop-pages vs PAMAD on-demand congestion
EXT2   SUSC scaling and bound tightness
EXT3   Zipf access probabilities
EXT4   (1, m) air indexing: latency vs tuning energy
EXT5   channel failures: carry on vs reschedule
EXT6   adaptive rescheduling under deadline drift
EXT7   multi-page requests: completion time by scheduler
EXT8   deadline-aware (PAMAD) vs access-time-aware (broadcast disks)
EXT9   client caching: LRU vs PIX over a PAMAD program
EXT10  recovery policies under increasing churn rates
EXT11  live service under catalog churn: admission on/off vs pull LWF
EXT12  federation scaling: shard counts under Zipf listener skew
ABL4   naive vs cursor-optimised GetAvailableSlot (paper's 3.2 note)
ABL5   offline PAMAD vs online least-slack (EDF) scheduling
=====  ==============================================================
"""

from __future__ import annotations

import math
import random
import time
from dataclasses import dataclass
from typing import Callable, Mapping

from repro.analysis.report import Table
from repro.analysis.sweep import (
    default_channel_points,
    sweep_table,
)
from repro.baselines.drop import schedule_drop
from repro.baselines.opt import brute_force_frequencies, opt_frequencies
from repro.core.bounds import channel_load, minimum_channels
from repro.core.delay import (
    normalized_group_delay,
    paper_group_delay,
    program_average_delay,
)
from repro.core.errors import ReproError
from repro.core.frequencies import pamad_frequencies
from repro.core.pages import instance_from_counts
from repro.core.pamad import (
    place_by_frequency,
    place_sequential,
    schedule_pamad,
)
from repro.core.susc import schedule_susc
from repro.core.validate import validate_program
from repro.sim.hybrid import HybridConfig, simulate_hybrid
from repro.workload.distributions import DISTRIBUTION_NAMES, group_sizes
from repro.workload.generator import PAPER_DEFAULTS, paper_instance
from repro.workload.requests import zipf_access_model

__all__ = ["Experiment", "EXPERIMENTS", "run_experiment"]


@dataclass(frozen=True)
class Experiment:
    """A registered, re-runnable experiment.

    Attributes:
        experiment_id: Registry key (e.g. ``FIG5D``).
        title: Human-readable name.
        paper_ref: The paper artefact it regenerates (or ``reproduction``
            for ablations/extensions).
        runner: Callable producing the result tables; accepts keyword
            overrides (``num_requests``, ``max_points``, ``seed``...).
    """

    experiment_id: str
    title: str
    paper_ref: str
    runner: Callable[..., list[Table]]

    def run(self, **overrides) -> list[Table]:
        """Execute the experiment and return its tables."""
        return self.runner(**overrides)


# ----------------------------------------------------------------------
# Paper artefacts
# ----------------------------------------------------------------------


def _run_fig2(**_overrides) -> list[Table]:
    """The Section 4.4 worked example, end to end."""
    instance = instance_from_counts([3, 5, 3], [2, 4, 8])
    table = Table(
        title="Figure 2: PAMAD worked example (P=(3,5,3), t=(2,4,8), 3 channels)",
        columns=["quantity", "paper", "reproduced"],
    )
    table.add_row("minimum channels (Eq. 1)", 4, minimum_channels(instance))
    assignment = pamad_frequencies(instance, 3)
    table.add_row("r1, r2", "2, 2", ", ".join(map(str, assignment.r_values)))
    table.add_row(
        "S1, S2, S3", "4, 2, 1", ", ".join(map(str, assignment.frequencies))
    )
    table.add_row(
        "major cycle (Eq. 8)",
        9,
        assignment.cycle_length(instance.group_sizes),
    )
    placement = place_by_frequency(
        instance, assignment.frequencies, 3
    )
    table.add_row(
        "all 11 pages placed",
        "yes",
        sorted(placement.program.page_ids()) == list(range(1, 12)),
    )
    table.notes.append("program:\n" + placement.program.render())
    return [table]


def _run_thm31(**_overrides) -> list[Table]:
    """Theorem 3.1 on the paper's two explicit examples and the defaults."""
    table = Table(
        title="Theorem 3.1: minimum number of channels",
        columns=["instance", "load sum(P_i/t_i)", "N (min channels)"],
    )
    cases = {
        "Sec 3.1 example: P=(2,3), t=(2,4)": instance_from_counts(
            [2, 3], [2, 4]
        ),
        "Fig 2 example: P=(3,5,3), t=(2,4,8)": instance_from_counts(
            [3, 5, 3], [2, 4, 8]
        ),
    }
    for name in DISTRIBUTION_NAMES:
        cases[f"paper defaults, {name}"] = paper_instance(name)
    for name, instance in cases.items():
        table.add_row(
            name,
            round(channel_load(instance), 4),
            minimum_channels(instance),
        )
    table.notes.append(
        "paper's Sec 3.1 example expects N=2; Fig 2 expects N=4; "
        "Fig 5(d) quotes ~64 sufficient channels for the uniform workload"
    )
    return [table]


def _run_fig3(n: int | None = None, h: int | None = None, **_overrides) -> list[Table]:
    """The four group-size distributions of Figure 3."""
    n = n or PAPER_DEFAULTS.n
    h = h or PAPER_DEFAULTS.h
    table = Table(
        title=f"Figure 3: group-size distributions (n={n}, h={h})",
        columns=["group", "t_i", *DISTRIBUTION_NAMES],
    )
    times = PAPER_DEFAULTS.expected_times
    sizes = {name: group_sizes(name, n, h) for name in DISTRIBUTION_NAMES}
    for index in range(h):
        table.add_row(
            index + 1,
            times[index] if index < len(times) else "-",
            *(sizes[name][index] for name in DISTRIBUTION_NAMES),
        )
    table.add_row("total", "-", *(sum(sizes[name]) for name in DISTRIBUTION_NAMES))
    return [table]


def _run_fig4(**_overrides) -> list[Table]:
    """The Figure 4 default parameter table."""
    table = Table(
        title="Figure 4: parameter settings",
        columns=["parameter", "default value"],
    )
    table.add_row("n - total number", PAPER_DEFAULTS.n)
    table.add_row("h - number of groups", PAPER_DEFAULTS.h)
    table.add_row(
        "t_i - expected time",
        ", ".join(map(str, PAPER_DEFAULTS.expected_times)),
    )
    table.add_row(
        "group size distributions", ", ".join(DISTRIBUTION_NAMES)
    )
    table.add_row("number of requests", PAPER_DEFAULTS.num_requests)
    return [table]


def _fig5_runner(distribution: str):
    def run(
        num_requests: int = PAPER_DEFAULTS.num_requests,
        max_points: int = 12,
        seed: int = 0,
        algorithms=("pamad", "m-pb", "opt"),
        workers: int | None = None,
        **_overrides,
    ) -> list[Table]:
        from repro.engine import default_engine

        instance = paper_instance(distribution)
        n_min = minimum_channels(instance)
        result = default_engine().sweep(
            instance,
            algorithms=algorithms,
            channel_points=default_channel_points(n_min, max_points),
            num_requests=num_requests,
            seed=seed,
            workers=workers,
        )
        table = sweep_table(
            result.points,
            title=(
                f"Figure 5 ({distribution}): AvgD vs channels "
                f"(N_min={n_min})"
            ),
        )
        cache = result.manifest.cache_run
        table.notes.append(
            f"minimum sufficient channels: {n_min}; "
            f"{num_requests} requests per cell, seed={seed}"
        )
        table.notes.append(
            f"engine run {result.manifest.run_id}: "
            f"{result.manifest.executor['mode']} executor, "
            f"cache {cache.hits} hits / {cache.misses} misses"
        )
        return [table]

    return run


# ----------------------------------------------------------------------
# Ablations
# ----------------------------------------------------------------------


def _run_abl1(seed: int = 0, **_overrides) -> list[Table]:
    """Staged-greedy (PAMAD) vs joint DFS (OPT) vs brute force."""
    rng = random.Random(seed)
    table = Table(
        title="ABL1: frequency-search families (predicted paper delay)",
        columns=[
            "instance",
            "channels",
            "pamad",
            "opt (joint DFS)",
            "brute force",
            "pamad=opt",
            "opt=brute",
        ],
    )
    cases = [
        (instance_from_counts([3, 5, 3], [2, 4, 8]), 3),
        (instance_from_counts([6, 4, 2], [2, 4, 8]), 2),
        (instance_from_counts([10, 10, 10, 10], [2, 4, 8, 16]), 4),
        (instance_from_counts([8, 2, 6], [3, 9, 27]), 2),
    ]
    for _ in range(3):
        h = rng.randint(2, 4)
        sizes = [rng.randint(2, 12) for _ in range(h)]
        times = [2 * 2**i for i in range(h)]
        instance = instance_from_counts(sizes, times)
        channels = rng.randint(1, max(1, minimum_channels(instance) - 1))
        cases.append((instance, channels))
    for instance, channels in cases:
        pamad = pamad_frequencies(instance, channels)
        opt = opt_frequencies(instance, channels)
        brute = brute_force_frequencies(instance, channels, cap=12)
        table.add_row(
            f"P={instance.group_sizes} t={instance.expected_times}",
            channels,
            round(pamad.predicted_delay, 4),
            round(opt.predicted_delay, 4),
            round(brute.predicted_delay, 4),
            math.isclose(
                pamad.predicted_delay, opt.predicted_delay, abs_tol=1e-9
            ),
            opt.predicted_delay <= brute.predicted_delay + 1e-9,
        )
    return [table]


def _run_abl2(
    num_requests: int = PAPER_DEFAULTS.num_requests,
    channels: tuple[int, ...] = (5, 13, 26),
    **_overrides,
) -> list[Table]:
    """Does dropping the 1/gap normalisation change PAMAD's choices?"""
    instance = paper_instance("uniform")
    table = Table(
        title="ABL2: Eq.2-literal vs normalized Sec-4.1 objective (uniform workload)",
        columns=[
            "channels",
            "S (literal)",
            "S (normalized)",
            "AvgD literal",
            "AvgD normalized",
        ],
    )
    for count in channels:
        literal = pamad_frequencies(
            instance, count, objective=paper_group_delay
        )
        normalized = pamad_frequencies(
            instance, count, objective=normalized_group_delay
        )
        program_literal = place_by_frequency(
            instance, literal.frequencies, count
        ).program
        program_normalized = place_by_frequency(
            instance, normalized.frequencies, count
        ).program
        table.add_row(
            count,
            str(literal.frequencies),
            str(normalized.frequencies),
            round(program_average_delay(program_literal, instance), 4),
            round(program_average_delay(program_normalized, instance), 4),
        )
    return [table]


def _run_abl3(
    channels: tuple[int, ...] = (5, 13, 26),
    **_overrides,
) -> list[Table]:
    """Even spreading vs naive sequential packing at equal frequencies."""
    instance = paper_instance("uniform")
    table = Table(
        title="ABL3: Algorithm-4 even spreading vs sequential packing",
        columns=[
            "channels",
            "AvgD even-spread",
            "AvgD sequential",
            "sequential / even",
        ],
    )
    for count in channels:
        assignment = pamad_frequencies(instance, count)
        even = place_by_frequency(
            instance, assignment.frequencies, count
        ).program
        packed = place_sequential(
            instance, assignment.frequencies, count
        ).program
        even_delay = program_average_delay(even, instance)
        packed_delay = program_average_delay(packed, instance)
        table.add_row(
            count,
            round(even_delay, 4),
            round(packed_delay, 4),
            round(packed_delay / even_delay, 2)
            if even_delay > 0
            else math.inf,
        )
    return [table]


# ----------------------------------------------------------------------
# Extensions
# ----------------------------------------------------------------------


def _run_ext1(
    channels: tuple[int, ...] = (4, 8, 13, 26),
    arrival_rate: float = 2.0,
    horizon: float = 4000.0,
    seed: int = 0,
    **_overrides,
) -> list[Table]:
    """Drop-pages vs PAMAD: broadcast spill and on-demand congestion."""
    instance = paper_instance("uniform")
    table = Table(
        title="EXT1: on-demand congestion, PAMAD vs drop-pages",
        columns=[
            "channels",
            "pamad spill",
            "pamad od-util",
            "pamad od-resp",
            "drop spill",
            "drop od-util",
            "drop od-resp",
            "dropped pages",
        ],
    )
    config = HybridConfig(
        arrival_rate=arrival_rate,
        horizon=horizon,
        ondemand_servers=2,
        seed=seed,
    )
    for count in channels:
        pamad = schedule_pamad(instance, count)
        pamad_result = simulate_hybrid(pamad.program, instance, config)
        drop = schedule_drop(instance, count)
        drop_result = simulate_hybrid(drop.program, instance, config)
        table.add_row(
            count,
            round(pamad_result.spill_ratio, 3),
            round(pamad_result.ondemand.utilisation, 3),
            round(pamad_result.ondemand.mean_response_time, 2),
            round(drop_result.spill_ratio, 3),
            round(drop_result.ondemand.utilisation, 3),
            round(drop_result.ondemand.mean_response_time, 2),
            len(drop.dropped_pages),
        )
    table.notes.append(
        f"Poisson arrivals at rate {arrival_rate}/slot over {horizon} "
        f"slots; 2 on-demand servers; patience = expected time"
    )
    return [table]


def _run_ext2(seed: int = 0, **_overrides) -> list[Table]:
    """SUSC scheduling cost and Theorem-3.1 bound tightness."""
    rng = random.Random(seed)
    table = Table(
        title="EXT2: SUSC scaling and bound tightness",
        columns=[
            "pages",
            "groups",
            "load",
            "N (bound)",
            "valid",
            "occupancy",
            "seconds",
        ],
    )
    scales = [(50, 3), (200, 5), (1000, 8), (4000, 8), (8000, 10)]
    for n, h in scales:
        times = tuple(4 * 2**i for i in range(h))
        weights = [rng.random() + 0.1 for _ in range(h)]
        total = sum(weights)
        sizes = [max(1, round(n * w / total)) for w in weights]
        instance = instance_from_counts(sizes, times)
        started = time.perf_counter()
        # Cursor-optimised GetAvailableSlot (identical output, see ABL4)
        # keeps the largest instances fast.
        schedule = schedule_susc(instance, optimized=True)
        elapsed = time.perf_counter() - started
        report = validate_program(schedule.program, instance)
        table.add_row(
            instance.n,
            h,
            round(channel_load(instance), 2),
            schedule.num_channels,
            report.ok,
            round(schedule.program.occupancy(), 3),
            round(elapsed, 3),
        )
    return [table]


def _run_ext3(
    channels: tuple[int, ...] = (5, 13, 26),
    theta: float = 0.8,
    num_requests: int = PAPER_DEFAULTS.num_requests,
    **_overrides,
) -> list[Table]:
    """AvgD under Zipf access skew (paper assumes uniform access)."""
    from repro.sim.clients import measure_program

    instance = paper_instance("uniform")
    zipf = zipf_access_model(instance, theta=theta)
    table = Table(
        title=f"EXT3: uniform vs Zipf(theta={theta}) access, PAMAD program",
        columns=[
            "channels",
            "AvgD uniform (analytic)",
            "AvgD zipf (analytic)",
            "AvgD zipf (simulated)",
        ],
    )
    for count in channels:
        schedule = schedule_pamad(instance, count)
        analytic_uniform = schedule.average_delay
        analytic_zipf = program_average_delay(
            schedule.program, instance, access_probabilities=zipf
        )
        simulated = measure_program(
            schedule.program,
            instance,
            num_requests=num_requests,
            seed=count,
            access_probabilities=zipf,
        ).average_delay
        table.add_row(
            count,
            round(analytic_uniform, 4),
            round(analytic_zipf, 4),
            round(simulated, 4),
        )
    table.notes.append(
        "Zipf ranks pages urgent-group-first; PAMAD still optimises the "
        "uniform objective — the gap is the price of the paper's "
        "uniform-access assumption"
    )
    return [table]


def _run_abl4(seed: int = 0, **_overrides) -> list[Table]:
    """Naive vs cursor-optimised GetAvailableSlot (the paper's 3.2 note)."""
    from repro.core.susc import schedule_susc as susc

    table = Table(
        title="ABL4: GetAvailableSlot search — naive vs cursor-optimised",
        columns=[
            "pages",
            "channels",
            "naive seconds",
            "optimised seconds",
            "speedup",
            "identical program",
        ],
    )
    rng = random.Random(seed)
    for n, h in ((200, 5), (1000, 8), (4000, 8)):
        times = tuple(4 * 2**i for i in range(h))
        weights = [rng.random() + 0.1 for _ in range(h)]
        total = sum(weights)
        sizes = [max(1, round(n * w / total)) for w in weights]
        instance = instance_from_counts(sizes, times)
        started = time.perf_counter()
        naive = susc(instance, validate=False)
        naive_seconds = time.perf_counter() - started
        started = time.perf_counter()
        optimised = susc(instance, validate=False, optimized=True)
        optimised_seconds = time.perf_counter() - started
        table.add_row(
            instance.n,
            naive.num_channels,
            round(naive_seconds, 4),
            round(optimised_seconds, 4),
            round(naive_seconds / max(optimised_seconds, 1e-9), 1),
            naive.program == optimised.program,
        )
    return [table]


def _run_ext4(
    channels: int = 13,
    factors: tuple[int, ...] = (1, 2, 4, 8, 16),
    pages_sampled: int = 25,
    **_overrides,
) -> list[Table]:
    """(1, m) indexing: the latency/energy trade-off on a PAMAD program."""
    from repro.indexing import EnergyModel, sweep_index_factor

    instance = paper_instance("uniform")
    program = schedule_pamad(instance, channels).program
    page_ids = [page.page_id for page in instance.pages()][::  max(
        1, instance.n // pages_sampled
    )][:pages_sampled]
    rows = sweep_index_factor(
        program,
        page_ids,
        factors=factors,
        model=EnergyModel(active_power=1.0, doze_power=0.05),
        samples_per_slot=1,
    )
    table = Table(
        title=(
            f"EXT4: (1, m) indexing on PAMAD/{channels}ch "
            "(mean over sampled pages)"
        ),
        columns=[
            "m",
            "access time",
            "tuning time",
            "energy/access",
            "index overhead",
        ],
    )
    for row in rows:
        table.add_row(
            row.m,
            round(row.access_time, 2),
            round(row.tuning_time, 2),
            round(row.energy, 2),
            round(row.overhead, 3),
        )
    table.notes.append(
        "receiver model: active=1.0, doze=0.05 energy units per slot; "
        "pointer packets enabled"
    )
    return [table]


def _run_ext5(
    channels: int = 13,
    **_overrides,
) -> list[Table]:
    """Channel failures: keep broadcasting vs PAMAD reschedule."""
    from repro.resilience import compare_static_failure_sizes

    instance = paper_instance("uniform")
    program = schedule_pamad(instance, channels).program
    failure_sizes = [1, 2, 4, 8]
    rows = compare_static_failure_sizes(
        program, instance, [k for k in failure_sizes if k < channels]
    )
    table = Table(
        title=f"EXT5: failing k of {channels} channels (uniform workload)",
        columns=[
            "failed",
            "surviving",
            "degraded AvgD (reachable)",
            "unreachable pages",
            "rescheduled AvgD",
        ],
    )
    for row in rows:
        table.add_row(
            row.failed_count,
            row.surviving_channels,
            round(row.degraded_delay, 3),
            row.degraded_lost_pages,
            round(row.rescheduled_delay, 3),
        )
    table.notes.append(
        "degraded = old schedule on surviving channels; unreachable "
        "pages' clients are forced onto the on-demand channel entirely"
    )
    return [table]


def _run_ext6(
    num_channels: int = 6,
    epochs: int = 10,
    volatility: float = 0.6,
    seed: int = 0,
    **_overrides,
) -> list[Table]:
    """Adaptive rescheduling under deadline drift."""
    from repro.sim.adaptive import run_adaptive_simulation

    deadlines = {f"page-{i}": 4.0 * (2 ** (i % 5)) for i in range(60)}
    kwargs = dict(
        initial_deadlines=deadlines,
        num_channels=num_channels,
        epochs=epochs,
        volatility=volatility,
        seed=seed,
    )
    adaptive = run_adaptive_simulation(rebuild_every=1, **kwargs)
    static = run_adaptive_simulation(rebuild_every=0, **kwargs)
    table = Table(
        title=(
            f"EXT6: deadline drift (volatility={volatility}), adaptive "
            f"vs schedule-once on {num_channels} channels"
        ),
        columns=[
            "epoch",
            "adaptive miss%",
            "static miss%",
            "adaptive excess",
            "static excess",
        ],
    )
    for a, s in zip(adaptive, static):
        table.add_row(
            a.epoch,
            round(100 * a.miss_ratio, 1),
            round(100 * s.miss_ratio, 1),
            round(a.average_excess, 2),
            round(s.average_excess, 2),
        )
    return [table]


def _run_ext7(
    channels: int = 13,
    set_sizes: tuple[int, ...] = (1, 2, 4, 8),
    num_requests: int = 300,
    seed: int = 0,
    **_overrides,
) -> list[Table]:
    """Multi-page requests: completion time, PAMAD vs flat round-robin."""
    from repro.baselines.flat import schedule_flat
    from repro.sim.multipage import measure_set_requests

    instance = paper_instance("uniform")
    pamad = schedule_pamad(instance, channels).program
    flat = schedule_flat(instance, channels).program
    table = Table(
        title=(
            f"EXT7: set-request completion time on {channels} channels "
            "(uniform workload)"
        ),
        columns=[
            "set size",
            "pamad completion",
            "flat completion",
            "pamad (within-group)",
        ],
    )
    for size in set_sizes:
        pamad_any = measure_set_requests(
            pamad, instance, set_size=size,
            num_requests=num_requests, seed=seed,
        )
        flat_any = measure_set_requests(
            flat, instance, set_size=size,
            num_requests=num_requests, seed=seed,
        )
        pamad_grouped = measure_set_requests(
            pamad, instance, set_size=size,
            num_requests=num_requests, seed=seed, within_group=True,
        )
        table.add_row(
            size,
            round(pamad_any.mean_completion, 1),
            round(flat_any.mean_completion, 1),
            round(pamad_grouped.mean_completion, 1),
        )
    table.notes.append(
        "completion = wait until the LAST page of the set is received; "
        "single-tuner client"
    )
    return [table]


def _run_abl5(
    channels: tuple[int, ...] = (5, 13, 26),
    **_overrides,
) -> list[Table]:
    """Offline planning (PAMAD) vs an online least-slack (EDF) rule."""
    from repro.baselines.online import schedule_online
    from repro.core.susc import schedule_susc
    from repro.core.validate import validate_program

    instance = paper_instance("uniform")
    table = Table(
        title="ABL5: PAMAD (offline) vs least-slack (online), uniform workload",
        columns=[
            "channels",
            "pamad AvgD",
            "online AvgD",
            "online/pamad",
            "online exact orbit",
        ],
    )
    for count in channels:
        pamad = schedule_pamad(instance, count)
        online = schedule_online(instance, count)
        table.add_row(
            count,
            round(pamad.average_delay, 3),
            round(online.average_delay, 3),
            round(
                online.average_delay / max(pamad.average_delay, 1e-9), 2
            ),
            online.exact_orbit,
        )
    # The boundary case: at exactly the Theorem-3.1 bound, SUSC is valid
    # by theorem; the online rule is not guaranteed to be.
    n_min = minimum_channels(instance)
    susc_valid = validate_program(
        schedule_susc(instance).program, instance
    ).ok
    online_at_bound = schedule_online(instance, n_min)
    online_valid = validate_program(
        online_at_bound.program, instance
    ).ok
    table.notes.append(
        f"at the bound (N={n_min}): SUSC valid={susc_valid}, "
        f"online valid={online_valid} — greedy EDF has no Theorem 3.2"
    )
    return [table]


def _run_ext8(
    channels: tuple[int, ...] = (8, 13, 26),
    theta: float = 0.8,
    **_overrides,
) -> list[Table]:
    """Deadline-aware vs access-time-aware scheduling objectives."""
    from repro.baselines.broadcast_disks import schedule_broadcast_disks
    from repro.core.delay import program_average_wait

    instance = paper_instance("uniform")
    zipf = zipf_access_model(instance, theta=theta)
    table = Table(
        title=(
            f"EXT8: PAMAD vs broadcast disks, Zipf(theta={theta}) access"
        ),
        columns=[
            "channels",
            "pamad AvgD",
            "disks AvgD",
            "pamad wait (zipf)",
            "disks wait (zipf)",
        ],
    )
    for count in channels:
        pamad = schedule_pamad(instance, count)
        disks = schedule_broadcast_disks(
            instance, count, access_probabilities=zipf
        )
        table.add_row(
            count,
            round(pamad.average_delay, 3),
            round(disks.average_delay, 3),
            round(
                program_average_wait(
                    pamad.program, instance, access_probabilities=zipf
                ),
                3,
            ),
            round(
                program_average_wait(
                    disks.program, instance, access_probabilities=zipf
                ),
                3,
            ),
        )
    table.notes.append(
        "AvgD = excess over expected times (the paper's metric, uniform "
        "access); wait = expected access time under the Zipf population "
        "broadcast disks optimise for.  Each scheduler wins its own "
        "objective."
    )
    return [table]


def _run_ext9(
    channels: int = 13,
    capacities: tuple[int, ...] = (10, 50, 200),
    theta: float = 0.9,
    seed: int = 3,
    **_overrides,
) -> list[Table]:
    """Client caching policies over a PAMAD program."""
    from repro.sim.cache import simulate_caching

    instance = paper_instance("uniform")
    program = schedule_pamad(instance, channels).program
    zipf = zipf_access_model(instance, theta=theta)
    table = Table(
        title=(
            f"EXT9: client cache hit ratios, Zipf(theta={theta}) over "
            f"PAMAD/{channels}ch"
        ),
        columns=[
            "capacity",
            "lru hit",
            "pix hit",
            "lru wait",
            "pix wait",
            "uncached wait",
        ],
    )
    for capacity in capacities:
        results = {
            policy: simulate_caching(
                program,
                instance,
                zipf,
                capacity=capacity,
                policy=policy,
                num_clients=10,
                requests_per_client=80,
                seed=seed,
            )
            for policy in ("lru", "pix")
        }
        table.add_row(
            capacity,
            round(results["lru"].hit_ratio, 3),
            round(results["pix"].hit_ratio, 3),
            round(results["lru"].average_wait, 1),
            round(results["pix"].average_wait, 1),
            round(results["lru"].uncached_wait, 1),
        )
    table.notes.append(
        "PIX evicts by access-probability / broadcast-frequency — "
        "caching what the air re-delivers quickly is wasted space"
    )
    return [table]


def _run_ext10(
    channels: int = 13,
    horizon: int = 200,
    fail_rates: tuple[float, ...] = (0.005, 0.01, 0.02, 0.04),
    recover_rate: float = 0.1,
    num_listeners: int = 300,
    seed: int = 0,
    **_overrides,
) -> list[Table]:
    """Recovery policies under increasing churn rates.

    For each churn level a fresh Poisson fault plan is generated (same
    seed, so levels differ only in rate) and replayed under every
    built-in recovery policy; the listener streams are shared across
    policies, so rows at one churn level are directly comparable.
    """
    from repro.resilience import compare_policies, poisson_churn_plan

    instance = paper_instance("uniform")
    table = Table(
        title=(
            f"EXT10: recovery policies vs churn "
            f"({channels} channels, horizon {horizon})"
        ),
        columns=[
            "fail rate",
            "events",
            "policy",
            "reschedules",
            "lost page-slots",
            "violations",
            "excess delay",
            "shed peak",
        ],
    )
    for fail_rate in fail_rates:
        plan = poisson_churn_plan(
            channels,
            horizon=horizon,
            seed=seed,
            fail_rate=fail_rate,
            recover_rate=recover_rate,
            min_alive=max(1, channels // 4),
        )
        outcomes = compare_policies(
            instance, plan, num_listeners=num_listeners, seed=seed
        )
        for outcome in outcomes:
            table.add_row(
                fail_rate,
                len(plan.events),
                outcome.policy,
                outcome.reschedule_count,
                round(outcome.pages_lost_time, 1),
                round(outcome.violation_fraction, 4),
                round(outcome.mean_excess_delay, 3),
                outcome.shed_pages_peak,
            )
    table.notes.append(
        "per-slot Bernoulli churn; listener streams are shared across "
        "policies at each churn level, so rows are directly comparable"
    )
    return [table]


def _run_ext11(
    churn_levels: tuple[int, ...] = (5, 15, 30, 60),
    horizon: int = 96,
    num_listeners: int = 150,
    seed: int = 0,
    **_overrides,
) -> list[Table]:
    """Live service under catalog churn: admission on/off vs pull LWF.

    For each churn level a fresh seeded mutation trace is generated
    (same seed, so levels differ only in mutation count) and replayed
    three ways: the live push runtime with admission control, the same
    runtime with admission disabled (every mutation lands, PAMAD
    degradation below the bound), and the Longest-Wait-First online
    pull baseline.  Listener arrivals are identical across the three
    arms of one level, so rows are directly comparable.
    """
    from repro.engine import BroadcastEngine
    from repro.live import replay_pull_lwf
    from repro.workload.mutations import generate_mutation_trace

    instance = instance_from_counts([4, 8, 12, 16], [4, 8, 16, 32])
    table = Table(
        title=(
            f"EXT11: deadline misses under catalog churn "
            f"(horizon {horizon}, {num_listeners} listeners)"
        ),
        columns=[
            "mutations",
            "system",
            "miss rate",
            "mean wait",
            "incremental",
            "full re-plans",
            "rejected",
        ],
    )
    for mutations in churn_levels:
        trace = generate_mutation_trace(
            instance,
            seed=seed,
            horizon=horizon,
            mutations=mutations,
            listeners=num_listeners,
        )
        arms = {
            True: BroadcastEngine().live(
                instance, trace, admission=True, baseline=False
            ),
            False: BroadcastEngine().live(
                instance, trace, admission=False, baseline=False
            ),
        }
        for enabled, result in arms.items():
            report = result.report
            table.add_row(
                mutations,
                "push (admission)" if enabled else "push (open door)",
                round(report.slo["miss_rate"], 4),
                round(report.slo["average_wait"], 2),
                report.counters["incremental_repairs"],
                report.counters["full_replans"],
                report.admission["rejected"],
            )
        pull = replay_pull_lwf(
            instance, trace, budget=arms[True].report.budget
        )
        table.add_row(
            mutations,
            "pull (LWF)",
            round(pull.miss_rate, 4),
            round(pull.average_wait, 2),
            "-",
            "-",
            "-",
        )
    table.notes.append(
        "admission holds the Theorem-3.1 bound by rejecting/queueing "
        "load; the open-door arm admits everything and degrades to "
        "PAMAD below the bound; LWF reacts to demand but promises "
        "nothing"
    )
    return [table]


def _run_ext12(
    shard_counts: tuple[int, ...] = (1, 2, 4),
    thetas: tuple[float, ...] = (0.0, 0.8, 1.2),
    num_listeners: int = 400,
    mutations: int = 24,
    horizon: int = 96,
    seed: int = 0,
    **_overrides,
) -> list[Table]:
    """Federation scaling under Zipf listener skew.

    One catalog, one seeded mutation stream, and for every Zipf skew
    ``theta`` one seeded listener stream (page choices drawn from
    :func:`~repro.workload.requests.zipf_access_model`, arrivals
    uniform over the horizon) — replayed across 1, 2 and 4 station
    shards with global admission and drift rebalancing on.  Within a
    ``theta`` row-group the trace is identical across shard counts, so
    rows isolate what sharding does to the *same* skewed load: how
    unevenly listeners land on stations, how many pages the drift
    rebalancer moves, and whether the miss rate survives the split.
    """
    from repro.engine import BroadcastEngine
    from repro.live.catalog import LiveCatalog
    from repro.live.mutations import MutationEvent, MutationTrace
    from repro.workload.mutations import generate_mutation_trace
    from repro.workload.requests import zipf_access_model

    instance = instance_from_counts(
        [6] * 8, [4, 8, 16, 32, 64, 128, 256, 512]
    )
    catalog = LiveCatalog(instance).pages()
    table = Table(
        title=(
            f"EXT12: shards x Zipf skew (horizon {horizon}, "
            f"{mutations} mutations, {num_listeners} listeners)"
        ),
        columns=[
            "theta",
            "shards",
            "miss rate",
            "hottest shard",
            "pages moved",
            "spilled",
            "full re-plans",
        ],
    )
    base = generate_mutation_trace(
        instance,
        seed=seed,
        horizon=horizon,
        mutations=mutations,
        listeners=0,
    )
    for theta in thetas:
        probabilities = zipf_access_model(instance, theta)
        pages = sorted(probabilities)
        weights = [probabilities[p] for p in pages]
        rng = random.Random(seed * 7919 + round(theta * 1000))
        listeners = tuple(
            MutationEvent(
                time=round(rng.uniform(1.0, horizon - 1.0), 3),
                kind="listener",
                page_id=(page := rng.choices(pages, weights)[0]),
                expected_time=catalog[page],
            )
            for _ in range(num_listeners)
        )
        trace = MutationTrace(
            horizon=horizon,
            events=base.events + listeners,
            meta={"generator": "ext12-zipf", "theta": theta},
        )
        for shards in shard_counts:
            report = BroadcastEngine().federate(
                instance,
                trace,
                shards=shards,
                rebalance_threshold=1.5,
                batch_listeners=True,
            ).report
            hottest = max(
                r["slo"]["listeners"] for r in report.shard_reports
            )
            table.add_row(
                theta,
                shards,
                round(report.miss_rate(), 4),
                f"{hottest}/{report.listeners}",
                report.pages_moved,
                report.admission["spilled"],
                report.counters["full_replans"],
            )
    table.notes.append(
        "per-theta listener streams are identical across shard counts; "
        "skew concentrates listeners on the urgent groups, and the "
        "drift rebalancer spreads the hot pages under its per-trigger "
        "move budget"
    )
    return [table]


EXPERIMENTS: Mapping[str, Experiment] = {
    experiment.experiment_id: experiment
    for experiment in [
        Experiment("FIG2", "PAMAD worked example", "Figure 2", _run_fig2),
        Experiment(
            "THM31", "Minimum number of channels", "Theorem 3.1", _run_thm31
        ),
        Experiment(
            "FIG3", "Group-size distributions", "Figure 3", _run_fig3
        ),
        Experiment("FIG4", "Parameter settings", "Figure 4", _run_fig4),
        Experiment(
            "FIG5A",
            "AvgD vs channels, normal",
            "Figure 5(a)",
            _fig5_runner("normal"),
        ),
        Experiment(
            "FIG5B",
            "AvgD vs channels, L-skewed",
            "Figure 5(b)",
            _fig5_runner("l-skewed"),
        ),
        Experiment(
            "FIG5C",
            "AvgD vs channels, S-skewed",
            "Figure 5(c)",
            _fig5_runner("s-skewed"),
        ),
        Experiment(
            "FIG5D",
            "AvgD vs channels, uniform",
            "Figure 5(d)",
            _fig5_runner("uniform"),
        ),
        Experiment(
            "ABL1", "Frequency-search families", "reproduction", _run_abl1
        ),
        Experiment(
            "ABL2", "Delay-objective variants", "reproduction", _run_abl2
        ),
        Experiment(
            "ABL3", "Placement strategies", "reproduction", _run_abl3
        ),
        Experiment(
            "EXT1", "On-demand congestion", "reproduction", _run_ext1
        ),
        Experiment(
            "EXT2", "SUSC scaling", "reproduction", _run_ext2
        ),
        Experiment(
            "EXT3", "Zipf access skew", "reproduction", _run_ext3
        ),
        Experiment(
            "ABL4", "GetAvailableSlot search variants", "reproduction",
            _run_abl4,
        ),
        Experiment(
            "ABL5", "Offline vs online scheduling", "reproduction",
            _run_abl5,
        ),
        Experiment(
            "EXT4", "(1, m) air indexing", "reproduction", _run_ext4
        ),
        Experiment(
            "EXT5", "Channel failures", "reproduction", _run_ext5
        ),
        Experiment(
            "EXT6", "Adaptive deadline drift", "reproduction", _run_ext6
        ),
        Experiment(
            "EXT7", "Multi-page requests", "reproduction", _run_ext7
        ),
        Experiment(
            "EXT8", "Scheduling objectives", "reproduction", _run_ext8
        ),
        Experiment(
            "EXT9", "Client caching policies", "reproduction", _run_ext9
        ),
        Experiment(
            "EXT10", "Resilience under churn", "reproduction", _run_ext10
        ),
        Experiment(
            "EXT11",
            "Live service under catalog churn",
            "reproduction",
            _run_ext11,
        ),
        Experiment(
            "EXT12",
            "Federation under Zipf listener skew",
            "reproduction",
            _run_ext12,
        ),
    ]
}


def run_experiment(experiment_id: str, **overrides) -> list[Table]:
    """Run a registered experiment by id (case-insensitive).

    Raises:
        ReproError: For unknown ids.
    """
    key = experiment_id.strip().upper()
    try:
        experiment = EXPERIMENTS[key]
    except KeyError:
        raise ReproError(
            f"unknown experiment {experiment_id!r}; available: "
            f"{', '.join(EXPERIMENTS)}"
        ) from None
    return experiment.run(**overrides)
